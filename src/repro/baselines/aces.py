"""ACES-style piecewise-linear (PWL) device simulator.

Le, Pileggi and Devgan (ICCAD 2003) replace Newton-Raphson with a
piecewise-linear approximation of each nanodevice's I-V curve; within one
time step every device is a segment conductance plus an offset current
source, so each step is a short sequence of *linear* solves with a segment
consistency check (Katzenelson-style search).

Paper Fig. 3(a) shows the catch: PWL segment slopes are *differential*
conductances, so NDR segments carry negative conductance — workable, but
the segment search can cycle and costs extra solves.  SWEC's chord (Fig.
3(b)) avoids that by construction.  This engine exists to reproduce the
Fig. 8(d) comparison and the Fig. 3 conductance contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.waveforms import TransientResult
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, SingularMatrixError
from repro.mna.assembler import MnaSystem
from repro.mna.linsolve import LinearSolver
from repro.perf.flops import FlopCounter


class PwlApproximation:
    """Adaptive piecewise-linear fit of a device I-V curve.

    Starts from the interval endpoints and greedily inserts breakpoints
    where the linear interpolation error is largest, until *tolerance*
    (absolute current error) or *max_segments* is reached.
    """

    def __init__(self, device, v_min: float, v_max: float,
                 tolerance: float = None, max_segments: int = 64,
                 probe_points: int = 21) -> None:
        if v_max <= v_min:
            raise ValueError("need v_max > v_min")
        if max_segments < 1:
            raise ValueError("need at least one segment")
        self.device = device
        currents_scale = max(abs(device.current(v_min)),
                             abs(device.current(v_max)), 1e-12)
        self.tolerance = (1e-3 * currents_scale if tolerance is None
                          else tolerance)
        breakpoints = [float(v_min), float(v_max)]
        while len(breakpoints) - 1 < max_segments:
            worst_error = 0.0
            worst_v = None
            for v0, v1 in zip(breakpoints, breakpoints[1:]):
                i0, i1 = device.current(v0), device.current(v1)
                for k in range(1, probe_points - 1):
                    v = v0 + (v1 - v0) * k / (probe_points - 1)
                    interpolated = i0 + (i1 - i0) * (v - v0) / (v1 - v0)
                    error = abs(device.current(v) - interpolated)
                    if error > worst_error:
                        worst_error, worst_v = error, v
            if worst_v is None or worst_error <= self.tolerance:
                break
            breakpoints.append(worst_v)
            breakpoints.sort()
        self.voltages = np.array(breakpoints)
        self.currents = np.array([device.current(v) for v in breakpoints])

    @property
    def num_segments(self) -> int:
        return len(self.voltages) - 1

    def segment_of(self, voltage: float) -> int:
        """Segment index containing *voltage* (clamped at the ends)."""
        k = int(np.searchsorted(self.voltages, voltage, side="right")) - 1
        return min(max(k, 0), self.num_segments - 1)

    def segment_model(self, k: int) -> tuple[float, float]:
        """Return ``(g_k, i_offset)`` with ``i(v) = g_k v + i_offset``."""
        v0, v1 = self.voltages[k], self.voltages[k + 1]
        i0, i1 = self.currents[k], self.currents[k + 1]
        g = (i1 - i0) / (v1 - v0)
        return float(g), float(i0 - g * v0)

    def conductances(self) -> np.ndarray:
        """Differential conductance of every segment (Fig. 3(a) values)."""
        return np.array([self.segment_model(k)[0]
                         for k in range(self.num_segments)])

    def current(self, voltage: float) -> float:
        """PWL-interpolated current (with end-segment extrapolation)."""
        g, offset = self.segment_model(self.segment_of(voltage))
        return g * voltage + offset


@dataclass
class AcesOptions:
    """ACES engine tunables."""

    #: PWL fit window applied to every device.
    v_min: float = -1.0
    v_max: float = 6.0
    max_segments: int = 64
    pwl_tolerance: float | None = None
    #: Katzenelson search bound per time step.
    max_segment_iterations: int = 60
    h_initial: float | None = None
    max_step_reductions: int = 10
    growth_factor: float = 2.0


class AcesTransient:
    """Backward-Euler transient over PWL device models."""

    def __init__(self, circuit: Circuit,
                 options: AcesOptions | None = None) -> None:
        self.circuit = circuit
        self.options = options or AcesOptions()
        self.system = MnaSystem(circuit)
        self._c_matrix = self.system.capacitance_matrix()
        self._g_base = self.system.conductance_base()
        self._terminals = self.system.device_terminals()
        self._mosfet_terminals = self.system.mosfet_terminals()
        opts = self.options
        self.approximations = [
            PwlApproximation(device, opts.v_min, opts.v_max,
                             tolerance=opts.pwl_tolerance,
                             max_segments=opts.max_segments)
            for device in circuit.devices
        ]
        #: Total segment-search iterations across the run (cost metric).
        self.segment_iterations = 0

    # ------------------------------------------------------------------

    def _branch_voltages(self, x: np.ndarray) -> np.ndarray:
        voltages = np.zeros(len(self._terminals))
        for k, (anode, cathode) in enumerate(self._terminals):
            va = x[anode] if anode >= 0 else 0.0
            vc = x[cathode] if cathode >= 0 else 0.0
            voltages[k] = va - vc
        return voltages

    def _solve_with_segments(self, segments: list[int], x: np.ndarray,
                             b: np.ndarray, c_over_h: np.ndarray,
                             flops: FlopCounter) -> np.ndarray:
        """One linear solve with fixed PWL segments + MOSFET companions."""
        matrix = self._g_base + c_over_h
        rhs = b + c_over_h @ x
        for k, (anode, cathode) in enumerate(self._terminals):
            g, offset = self.approximations[k].segment_model(segments[k])
            self.system.stamp_conductance(matrix, anode, cathode, g)
            self.system.stamp_current(rhs, anode, cathode, offset)
        for (drain, gate, source), mosfet in zip(self._mosfet_terminals,
                                                 self.circuit.mosfets):
            vd = x[drain] if drain >= 0 else 0.0
            vg = x[gate] if gate >= 0 else 0.0
            vs = x[source] if source >= 0 else 0.0
            ids = mosfet.current(vg - vs, vd - vs)
            gm, gds = mosfet.partials(vg - vs, vd - vs)
            flops.count_device_eval("mosfet")
            self.system.stamp_conductance(matrix, drain, source, gds)
            self.system.stamp_transconductance(matrix, drain, source,
                                               gate, source, gm)
            equivalent = ids - gm * (vg - vs) - gds * (vd - vs)
            self.system.stamp_current(rhs, drain, source, equivalent)
        solver = LinearSolver(flops)
        solver.factor(matrix)
        return solver.solve(rhs)

    def _step(self, x: np.ndarray, b: np.ndarray, c_over_h: np.ndarray,
              flops: FlopCounter) -> tuple[np.ndarray, bool]:
        """Katzelson-style segment iteration for one time step."""
        segments = [approx.segment_of(v) for approx, v in
                    zip(self.approximations, self._branch_voltages(x))]
        for _ in range(self.options.max_segment_iterations):
            self.segment_iterations += 1
            x_new = self._solve_with_segments(segments, x, b, c_over_h,
                                              flops)
            new_segments = [approx.segment_of(v) for approx, v in
                            zip(self.approximations,
                                self._branch_voltages(x_new))]
            if new_segments == segments:
                return x_new, True
            # Move each assumption one segment toward the solution to
            # avoid ping-ponging across an NDR region.
            segments = [
                s + int(np.sign(ns - s)) if ns != s else s
                for s, ns in zip(segments, new_segments)
            ]
            x = x_new
        return x, False

    # ------------------------------------------------------------------

    def run(self, t_stop: float, h: float | None = None,
            initial_state: np.ndarray | None = None) -> TransientResult:
        """Simulate ``[0, t_stop]``."""
        if t_stop <= 0.0:
            raise AnalysisError(f"t_stop must be positive, got {t_stop!r}")
        opts = self.options
        system = self.system
        result = TransientResult(system.circuit.nodes, engine="aces")
        x = (system.initial_state() if initial_state is None
             else np.array(initial_state, dtype=float, copy=True))

        h_base = opts.h_initial if opts.h_initial is not None else t_stop / 1000.0
        if h is not None:
            h_base = h
        t = 0.0
        result.append(t, x)
        step = h_base

        while t < t_stop * (1.0 - 1e-12):
            step = min(step, t_stop - t)
            accepted = False
            reductions = 0
            while reductions <= opts.max_step_reductions:
                c_over_h = self._c_matrix / step
                b = system.source_vector(t + step)
                try:
                    x_new, consistent = self._step(x, b, c_over_h,
                                                   result.flops)
                except SingularMatrixError:
                    consistent = False
                    x_new = x
                if consistent:
                    accepted = True
                    break
                result.convergence_failures += 1
                result.rejected_steps += 1
                step *= 0.5
                reductions += 1
            if not accepted:
                result.aborted = True
                result.abort_reason = (
                    f"segment search failed to settle at t={t:.4g}")
                break
            x = x_new
            t += step
            result.append(t, x)
            result.accepted_steps += 1
            step = min(step * opts.growth_factor, h_base)

        return result
