"""Baseline simulators the paper compares against.

``newton``
    Generic Newton-Raphson machinery (companion models, damping,
    oscillation detection) shared by the SPICE and MLA baselines, plus the
    scalar NR demo of paper Fig. 2.
``spice``
    A SPICE3-style simulator: NR at every time point, source/Gmin stepping
    for DC, time-step reduction on non-convergence.  Exhibits the NDR
    failure the paper shows in Fig. 8(c).
``mla``
    Bhattacharya & Mazumder's Modified Limiting Algorithm: NR augmented
    with RTD region-aware voltage limiting and current/source stepping.
    The Table I comparator.
``aces``
    An ACES-style piecewise-linear device simulator with Katzenelson
    segment search (Fig. 3(a), Fig. 8(d)).
"""

from repro.baselines.aces import AcesTransient, PwlApproximation
from repro.baselines.mla import MlaDC, MlaTransient
from repro.baselines.newton import (
    NewtonOptions,
    NewtonOutcome,
    newton_solve,
    scalar_newton,
)
from repro.baselines.spice import SpiceDC, SpiceTransient, SpiceOptions

__all__ = [
    "AcesTransient",
    "MlaDC",
    "MlaTransient",
    "NewtonOptions",
    "NewtonOutcome",
    "PwlApproximation",
    "SpiceDC",
    "SpiceOptions",
    "SpiceTransient",
    "newton_solve",
    "scalar_newton",
]
