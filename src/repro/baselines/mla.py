"""Modified Limiting Algorithm (MLA) baseline.

Re-implementation of the SPICE augmentation of Bhattacharya & Mazumder
(IEEE TCAD 2001) for circuits containing resonant tunneling diodes — the
comparator of the paper's Fig. 7 and Table I.  Two augmentations on top of
plain Newton-Raphson:

**RTD region-aware voltage limiting.**  The RTD I-V curve splits into
PDR1 / NDR / PDR2 at the peak and valley voltages.  A raw Newton update
that hops across a whole region is what produces the Fig. 2 oscillation,
so the limiter scales the update vector such that no RTD branch voltage
crosses more than one region boundary per iteration (and never by more
than a region width).

**Current/source stepping.**  When a limited Newton solve still fails, the
source value is approached through adaptively bisected sub-steps, each
warm-started from the last converged solution.

Both rescue mechanisms cost Newton iterations — that is exactly the flop
gap Table I reports against SWEC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.dcsweep import DCSweepResult
from repro.analysis.waveforms import TransientResult
from repro.circuit.netlist import Circuit
from repro.devices.rtd import SchulmanRTD
from repro.errors import AnalysisError
from repro.mna.assembler import MnaSystem
from repro.baselines.newton import (
    CompanionAssembler,
    NewtonOptions,
    newton_solve,
)


@dataclass
class MlaOptions:
    """MLA engine tunables."""

    newton: NewtonOptions = field(default_factory=NewtonOptions)
    #: Fraction of a region width an update may penetrate past a boundary.
    boundary_overshoot: float = 0.10
    #: Maximum recursion depth of source sub-stepping (2^depth sub-steps).
    max_substep_depth: int = 8
    #: Transient step controls (mirrors the SPICE baseline).
    h_initial: float | None = None
    h_min_factor: float = 1e-6
    max_step_reductions: int = 12
    growth_factor: float = 2.0


class RtdRegionLimiter:
    """Scales Newton updates so RTD voltages respect region boundaries."""

    def __init__(self, system: MnaSystem,
                 boundary_overshoot: float = 0.10) -> None:
        self.system = system
        self.overshoot = boundary_overshoot
        self._limited: list[tuple[tuple[int, int], tuple[float, float]]] = []
        for (terminals, device) in zip(system.device_terminals(),
                                       system.circuit.devices):
            model = device.model
            if isinstance(model, SchulmanRTD):
                try:
                    v_peak, v_valley = model.ndr_region()
                except ValueError:
                    continue
                self._limited.append((terminals, (v_peak, v_valley)))

    @staticmethod
    def _branch(x: np.ndarray, terminals: tuple[int, int]) -> float:
        anode, cathode = terminals
        va = x[anode] if anode >= 0 else 0.0
        vc = x[cathode] if cathode >= 0 else 0.0
        return va - vc

    def _allowed_delta(self, v: float, dv: float,
                       region: tuple[float, float]) -> float:
        """Largest |update| keeping the move within one boundary hop."""
        v_peak, v_valley = region
        width = v_valley - v_peak
        margin = self.overshoot * width
        boundaries = sorted((v_peak, v_valley))
        if dv > 0.0:
            ahead = [b for b in boundaries if b > v + 1e-15]
            limit = (ahead[0] - v) + margin if ahead else width
        else:
            behind = [b for b in boundaries if b < v - 1e-15]
            limit = (v - behind[-1]) + margin if behind else width
        return max(limit, margin)

    def __call__(self, x: np.ndarray, dx: np.ndarray) -> np.ndarray:
        scale = 1.0
        for terminals, region in self._limited:
            v = self._branch(x, terminals)
            dv = self._branch(dx, terminals)
            if dv == 0.0:
                continue
            allowed = self._allowed_delta(v, dv, region)
            if abs(dv) > allowed:
                scale = min(scale, allowed / abs(dv))
        return dx if scale >= 1.0 else dx * scale


class MlaDC:
    """DC sweep with RTD limiting and source sub-stepping."""

    def __init__(self, circuit: Circuit,
                 options: MlaOptions | None = None) -> None:
        self.circuit = circuit
        self.options = options or MlaOptions()
        self.system = MnaSystem(circuit)
        self.limiter = RtdRegionLimiter(self.system,
                                        self.options.boundary_overshoot)

    def _solve_value(self, assembler: CompanionAssembler, x: np.ndarray,
                     row: int, v_from: float, v_to: float,
                     result: DCSweepResult, depth: int = 0):
        """Solve at ``v_to``, recursively sub-stepping from ``v_from``."""
        b = self.system.source_vector(0.0)
        b[row] = v_to
        outcome = newton_solve(assembler, x, b, self.options.newton,
                               flops=result.flops, limiter=self.limiter)
        iterations = outcome.iterations
        if outcome.converged:
            return outcome.x, iterations, True
        if depth >= self.options.max_substep_depth:
            return outcome.x, iterations, False
        midpoint = 0.5 * (v_from + v_to)
        x_mid, it_mid, ok_mid = self._solve_value(
            assembler, x, row, v_from, midpoint, result, depth + 1)
        iterations += it_mid
        if not ok_mid:
            return x_mid, iterations, False
        x_end, it_end, ok_end = self._solve_value(
            assembler, x_mid, row, midpoint, v_to, result, depth + 1)
        return x_end, iterations + it_end, ok_end

    def sweep(self, source_name: str, values) -> DCSweepResult:
        """Sweep *source_name* through *values* (voltage sources only)."""
        values = [float(v) for v in values]
        if not values:
            raise AnalysisError("sweep needs at least one value")
        result = DCSweepResult(self.circuit.nodes, source_name, engine="mla")
        assembler = CompanionAssembler(self.system, flops=result.flops)
        row = self.system.vsource_index(source_name)
        x = self.system.initial_state()
        previous = 0.0
        for value in values:
            x_new, iterations, converged = self._solve_value(
                assembler, x, row, previous, value, result)
            if converged:
                x = x_new
                previous = value
            result.append(value, x_new, iterations, converged)
        return result

    def device_currents(self, result: DCSweepResult,
                        device_name: str) -> np.ndarray:
        """Current through a named device at every sweep point."""
        for k, device in enumerate(self.circuit.devices):
            if device.name == device_name:
                anode, cathode = self.system.device_terminals()[k]
                states = result.states
                va = states[:, anode] if anode >= 0 else np.zeros(len(result))
                vc = states[:, cathode] if cathode >= 0 else np.zeros(len(result))
                return np.array([device.current(v) for v in (va - vc)])
        raise AnalysisError(f"no device named {device_name!r}")

    def device_voltages(self, result: DCSweepResult,
                        device_name: str) -> np.ndarray:
        """Branch voltage of a named device at every sweep point."""
        for k, device in enumerate(self.circuit.devices):
            if device.name == device_name:
                anode, cathode = self.system.device_terminals()[k]
                states = result.states
                va = states[:, anode] if anode >= 0 else np.zeros(len(result))
                vc = states[:, cathode] if cathode >= 0 else np.zeros(len(result))
                return np.asarray(va - vc)
        raise AnalysisError(f"no device named {device_name!r}")


class MlaTransient:
    """Backward-Euler transient with RTD limiting and step reduction."""

    def __init__(self, circuit: Circuit,
                 options: MlaOptions | None = None) -> None:
        self.circuit = circuit
        self.options = options or MlaOptions()
        self.system = MnaSystem(circuit)
        self.limiter = RtdRegionLimiter(self.system,
                                        self.options.boundary_overshoot)
        self._c_matrix = self.system.capacitance_matrix()

    def run(self, t_stop: float, h: float | None = None,
            initial_state: np.ndarray | None = None) -> TransientResult:
        """Simulate ``[0, t_stop]``."""
        if t_stop <= 0.0:
            raise AnalysisError(f"t_stop must be positive, got {t_stop!r}")
        opts = self.options
        system = self.system
        result = TransientResult(system.circuit.nodes, engine="mla")
        assembler = CompanionAssembler(system, flops=result.flops)

        if initial_state is not None:
            x = np.array(initial_state, dtype=float, copy=True)
        else:
            b0 = system.source_vector(0.0)
            outcome = newton_solve(assembler, system.initial_state(), b0,
                                   opts.newton, flops=result.flops,
                                   limiter=self.limiter)
            x = outcome.x
            result.iteration_counts.append(outcome.iterations)
            if not outcome.converged:
                result.convergence_failures += 1

        h_base = opts.h_initial if opts.h_initial is not None else t_stop / 1000.0
        if h is not None:
            h_base = h
        h_min = h_base * opts.h_min_factor
        t = 0.0
        result.append(t, x)
        step = h_base

        while t < t_stop * (1.0 - 1e-12):
            step = min(step, t_stop - t)
            accepted = False
            reductions = 0
            outcome = None
            while reductions <= opts.max_step_reductions:
                c_over_h = self._c_matrix / step
                b = system.source_vector(t + step)
                outcome = newton_solve(
                    assembler, x, b, opts.newton, c_over_h=c_over_h,
                    x_prev=x, flops=result.flops, limiter=self.limiter)
                if outcome.converged:
                    accepted = True
                    break
                result.convergence_failures += 1
                result.rejected_steps += 1
                step *= 0.5
                reductions += 1
                if step < h_min:
                    break
            if not accepted:
                result.aborted = True
                result.abort_reason = (
                    f"MLA NR failed at t={t:.4g} at minimum step")
                break
            x = outcome.x
            t += step
            result.append(t, x)
            result.iteration_counts.append(outcome.iterations)
            result.accepted_steps += 1
            step = min(step * opts.growth_factor, h_base)

        return result
