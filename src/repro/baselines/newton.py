"""Newton-Raphson machinery for the deterministic baselines.

This module provides:

* :class:`CompanionAssembler` — residual/Jacobian assembly for the
  nonlinear MNA equations using differential-conductance companion models
  (exactly what SPICE linearizes with, and exactly what goes negative in
  an NDR region — the paper's Fig. 5).
* :func:`newton_solve` — damped NR iteration with oscillation detection.
  When the iterates enter a two-cycle (the paper's Fig. 2 scenario: the
  initial guess is on the wrong side of a non-monotonic curve), the solver
  reports ``oscillating=True`` instead of looping forever.
* :func:`scalar_newton` — the one-dimensional demonstrator used by the
  Fig. 2 reproduction bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mna.assembler import MnaSystem
from repro.mna.linsolve import LinearSolver
from repro.perf.flops import FlopCounter


@dataclass
class NewtonOptions:
    """Newton iteration tunables (SPICE-like defaults)."""

    max_iterations: int = 50
    abstol: float = 1e-9
    reltol: float = 1e-6
    damping: float = 1.0
    #: Per-iteration clamp on any node-voltage update, in volts.  SPICE
    #: calls this device limiting; ``None`` disables it.
    dv_limit: float | None = None

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")


@dataclass
class NewtonOutcome:
    """Result record of one Newton solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    oscillating: bool = False
    residual: float = float("nan")
    #: max |x_k - x_{k-1}| per iteration, for diagnosis plots.
    update_history: list = field(default_factory=list)


class CompanionAssembler:
    """Residual and Jacobian of the nonlinear MNA equations.

    The equation solved is

    .. math::  F(x) = G_0 x + i_{dev}(x) + \\frac{C}{h}(x - x_{prev}) - b = 0

    with the ``C/h`` term absent for DC.  The Jacobian stamps each
    device's *differential* conductance — the quantity that is negative
    inside NDR and wrecks convergence.
    """

    def __init__(self, system: MnaSystem,
                 flops: FlopCounter | None = None) -> None:
        self.system = system
        self.circuit = system.circuit
        self.flops = flops
        self._g_base = system.conductance_base()
        self._device_terminals = system.device_terminals()
        self._mosfet_terminals = system.mosfet_terminals()

    def residual_and_jacobian(self, x: np.ndarray, b: np.ndarray,
                              c_over_h: np.ndarray | None = None,
                              x_prev: np.ndarray | None = None,
                              gmin: float = 0.0):
        """Return ``(F, J)`` at *x*.

        ``gmin`` adds a small conductance from every device terminal to
        ground (SPICE's Gmin), used by the Gmin-stepping fallback.
        """
        jacobian = self._g_base.copy()
        residual = self._g_base @ x - b
        for (anode, cathode), device in zip(self._device_terminals,
                                            self.circuit.devices):
            va = x[anode] if anode >= 0 else 0.0
            vc = x[cathode] if cathode >= 0 else 0.0
            v = va - vc
            current = device.current(v)
            conductance = device.differential_conductance(v)
            if self.flops is not None:
                self.flops.count_device_eval("rtd_current")
                self.flops.count_device_eval("rtd_conductance")
            if anode >= 0:
                residual[anode] += current
            if cathode >= 0:
                residual[cathode] -= current
            self.system.stamp_conductance(jacobian, anode, cathode,
                                          conductance)
            if gmin > 0.0:
                for terminal in (anode, cathode):
                    if terminal >= 0:
                        jacobian[terminal, terminal] += gmin
                        residual[terminal] += gmin * x[terminal]
        for (drain, gate, source), mosfet in zip(self._mosfet_terminals,
                                                 self.circuit.mosfets):
            vd = x[drain] if drain >= 0 else 0.0
            vg = x[gate] if gate >= 0 else 0.0
            vs = x[source] if source >= 0 else 0.0
            ids = mosfet.current(vg - vs, vd - vs)
            gm, gds = mosfet.partials(vg - vs, vd - vs)
            if self.flops is not None:
                self.flops.count_device_eval("mosfet")
            if drain >= 0:
                residual[drain] += ids
            if source >= 0:
                residual[source] -= ids
            self.system.stamp_conductance(jacobian, drain, source, gds)
            self.system.stamp_transconductance(jacobian, drain, source,
                                               gate, source, gm)
        if c_over_h is not None:
            jacobian += c_over_h
            residual += c_over_h @ (x - x_prev)
        return residual, jacobian


def newton_solve(assembler: CompanionAssembler, x0: np.ndarray,
                 b: np.ndarray, options: NewtonOptions | None = None,
                 c_over_h: np.ndarray | None = None,
                 x_prev: np.ndarray | None = None,
                 gmin: float = 0.0,
                 flops: FlopCounter | None = None,
                 limiter=None) -> NewtonOutcome:
    """Damped Newton-Raphson on the companion equations.

    ``limiter`` is an optional callable ``limiter(x, dx) -> dx`` applied
    to the raw update before damping — the hook MLA uses for RTD
    region-aware limiting.
    """
    options = options or NewtonOptions()
    solver = LinearSolver(flops)
    x = np.array(x0, dtype=float, copy=True)
    outcome = NewtonOutcome(x=x, iterations=0, converged=False)
    norm_prev2: float | None = None
    norm_prev1: float | None = None

    for iteration in range(1, options.max_iterations + 1):
        residual, jacobian = assembler.residual_and_jacobian(
            x, b, c_over_h=c_over_h, x_prev=x_prev, gmin=gmin)
        solver.factor(jacobian)
        dx = solver.solve(-residual)
        if limiter is not None:
            dx = limiter(x, dx)
        if options.dv_limit is not None:
            biggest = float(np.max(np.abs(dx))) if dx.size else 0.0
            if biggest > options.dv_limit:
                dx = dx * (options.dv_limit / biggest)
        x = x + options.damping * dx
        update = float(np.max(np.abs(dx))) if dx.size else 0.0
        outcome.update_history.append(update)
        outcome.iterations = iteration
        outcome.residual = float(np.max(np.abs(residual)))
        scale = float(np.max(np.abs(x))) if x.size else 0.0
        if update < options.abstol + options.reltol * scale:
            outcome.x = x
            outcome.converged = True
            return outcome
        # Two-cycle detection: updates alternate with near-equal magnitude
        # while not shrinking — the Fig. 2 oscillation pattern.
        if (norm_prev2 is not None
                and update > options.abstol * 10.0
                and abs(update - norm_prev2) < 0.05 * update
                and abs(update - norm_prev1) > 0.5 * update):
            outcome.x = x
            outcome.oscillating = True
            return outcome
        norm_prev2, norm_prev1 = norm_prev1, update

    outcome.x = x
    return outcome


def scalar_newton(f, dfdx, x0: float, max_iterations: int = 60,
                  tolerance: float = 1e-12):
    """Scalar NR returning the full iterate list (paper Fig. 2 demo).

    Returns ``(iterates, converged, oscillating)``.  Oscillation means the
    tail of the iterate sequence alternates between two accumulation
    points — the behaviour Fig. 2 illustrates for a bad initial guess on a
    non-monotonic curve.
    """
    iterates = [float(x0)]
    x = float(x0)
    for _ in range(max_iterations):
        derivative = dfdx(x)
        if derivative == 0.0:
            break
        x_next = x - f(x) / derivative
        iterates.append(x_next)
        if abs(x_next - x) < tolerance:
            return iterates, True, False
        x = x_next
    tail = iterates[-8:]
    oscillating = False
    if len(tail) == 8:
        evens = tail[0::2]
        odds = tail[1::2]
        spread_e = max(evens) - min(evens)
        spread_o = max(odds) - min(odds)
        gap = abs(np.mean(evens) - np.mean(odds))
        oscillating = bool(gap > 10.0 * max(spread_e, spread_o, 1e-15))
    return iterates, False, oscillating
