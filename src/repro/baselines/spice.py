"""SPICE3-style baseline simulator.

Implements the deterministic differential-conductance flow the paper
criticizes: Newton-Raphson at every DC point and every transient step,
with SPICE's standard rescue strategies (source stepping and Gmin stepping
for DC, time-step reduction for transient).  On circuits with
non-monotonic I-V curves this engine reproduces the pathologies of paper
Figs. 2 and 8(c): NR oscillation, convergence failures and false
convergence onto the wrong branch.

This is a faithful *algorithmic* substitute for the SPICE3 binary; see
DESIGN.md Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.dcsweep import DCSweepResult
from repro.analysis.waveforms import TransientResult
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, ConvergenceError
from repro.mna.assembler import MnaSystem
from repro.baselines.newton import (
    CompanionAssembler,
    NewtonOptions,
    newton_solve,
)


@dataclass
class SpiceOptions:
    """SPICE-style engine tunables."""

    newton: NewtonOptions = field(default_factory=NewtonOptions)
    #: Number of source-stepping ramp points for the DC rescue.
    source_steps: int = 10
    #: Gmin-stepping ladder (start, per-decade shrink, floor).
    gmin_start: float = 1e-2
    gmin_floor: float = 1e-12
    #: Transient base step; reduced on NR failure, grown back on success.
    h_initial: float | None = None
    h_min_factor: float = 1e-6
    max_step_reductions: int = 12
    growth_factor: float = 2.0
    #: Abort the march after this many consecutive step failures.
    max_consecutive_failures: int = 40
    #: Seed each step's Newton iteration with the previous solution
    #: (SPICE's strategy — see paper Section 3.1).  Setting this False
    #: reproduces the Fig. 2 scenario: an initial guess far from the
    #: solution of a non-monotonic system makes NR oscillate.
    warm_start: bool = True


class SpiceDC:
    """Operating-point and DC-sweep analysis, NR-based."""

    def __init__(self, circuit: Circuit,
                 options: SpiceOptions | None = None) -> None:
        self.circuit = circuit
        self.options = options or SpiceOptions()
        self.system = MnaSystem(circuit)

    # ------------------------------------------------------------------

    def operating_point(self, result_flops=None,
                        x0: np.ndarray | None = None):
        """Solve the DC operating point at ``t = 0``.

        Tries plain NR, then source stepping, then Gmin stepping — the
        SPICE3 playbook.  Returns ``(x, total_iterations, strategy)``;
        raises :class:`ConvergenceError` when everything fails.
        """
        assembler = CompanionAssembler(self.system, flops=result_flops)
        b = self.system.source_vector(0.0)
        x0 = self.system.initial_state() if x0 is None else x0
        total = 0

        outcome = newton_solve(assembler, x0, b, self.options.newton,
                               flops=result_flops)
        total += outcome.iterations
        if outcome.converged:
            return outcome.x, total, "direct"

        # Source stepping: ramp all sources from zero.
        x = self.system.initial_state()
        stepped_ok = True
        for k in range(1, self.options.source_steps + 1):
            fraction = k / self.options.source_steps
            outcome = newton_solve(assembler, x, b * fraction,
                                   self.options.newton, flops=result_flops)
            total += outcome.iterations
            if not outcome.converged:
                stepped_ok = False
                break
            x = outcome.x
        if stepped_ok:
            return x, total, "source-stepping"

        # Gmin stepping: shunt conductances, shrink towards zero.
        x = self.system.initial_state()
        gmin = self.options.gmin_start
        while gmin >= self.options.gmin_floor:
            outcome = newton_solve(assembler, x, b, self.options.newton,
                                   gmin=gmin, flops=result_flops)
            total += outcome.iterations
            if not outcome.converged:
                raise ConvergenceError(
                    "SPICE DC failed: direct, source-stepping and "
                    "gmin-stepping all diverged", iterations=total)
            x = outcome.x
            gmin /= 10.0
        outcome = newton_solve(assembler, x, b, self.options.newton,
                               flops=result_flops)
        total += outcome.iterations
        if not outcome.converged:
            raise ConvergenceError(
                "SPICE DC failed at final gmin removal", iterations=total)
        return outcome.x, total, "gmin-stepping"

    def sweep(self, source_name: str, values) -> DCSweepResult:
        """NR-based DC sweep with continuation warm starts."""
        values = [float(v) for v in values]
        if not values:
            raise AnalysisError("sweep needs at least one value")
        result = DCSweepResult(self.circuit.nodes, source_name,
                               engine="spice")
        assembler = CompanionAssembler(self.system, flops=result.flops)
        row = self.system.vsource_index(source_name)
        x = self.system.initial_state()
        for value in values:
            b = self.system.source_vector(0.0)
            b[row] = value
            outcome = newton_solve(assembler, x, b, self.options.newton,
                                   flops=result.flops)
            if outcome.converged:
                x = outcome.x
            result.append(value, outcome.x, outcome.iterations,
                          outcome.converged)
        return result


class SpiceTransient:
    """Backward-Euler transient with NR at every step.

    The previous accepted solution seeds each NR solve (the strategy the
    paper's Section 3.1 quotes as fragile near fast transitions); failures
    trigger time-step halving, and the march aborts after
    ``max_consecutive_failures`` — which is how the Fig. 8(c)
    non-convergence manifests here.
    """

    def __init__(self, circuit: Circuit,
                 options: SpiceOptions | None = None) -> None:
        self.circuit = circuit
        self.options = options or SpiceOptions()
        self.system = MnaSystem(circuit)
        self._c_matrix = self.system.capacitance_matrix()

    def run(self, t_stop: float, h: float | None = None,
            initial_state: np.ndarray | None = None) -> TransientResult:
        """Simulate ``[0, t_stop]``; returns waveforms plus failure stats."""
        if t_stop <= 0.0:
            raise AnalysisError(f"t_stop must be positive, got {t_stop!r}")
        opts = self.options
        system = self.system
        result = TransientResult(system.circuit.nodes, engine="spice")
        assembler = CompanionAssembler(system, flops=result.flops)

        if initial_state is not None:
            x = np.array(initial_state, dtype=float, copy=True)
        else:
            dc = SpiceDC(self.circuit, opts)
            try:
                x, iterations, _ = dc.operating_point(result.flops)
                result.iteration_counts.append(iterations)
            except ConvergenceError:
                result.convergence_failures += 1
                x = system.initial_state()

        h_base = opts.h_initial if opts.h_initial is not None else t_stop / 1000.0
        h_min = h_base * opts.h_min_factor
        if h is not None:
            h_base = h
            h_min = h * opts.h_min_factor
        t = 0.0
        result.append(t, x)
        step = h_base
        consecutive_failures = 0

        while t < t_stop * (1.0 - 1e-12):
            step = min(step, t_stop - t)
            accepted = False
            reductions = 0
            while reductions <= opts.max_step_reductions:
                c_over_h = self._c_matrix / step
                b = system.source_vector(t + step)
                guess = x if opts.warm_start else np.zeros_like(x)
                outcome = newton_solve(
                    assembler, guess, b, opts.newton,
                    c_over_h=c_over_h, x_prev=x, flops=result.flops)
                if outcome.converged:
                    accepted = True
                    break
                result.convergence_failures += 1
                result.rejected_steps += 1
                step *= 0.5
                reductions += 1
                if step < h_min:
                    break
            if not accepted:
                consecutive_failures += 1
                if consecutive_failures >= opts.max_consecutive_failures:
                    result.aborted = True
                    result.abort_reason = (
                        f"NR failed to converge at t={t:.4g} even at "
                        f"minimum step (oscillating={outcome.oscillating})")
                    break
                # SPICE3 gives up here; to expose the *false convergence*
                # failure mode we accept the non-converged iterate, which
                # is what a damped simulator silently does.
                x = outcome.x
                t += max(step, h_min)
                result.append(t, x)
                result.iteration_counts.append(outcome.iterations)
                result.accepted_steps += 1
                step = h_base
                continue
            consecutive_failures = 0
            x = outcome.x
            t += step
            result.append(t, x)
            result.iteration_counts.append(outcome.iterations)
            result.accepted_steps += 1
            step = min(step * opts.growth_factor, h_base)

        return result
