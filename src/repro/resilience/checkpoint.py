"""Crash-safe job journal: re-queue in-flight work after a restart.

The content-addressed :class:`~repro.service.store.ResultStore` already
checkpoints every *completed* job (the record is the checkpoint), so
resuming finished work is a cache hit.  What a crash loses is the
*in-flight* set — jobs accepted but not yet published.  The
:class:`JobJournal` closes that gap: the daemon writes a tiny JSON
entry (job spec + seed) next to the store when it accepts a job and
deletes it once the result is published or the job fails terminally.
After a restart, :meth:`JobJournal.pending` lists exactly the work that
was cut off; entries whose key is already in the store are cleared
without re-simulating (asserted in the chaos tests via factorization
counters), the rest re-execute with their original seeds and therefore
produce byte-identical records.

Entries are written atomically (temp file + rename) like the store's
own objects, so a crash mid-write never leaves a truncated entry that
could poison recovery.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path

__all__ = ["JobJournal"]


class JobJournal:
    """Filesystem journal of accepted-but-unfinished jobs.

    Parameters
    ----------
    root:
        Directory holding the ``journal/`` subdirectory — conventionally
        the same root as the :class:`~repro.service.store.ResultStore`
        so journal and checkpoints travel together.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.journal_dir = self.root / "journal"
        self.journal_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.journal_dir / f"{key}.json"

    def record(self, key: str, spec: dict, seed: int | None = None) -> None:
        """Journal *key* as in-flight with its job *spec* and *seed*."""
        entry = {"schema": "repro-journal/1", "spec": spec, "seed": seed}
        payload = json.dumps(entry, sort_keys=True).encode()
        fd, tmp_name = tempfile.mkstemp(
            dir=self.journal_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def clear(self, key: str) -> None:
        """Remove *key* from the journal (job reached a terminal state)."""
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            pass

    def pending(self) -> dict[str, dict]:
        """All journaled entries, keyed by job key.

        Unreadable or malformed entries are dropped (and deleted): a
        partial write cannot describe a job faithfully, and the result
        store still protects any record the job did publish.
        """
        entries: dict[str, dict] = {}
        for path in sorted(self.journal_dir.glob("*.json")):
            key = path.stem
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                self.clear(key)
                continue
            if (
                not isinstance(entry, dict)
                or entry.get("schema") != "repro-journal/1"
                or not isinstance(entry.get("spec"), dict)
            ):
                self.clear(key)
                continue
            entries[key] = entry
        return entries

    def __len__(self) -> int:
        return len(self.pending())
