"""Fault tolerance for the batch runner, sweeps, and the service daemon.

The package has three small, orthogonal pieces:

:mod:`repro.resilience.faults`
    Deterministic fault injection — a seeded, picklable
    :class:`FaultPlan` consulted by the runner's workers, the result
    store, and the backend fallback wrapper, so chaos tests replay
    exactly.
:mod:`repro.resilience.retry`
    :class:`RetryPolicy` — bounded retries with seeded exponential
    backoff.  Retried attempts re-use the original per-job seed, so
    recovered results are bit-identical to an undisturbed run.
:mod:`repro.resilience.checkpoint`
    :class:`JobJournal` — a crash-safe record of in-flight jobs next to
    the content-addressed result store, letting the service daemon
    re-queue interrupted work after a restart without re-simulating
    anything that already finished.

See ``docs/resilience.md`` for the end-to-end story and executable
examples.
"""

from repro.resilience.checkpoint import JobJournal
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    activate,
    active_plan,
    deactivate,
    fault_context,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "JobJournal",
    "RetryPolicy",
    "activate",
    "active_plan",
    "deactivate",
    "fault_context",
]
