"""Deterministic fault injection: seeded chaos the tests can replay.

A :class:`FaultPlan` is a frozen, picklable description of the faults a
chaos test wants injected — worker crashes, hangs, transient solver
failures, corrupted store reads, backend factorization failures — and
*where* the decision comes from: a SHA-256 hash of
``(seed, kind, label, attempt)`` mapped to a uniform ``[0, 1)`` draw.
No shared state, no RNG objects crossing process boundaries: the same
plan makes the same decisions in every worker, at every worker count,
which is what makes the chaos suite reproducible against the byte-exact
oracle the SWEC determinism guarantees provide.

The plan is consulted at three sites:

workers
    :func:`repro.runtime.runner._execute_job` asks
    :meth:`FaultPlan.worker_fault` before running the job body.  A
    ``crash`` really kills the worker process on the process executor
    (``os._exit``) and raises :class:`~repro.errors.WorkerCrashError`
    elsewhere; a ``hang`` really sleeps past the watchdog on the
    process executor and raises
    :class:`~repro.errors.JobTimeoutError` elsewhere (threads cannot
    be killed, so the simulation keeps the suite fast); a
    ``transient`` raises
    :class:`~repro.errors.SingularMatrixError` — the retryable
    solver-failure class.
store reads
    :meth:`~repro.service.store.ResultStore.get` asks
    :meth:`FaultPlan.corrupt_read` after reading the payload bytes and
    flips them on injection — the store's own checksum then detects
    the corruption and degrades to a miss, exactly the path a real
    bit-flip would take.  Injection fires at most once per key per
    process so recovery (recompute, republish) converges.
backends
    :class:`~repro.core.fallback.FallbackBackend` asks
    :meth:`FaultPlan.decide` with ``kind="backend"`` before the first
    solve, forcing the primary backend to fail so the sparse→dense /
    stack→dense degradation chain can be exercised deterministically.

Plans activate ambiently (:func:`activate` / :func:`fault_context`) in
the process that consults them; the batch runner additionally pickles
its plan into every worker invocation so process pools inject too.
With ``first_attempt_only=True`` (the default) a fault fires only on a
job's first attempt, so bounded retries always recover and recovered
results can be asserted bit-identical to an undisturbed run.
"""

from __future__ import annotations

import contextlib
import hashlib
from dataclasses import dataclass, field

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "activate",
    "active_plan",
    "deactivate",
    "fault_context",
]

#: Injectable fault kinds.
FAULT_KINDS = ("crash", "hang", "transient", "corrupt", "backend")

#: The ambiently active plan of this process (None = no injection).
_ACTIVE: "FaultPlan | None" = None

#: Per-process count of store reads per key, for one-shot corruption.
_READ_COUNTS: dict[str, int] = {}


def _uniform(seed: int, kind: str, label: str, attempt: int) -> float:
    """Deterministic uniform ``[0, 1)`` draw for one decision site."""
    digest = hashlib.sha256(
        f"{seed}:{kind}:{label}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable fault-injection schedule.

    Attributes
    ----------
    seed:
        Entropy for every hash-based decision; two plans with the same
        seed and rates make identical decisions everywhere.
    crash_rate / hang_rate / transient_rate / corrupt_rate:
        Per-site injection probabilities in ``[0, 1]``.  A rate of 1.0
        injects deterministically at every matching site.
    events:
        Explicit ``(kind, label)`` pairs that always inject on the
        first attempt at the matching site, independent of the rates —
        the precise form chaos tests pin their scenarios with.
    hang_seconds:
        Real sleep length of an injected hang on the process executor
        (long enough to trip the watchdog; elsewhere the hang is
        simulated by raising :class:`~repro.errors.JobTimeoutError`).
    first_attempt_only:
        When True (default), rate-based worker faults fire only on
        ``attempt == 1`` — retried attempts run clean, so bounded
        retries provably recover.  Explicit events always fire on the
        first attempt only.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    transient_rate: float = 0.0
    corrupt_rate: float = 0.0
    events: tuple = field(default_factory=tuple)
    hang_seconds: float = 30.0
    first_attempt_only: bool = True

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "transient_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        events = tuple((str(kind), str(label)) for kind, label in self.events)
        for kind, _label in events:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    f"(expected one of {', '.join(FAULT_KINDS)})"
                )
        object.__setattr__(self, "events", events)

    # -- decisions ------------------------------------------------------

    def decide(self, kind: str, label: str, attempt: int = 1) -> bool:
        """Should a *kind* fault inject at site *label*, attempt N?

        Explicit events fire on the first attempt; rates draw from the
        deterministic hash (first attempt only unless
        ``first_attempt_only=False``).
        """
        if (kind, label) in self.events:
            return attempt == 1
        rate = getattr(self, f"{kind}_rate", 0.0)
        if rate <= 0.0:
            return False
        if self.first_attempt_only and attempt > 1:
            return False
        return _uniform(self.seed, kind, label, attempt) < rate

    def worker_fault(self, label: str, attempt: int = 1) -> str | None:
        """The fault kind to inject in a worker, or None.

        Checked in a fixed order (crash, hang, transient) so one
        decision wins deterministically when several rates are set.
        """
        for kind in ("crash", "hang", "transient"):
            if self.decide(kind, label, attempt):
                return kind
        return None

    def corrupt_read(self, key: str) -> bool:
        """Should this store read of *key* return corrupted bytes?

        Fires at most once per key per process (read-count tracked
        module-locally), so the corrupt-discard-recompute-republish
        cycle converges instead of corrupting every re-read.
        """
        _READ_COUNTS[key] = _READ_COUNTS.get(key, 0) + 1
        if _READ_COUNTS[key] > 1:
            return False
        return self.decide("corrupt", key)


# -- ambient activation -------------------------------------------------


def activate(plan: FaultPlan | None) -> None:
    """Make *plan* the process-ambient plan (None deactivates).

    Resets the per-key read counters so one-shot corruption decisions
    start fresh with every activation.
    """
    global _ACTIVE
    _ACTIVE = plan
    _READ_COUNTS.clear()


def deactivate() -> None:
    """Clear the ambient plan."""
    activate(None)


def active_plan() -> FaultPlan | None:
    """The ambiently active plan of this process, if any."""
    return _ACTIVE


@contextlib.contextmanager
def fault_context(plan: FaultPlan | None):
    """Activate *plan* for the duration of a ``with`` block."""
    previous = _ACTIVE
    activate(plan)
    try:
        yield plan
    finally:
        activate(previous)
