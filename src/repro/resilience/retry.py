"""Bounded retries with seeded exponential backoff.

A :class:`RetryPolicy` describes *how many times* the batch runner may
re-attempt a retryable failure (timeouts, worker crashes, transient
solver errors) and *how long* to wait between rounds.  The delay is
exponential with an optional jitter term drawn from a
``SeedSequence([seed, attempt])`` generator, so two runs with the same
runner seed back off identically — determinism extends all the way into
the recovery schedule.

Retried attempts re-use the job's original per-job
:class:`~numpy.random.SeedSequence` child, so a recovered result is
bit-identical to what an undisturbed run would have produced.  That
equivalence is what the chaos oracle tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a retryable job failure.

    Attributes
    ----------
    max_attempts:
        Total attempts per job including the first (``1`` disables
        retries entirely).
    base_delay:
        Backoff before the first retry, in seconds.  The default of
        zero keeps test suites fast; production traffic wants a small
        positive value.
    multiplier:
        Exponential growth factor: retry *n* (1-based) waits
        ``base_delay * multiplier ** (n - 1)`` seconds, capped at
        ``max_delay``.
    max_delay:
        Upper bound on any single backoff sleep, in seconds.
    jitter:
        Width of the uniform random term added to each delay, drawn
        from a generator seeded with ``(seed, attempt)`` so the jitter
        itself replays deterministically.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        for name in ("base_delay", "multiplier", "max_delay", "jitter"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")

    @classmethod
    def resolve(cls, retries) -> "RetryPolicy":
        """Coerce the user-facing ``retries=`` knob into a policy.

        ``None`` means no retries, an int means that many *extra*
        attempts on top of the first, and a ready-made policy passes
        through unchanged.
        """
        if retries is None:
            return cls(max_attempts=1)
        if isinstance(retries, RetryPolicy):
            return retries
        if isinstance(retries, bool) or not isinstance(retries, int):
            raise TypeError(
                "retries must be None, an int, or a RetryPolicy, "
                f"got {retries!r}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        return cls(max_attempts=retries + 1)

    def delay(self, attempt: int, seed: int = 0) -> float:
        """Backoff in seconds before attempt ``attempt + 1``.

        *attempt* counts completed attempts (1-based), so the delay
        after the first failure is ``delay(1)``.
        """
        base = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if self.jitter > 0.0:
            rng = np.random.default_rng(
                np.random.SeedSequence([int(seed) & 0xFFFFFFFF, attempt])
            )
            base = min(base + rng.uniform(0.0, self.jitter), self.max_delay)
        return base
