"""Exact solutions of linear SDEs (Ornstein-Uhlenbeck processes).

Paper Fig. 10 overlays the EM result on the "analytical solution" of its
test circuit.  A noise-driven RC node is exactly the Ornstein-Uhlenbeck
process

.. math::  dX = (a - \\lambda X)\\,dt + \\sigma\\,dW

whose transient mean and variance are closed-form:

.. math::

    \\mathbb E[X(t)] = X_0 e^{-\\lambda t} + \\frac{a}{\\lambda}
                       (1 - e^{-\\lambda t}),
    \\qquad
    \\operatorname{Var}[X(t)] = \\frac{\\sigma^2}{2\\lambda}
                       (1 - e^{-2\\lambda t}).

The scalar class also samples *exact* paths through the Gaussian
transition density, giving a reference that contains no discretization
error at all.  :class:`VectorOrnsteinUhlenbeck` extends the mean/
covariance formulas to the matrix case via the matrix exponential.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.errors import AnalysisError


class OrnsteinUhlenbeck:
    """Scalar OU process ``dX = (a - lambda X) dt + sigma dW``."""

    def __init__(
        self,
        decay_rate: float,
        noise_amplitude: float,
        drift_level: float = 0.0,
        x0: float = 0.0,
    ) -> None:
        if decay_rate <= 0.0:
            raise AnalysisError(f"decay rate must be positive, got {decay_rate!r}")
        if noise_amplitude < 0.0:
            raise AnalysisError("noise amplitude must be non-negative")
        self.decay_rate = float(decay_rate)
        self.noise_amplitude = float(noise_amplitude)
        self.drift_level = float(drift_level)
        self.x0 = float(x0)

    # ------------------------------------------------------------------
    # Closed forms
    # ------------------------------------------------------------------

    def mean(self, t) -> np.ndarray:
        """``E[X(t)]``."""
        t = np.asarray(t, dtype=float)
        decay = np.exp(-self.decay_rate * t)
        settled = self.drift_level / self.decay_rate
        return self.x0 * decay + settled * (1.0 - decay)

    def variance(self, t) -> np.ndarray:
        """``Var[X(t)]``."""
        t = np.asarray(t, dtype=float)
        return (
            self.noise_amplitude**2
            / (2.0 * self.decay_rate)
            * (1.0 - np.exp(-2.0 * self.decay_rate * t))
        )

    def std(self, t) -> np.ndarray:
        """Standard deviation at *t*."""
        return np.sqrt(self.variance(t))

    def stationary_variance(self) -> float:
        """``sigma^2 / (2 lambda)`` — the ``t -> inf`` limit."""
        return self.noise_amplitude**2 / (2.0 * self.decay_rate)

    def autocovariance(self, t: float, s: float) -> float:
        """``Cov[X(t), X(s)]`` for ``t, s >= 0``."""
        lam = self.decay_rate
        lo, hi = min(t, s), max(t, s)
        return (
            self.noise_amplitude**2
            / (2.0 * lam)
            * np.exp(-lam * (hi - lo))
            * (1.0 - np.exp(-2.0 * lam * lo))
        )

    # ------------------------------------------------------------------
    # Exact path sampling (no discretization error)
    # ------------------------------------------------------------------

    def sample_exact(
        self, t_final: float, steps: int, n_paths: int = 1, rng=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample exact OU paths on a uniform grid.

        Uses the Gaussian transition density

        ``X(t+dt) | X(t) ~ N(m(X(t)), v)`` with
        ``m(x) = x e^{-lam dt} + (a/lam)(1 - e^{-lam dt})`` and
        ``v = sigma^2 (1 - e^{-2 lam dt}) / (2 lam)``.

        Returns ``(times, paths)`` with ``paths`` of shape
        ``(n_paths, steps + 1)``.
        """
        if steps < 1:
            raise AnalysisError("steps must be >= 1")
        generator = np.random.default_rng(rng)
        dt = t_final / steps
        lam = self.decay_rate
        decay = np.exp(-lam * dt)
        settled = self.drift_level / lam
        transition_std = np.sqrt(
            self.noise_amplitude**2 * (1.0 - decay**2) / (2.0 * lam)
        )
        times = np.linspace(0.0, t_final, steps + 1)
        paths = np.empty((n_paths, steps + 1))
        paths[:, 0] = self.x0
        for j in range(steps):
            noise = generator.normal(0.0, transition_std, size=n_paths)
            paths[:, j + 1] = paths[:, j] * decay + settled * (1.0 - decay) + noise
        return times, paths

    @classmethod
    def from_rc(
        cls,
        resistance: float,
        capacitance: float,
        noise_current: float,
        drive_current: float = 0.0,
        x0: float = 0.0,
    ) -> "OrnsteinUhlenbeck":
        """OU parameters of a noisy RC node.

        ``C dV = (I_drive - V/R) dt + i_n dW`` gives
        ``lambda = 1/(RC)``, ``sigma = i_n / C``, ``a = I_drive / C``.
        """
        if resistance <= 0.0 or capacitance <= 0.0:
            raise AnalysisError("R and C must be positive")
        return cls(
            decay_rate=1.0 / (resistance * capacitance),
            noise_amplitude=noise_current / capacitance,
            drift_level=drive_current / capacitance,
            x0=x0,
        )


class VectorOrnsteinUhlenbeck:
    """Matrix OU process ``dX = (A X + f) dt + S dW`` (constant A, f, S).

    Provides the exact mean trajectory (matrix exponential) and the
    transient covariance through numerical quadrature of

    .. math::  P(t) = \\int_0^t e^{A s} S S^T e^{A^T s}\\, ds
    """

    def __init__(self, drift_matrix, noise_matrix, drift_offset=None, x0=None) -> None:
        self.a = np.atleast_2d(np.asarray(drift_matrix, dtype=float))
        self.s = np.atleast_2d(np.asarray(noise_matrix, dtype=float))
        n = self.a.shape[0]
        if self.a.shape != (n, n):
            raise AnalysisError("drift matrix must be square")
        self.f = (
            np.zeros(n)
            if drift_offset is None
            else np.asarray(drift_offset, dtype=float)
        )
        self.x0 = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float)
        self.dimension = n

    def mean(self, t: float) -> np.ndarray:
        """Exact ``E[X(t)]`` via the matrix exponential."""
        phi = expm(self.a * t)
        homogeneous = phi @ self.x0
        # Particular part: A^{-1}(phi - I) f, computed stably via solve.
        rhs = (phi - np.eye(self.dimension)) @ self.f
        particular = np.linalg.solve(self.a, rhs)
        return homogeneous + particular

    def covariance(self, t: float, quadrature_points: int = 401) -> np.ndarray:
        """``Cov[X(t)]`` by Simpson quadrature of the Lyapunov integral."""
        if quadrature_points < 3 or quadrature_points % 2 == 0:
            raise AnalysisError("quadrature_points must be odd and >= 3")
        grid = np.linspace(0.0, t, quadrature_points)
        q = self.s @ self.s.T
        integrands = np.empty((quadrature_points, self.dimension, self.dimension))
        for k, s_val in enumerate(grid):
            phi = expm(self.a * s_val)
            integrands[k] = phi @ q @ phi.T
        h = grid[1] - grid[0]
        weights = np.ones(quadrature_points)
        weights[1:-1:2] = 4.0
        weights[2:-1:2] = 2.0
        return (h / 3.0) * np.einsum("k,kij->ij", weights, integrands)

    def std(self, t: float, index: int = 0) -> float:
        """Standard deviation of component *index* at time *t*."""
        return float(np.sqrt(self.covariance(t)[index, index]))
