"""Monte-Carlo ensemble statistics over EM runs.

Wraps :func:`~repro.stochastic.em.euler_maruyama` with the statistics the
performance-prediction experiments need: pointwise mean/std bands with
standard errors, empirical confidence intervals, and convergence studies
(weak and strong error versus step size, after Higham's SIAM Review
exposition the paper cites as [13]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.stochastic.em import EMResult, euler_maruyama
from repro.stochastic.sde import LinearSDE


@dataclass
class EnsembleStatistics:
    """Pointwise ensemble statistics of one state component."""

    times: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    standard_error: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    n_paths: int
    confidence: float

    def band_width(self) -> np.ndarray:
        """Upper minus lower confidence envelope."""
        return self.upper - self.lower


def run_ensemble(sde: LinearSDE, x0, t_final: float, steps: int,
                 n_paths: int, rng=None, component: int = 0,
                 confidence: float = 0.95,
                 antithetic: bool = False) -> EnsembleStatistics:
    """Integrate an ensemble and summarize one component.

    The confidence band is empirical (quantiles of the path ensemble),
    not Gaussian-assumed — NDR-linearized circuits can be skewed.
    """
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence!r}")
    result = euler_maruyama(sde, x0, t_final, steps, n_paths=n_paths,
                            rng=rng, antithetic=antithetic)
    values = result.component(component)
    tail = 0.5 * (1.0 - confidence)
    return EnsembleStatistics(
        times=result.times,
        mean=values.mean(axis=0),
        std=values.std(axis=0, ddof=1),
        standard_error=values.std(axis=0, ddof=1) / np.sqrt(n_paths),
        lower=np.quantile(values, tail, axis=0),
        upper=np.quantile(values, 1.0 - tail, axis=0),
        n_paths=n_paths,
        confidence=confidence,
    )


def weak_error_study(sde: LinearSDE, x0, t_final: float,
                     exact_mean_final: float, step_counts,
                     n_paths: int = 20000, rng=None,
                     component: int = 0) -> dict[int, float]:
    """Weak error ``|E[X_L] - E[X(T)]|`` versus number of steps.

    EM converges weakly at order 1: halving ``dt`` should halve the
    error (up to Monte-Carlo noise; use ``antithetic`` ensembles and
    large ``n_paths``).
    """
    errors: dict[int, float] = {}
    generator = np.random.default_rng(rng)
    for steps in step_counts:
        result = euler_maruyama(sde, x0, t_final, int(steps),
                                n_paths=n_paths, rng=generator,
                                antithetic=(n_paths % 2 == 0))
        final_mean = result.component(component)[:, -1].mean()
        errors[int(steps)] = abs(final_mean - exact_mean_final)
    return errors


def strong_error_study(sde: LinearSDE, x0, t_final: float,
                       fine_steps: int, coarsenings,
                       n_paths: int = 256, rng=None,
                       component: int = 0) -> dict[int, float]:
    """Strong error ``E|X_L - X_ref(T)|`` versus step size.

    A fine-grid EM solution serves as the reference; coarser runs reuse
    the *same* Brownian increments (summed in blocks), so differences
    measure discretization error only.  EM converges strongly at order
    1/2 for multiplicative noise and order 1 for the additive noise used
    here.
    """
    generator = np.random.default_rng(rng)
    dt_fine = t_final / fine_steps
    dw_fine = generator.normal(
        0.0, np.sqrt(dt_fine), size=(n_paths, fine_steps, sde.num_noises))
    reference = euler_maruyama(sde, x0, t_final, fine_steps,
                               n_paths=n_paths, dw=dw_fine)
    reference_final = reference.component(component)[:, -1]
    errors: dict[int, float] = {}
    for factor in coarsenings:
        factor = int(factor)
        if fine_steps % factor != 0:
            raise AnalysisError(
                f"coarsening {factor} does not divide fine_steps {fine_steps}")
        coarse_steps = fine_steps // factor
        blocks = dw_fine.reshape(n_paths, coarse_steps, factor,
                                 sde.num_noises)
        dw_coarse = blocks.sum(axis=2)
        coarse = euler_maruyama(sde, x0, t_final, coarse_steps,
                                n_paths=n_paths, dw=dw_coarse)
        coarse_final = coarse.component(component)[:, -1]
        errors[factor] = float(np.mean(np.abs(coarse_final
                                              - reference_final)))
    return errors
