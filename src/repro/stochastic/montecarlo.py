"""Monte-Carlo ensemble statistics over EM runs.

Wraps :func:`~repro.stochastic.em.euler_maruyama` with the statistics the
performance-prediction experiments need: pointwise mean/std bands with
standard errors, empirical confidence intervals, and convergence studies
(weak and strong error versus step size, after Higham's SIAM Review
exposition the paper cites as [13]).

Circuit-noise ensembles additionally route through the lockstep SWEC
engine (:func:`run_circuit_ensemble` /
:func:`run_circuit_ensemble_parallel`): K noise realizations of one
circuit march on a shared fixed grid with one batched solve per time
point — the implicit Euler-Maruyama form of the paper's eq. (13), with
per-path ``SeedSequence`` streams so results are bit-identical for any
worker count or chunk split.  Switching on any variance-reduction knob
(``control_variate=``, ``antithetic=``, ``target_ci=`` /
``target_rel_ci=``) routes the same entry points through
:mod:`repro.stochastic.vr`, which returns the richer
:class:`~repro.stochastic.vr.VarianceReducedStatistics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.stochastic.em import euler_maruyama
from repro.stochastic.sde import LinearSDE


@dataclass
class EnsembleStatistics:
    """Pointwise ensemble statistics of one state component."""

    times: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    standard_error: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    n_paths: int
    confidence: float

    def band_width(self) -> np.ndarray:
        """Upper minus lower confidence envelope."""
        return self.upper - self.lower


def ensemble_statistics(
    times: np.ndarray, values: np.ndarray, confidence: float = 0.95
) -> EnsembleStatistics:
    """Summarize a ``(n_paths, len(times))`` component sample.

    The confidence band is empirical (quantiles of the path ensemble),
    not Gaussian-assumed — NDR-linearized circuits can be skewed.
    """
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence!r}")
    values = np.asarray(values, dtype=float)
    n_paths = values.shape[0]
    if n_paths < 2:
        raise AnalysisError(f"ensemble statistics need >= 2 paths, got {n_paths}")
    tail = 0.5 * (1.0 - confidence)
    std = values.std(axis=0, ddof=1)
    return EnsembleStatistics(
        times=np.asarray(times, dtype=float),
        mean=values.mean(axis=0),
        std=std,
        standard_error=std / np.sqrt(n_paths),
        lower=np.quantile(values, tail, axis=0),
        upper=np.quantile(values, 1.0 - tail, axis=0),
        n_paths=n_paths,
        confidence=confidence,
    )


def _vr_active(control_variate, antithetic, target_ci, target_rel_ci) -> bool:
    """Does any variance-reduction knob route a run through vr.py?"""
    return (
        control_variate
        or antithetic
        or target_ci is not None
        or target_rel_ci is not None
    )


def run_ensemble(
    sde: LinearSDE,
    x0,
    t_final: float,
    steps: int,
    n_paths: int,
    rng=None,
    component: int = 0,
    confidence: float = 0.95,
    antithetic: bool = False,
) -> EnsembleStatistics:
    """Integrate an ensemble and summarize one component."""
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence!r}")
    result = euler_maruyama(
        sde, x0, t_final, steps, n_paths=n_paths, rng=rng, antithetic=antithetic
    )
    return ensemble_statistics(result.times, result.component(component), confidence)


def run_ensembles(jobs, runner=None) -> list[EnsembleStatistics]:
    """Run many :class:`~repro.runtime.EnsembleJob` specs through a
    :class:`~repro.runtime.BatchRunner` (one worker process per job).

    Seeding is handled by the runner's deterministic ``SeedSequence``
    spawn, so the statistics reproduce bit-for-bit at any worker count.
    Raises if any job failed; returns the statistics in job order.
    """
    from repro.runtime import BatchRunner

    runner = runner or BatchRunner()
    report = runner.run(list(jobs))
    report.raise_failures()
    return report.values()


def run_ensemble_parallel(
    sde_builder,
    t_final: float,
    steps: int,
    n_paths: int,
    chunks: int = 4,
    x0=None,
    component: int = 0,
    confidence: float = 0.95,
    antithetic: bool = False,
    runner=None,
    params: dict | None = None,
) -> EnsembleStatistics:
    """One large ensemble, integrated as *chunks* parallel sub-ensembles.

    *sde_builder* is a picklable :class:`LinearSDE`, a builder callable,
    or an :data:`~repro.runtime.SDE_BUILDERS` name (resolved with
    *params* inside each worker).  Per-path seed streams are spawned
    from the runner's base seed *before* chunking — path *i* always
    draws from child *i* of ``SeedSequence(runner.seed)`` no matter
    which chunk executes it — so for a fixed runner seed the statistics
    are bit-identical at any ``chunks`` value and any worker count.
    With the default runner, each call draws fresh entropy (independent
    replications) that ``BatchReport.seed`` records for replay.

    ``antithetic`` assigns each *pair* of consecutive paths one seed
    stream and mirrors its increments; ``n_paths`` must then split into
    even chunks, i.e. be divisible by ``2 * chunks``.
    """
    from repro.runtime import BatchRunner, EnsembleJob

    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence!r}")
    if chunks < 1:
        raise AnalysisError(f"chunks must be >= 1, got {chunks!r}")
    if n_paths < chunks:
        raise AnalysisError(f"n_paths ({n_paths}) must be >= chunks ({chunks})")
    if antithetic and n_paths % (2 * chunks) != 0:
        raise AnalysisError(
            f"antithetic parallel ensembles need n_paths divisible by "
            f"2 * chunks ({2 * chunks}), got {n_paths}"
        )
    runner = runner or BatchRunner()
    stride = 2 if antithetic else 1
    path_seeds = np.random.SeedSequence(runner.seed).spawn(n_paths // stride)
    base, extra = divmod(n_paths, chunks)
    sizes = [base + (1 if k < extra else 0) for k in range(chunks)]
    direct = isinstance(sde_builder, LinearSDE)
    jobs, offset = [], 0
    for k, size in enumerate(sizes):
        jobs.append(
            EnsembleJob(
                t_final=t_final,
                steps=steps,
                n_paths=size,
                sde=sde_builder if direct else None,
                builder=None if direct else sde_builder,
                params=dict(params or {}),
                x0=x0,
                component=component,
                antithetic=antithetic,
                path_seeds=path_seeds[offset // stride : (offset + size) // stride],
                return_paths=True,
                label=f"chunk-{k}",
            )
        )
        offset += size
    report = runner.run(jobs)
    report.raise_failures()
    results = report.values()
    values = np.concatenate([r.component(component) for r in results], axis=0)
    return ensemble_statistics(results[0].times, values, confidence)


def run_circuit_ensemble(
    circuit,
    noise,
    t_stop: float,
    steps: int,
    n_paths: int,
    node: str | None = None,
    seed=None,
    options=None,
    confidence: float = 0.95,
    return_result: bool = False,
    backend: str | None = None,
    control_variate: bool = False,
    antithetic: bool = False,
    target_ci: float | None = None,
    target_rel_ci: float | None = None,
    max_trials: int | None = None,
    batch_size: int | None = None,
):
    """K circuit-noise realizations through the lockstep SWEC engine.

    *circuit* is a :class:`~repro.circuit.Circuit` (voltage sources
    and all — unlike :class:`~repro.stochastic.sde.CircuitSDE`, the
    implicit march needs no Norton rewrite) and *noise* the
    ``(node, amplitude)`` white-noise current injections of eq. (13).
    All ``n_paths`` instances march a shared uniform grid of *steps*
    backward-Euler-Maruyama steps with one batched solve per point;
    path *i* always draws from child *i* of ``SeedSequence(seed)``, so
    the statistics are bit-reproducible and split-invariant.

    Returns :class:`EnsembleStatistics` of the voltage at *node*
    (default: the first noise injection node), or the raw
    :class:`~repro.swec.ensemble.EnsembleTransientResult` with
    ``return_paths``-style ``return_result=True``.  *backend* names
    the :mod:`repro.core.backends` solver for the march (``sparse``
    turns grid-mesh noise ensembles tractable); it overrides any
    ``options.backend`` setting.

    Any variance-reduction knob (``control_variate=``, ``antithetic=``,
    ``target_ci=``/``target_rel_ci=``) routes the run through
    :func:`repro.stochastic.vr.run_circuit_ensemble_vr`: paths then run
    in ``batch_size`` batches up to ``max_trials`` (default:
    ``n_paths``) and the result is a
    :class:`~repro.stochastic.vr.VarianceReducedStatistics` with a
    Gaussian confidence band.
    """
    from repro.runtime.jobs import apply_backend
    from repro.swec.ensemble import SwecEnsembleTransient

    if steps < 1:
        raise AnalysisError(f"steps must be >= 1, got {steps!r}")
    if n_paths < 1:
        raise AnalysisError(f"n_paths must be >= 1, got {n_paths!r}")
    if _vr_active(control_variate, antithetic, target_ci, target_rel_ci):
        if return_result:
            raise AnalysisError(
                "return_result= is incompatible with variance reduction "
                "(the raw path stack is consumed batch by batch)"
            )
        from repro.stochastic.vr import run_circuit_ensemble_vr

        return run_circuit_ensemble_vr(
            circuit,
            noise,
            t_stop,
            steps,
            node=node,
            seed=seed,
            options=options,
            confidence=confidence,
            backend=backend,
            control_variate=control_variate,
            antithetic=antithetic,
            target_ci=target_ci,
            target_rel_ci=target_rel_ci,
            max_trials=max_trials or n_paths,
            batch_size=batch_size,
        )
    noise = list(noise.items()) if hasattr(noise, "items") else list(noise)
    if not noise:
        raise AnalysisError("need at least one (node, amplitude) injection")
    options = apply_backend(options, backend)
    engine = SwecEnsembleTransient(circuit, options, n_instances=n_paths, noise=noise)
    times = np.linspace(0.0, float(t_stop), int(steps) + 1)
    seeds = np.random.SeedSequence(seed).spawn(n_paths)
    result = engine.run_grid(times, seeds=seeds)
    if return_result:
        return result
    node = noise[0][0] if node is None else node
    return ensemble_statistics(result.times, result.voltage(node), confidence)


def run_circuit_ensemble_parallel(
    builder,
    noise,
    t_stop: float,
    steps: int,
    n_paths: int,
    chunks: int = 4,
    node: str | None = None,
    seed: int = 0,
    options=None,
    confidence: float = 0.95,
    params: dict | None = None,
    runner=None,
    backend: str | None = None,
    control_variate: bool = False,
    antithetic: bool = False,
    target_ci: float | None = None,
    target_rel_ci: float | None = None,
    max_trials: int | None = None,
    batch_size: int | None = None,
) -> EnsembleStatistics:
    """One large circuit-noise ensemble as *chunks* lockstep batches.

    *builder* is a :mod:`repro.circuits_lib` circuit builder (or its
    name) invoked with *params* inside each worker.  The per-path RNG
    streams are spawned *before* chunking — path *i* uses child *i* of
    ``SeedSequence(seed)`` no matter which chunk executes it — and
    every path marches the same fixed grid independently, so the
    result is bit-identical for any ``chunks`` value and any worker
    count.

    The variance-reduction knobs mirror :func:`run_circuit_ensemble`;
    when any is switched on, batches of ``batch_size`` paths are split
    over ``chunks`` :class:`~repro.runtime.EnsembleTransientJob`
    sub-jobs per round and the stopping decisions are made on the
    concatenated (canonically ordered) paths, so serial and chunked
    adaptive runs stop at the same trial count with identical
    statistics.
    """
    from repro.runtime import BatchRunner
    from repro.runtime.jobs import EnsembleTransientJob, materialize_circuit

    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence!r}")
    if chunks < 1:
        raise AnalysisError(f"chunks must be >= 1, got {chunks!r}")
    if n_paths < chunks:
        raise AnalysisError(f"n_paths ({n_paths}) must be >= chunks ({chunks})")
    noise = list(noise.items()) if hasattr(noise, "items") else list(noise)
    if not noise:
        raise AnalysisError("need at least one (node, amplitude) injection")
    if node is None:
        node = noise[0][0]
    if _vr_active(control_variate, antithetic, target_ci, target_rel_ci):
        from repro.stochastic.vr import run_circuit_ensemble_vr

        built = materialize_circuit(None, builder, None, dict(params or {}))
        circuit = EnsembleTransientJob._as_circuit(built)
        return run_circuit_ensemble_vr(
            circuit,
            noise,
            t_stop,
            steps,
            node=node,
            seed=seed,
            options=options,
            confidence=confidence,
            backend=backend,
            control_variate=control_variate,
            antithetic=antithetic,
            target_ci=target_ci,
            target_rel_ci=target_rel_ci,
            max_trials=max_trials or n_paths,
            batch_size=batch_size,
            chunks=chunks,
            runner=runner,
        )
    path_seeds = np.random.SeedSequence(seed).spawn(n_paths)
    base, extra = divmod(n_paths, chunks)
    sizes = [base + (1 if k < extra else 0) for k in range(chunks)]
    jobs, offset = [], 0
    for k, size in enumerate(sizes):
        jobs.append(
            EnsembleTransientJob(
                t_stop=t_stop,
                builder=builder,
                params=dict(params or {}),
                n_instances=size,
                steps=steps,
                noise=noise,
                options=options,
                path_seeds=path_seeds[offset : offset + size],
                return_result=True,
                backend=backend,
                label=f"chunk-{k}",
            )
        )
        offset += size
    runner = runner or BatchRunner()
    report = runner.run(jobs)
    report.raise_failures()
    results = report.values()
    values = np.concatenate([r.voltage(node) for r in results], axis=0)
    return ensemble_statistics(results[0].times, values, confidence)


def weak_error_study(
    sde: LinearSDE,
    x0,
    t_final: float,
    exact_mean_final: float,
    step_counts,
    n_paths: int = 20000,
    rng=None,
    component: int = 0,
) -> dict[int, float]:
    """Weak error ``|E[X_L] - E[X(T)]|`` versus number of steps.

    EM converges weakly at order 1: halving ``dt`` should halve the
    error (up to Monte-Carlo noise; use ``antithetic`` ensembles and
    large ``n_paths``).
    """
    errors: dict[int, float] = {}
    generator = np.random.default_rng(rng)
    for steps in step_counts:
        result = euler_maruyama(
            sde,
            x0,
            t_final,
            int(steps),
            n_paths=n_paths,
            rng=generator,
            antithetic=(n_paths % 2 == 0),
        )
        final_mean = result.component(component)[:, -1].mean()
        errors[int(steps)] = abs(final_mean - exact_mean_final)
    return errors


def strong_error_study(
    sde: LinearSDE,
    x0,
    t_final: float,
    fine_steps: int,
    coarsenings,
    n_paths: int = 256,
    rng=None,
    component: int = 0,
) -> dict[int, float]:
    """Strong error ``E|X_L - X_ref(T)|`` versus step size.

    A fine-grid EM solution serves as the reference; coarser runs reuse
    the *same* Brownian increments (summed in blocks), so differences
    measure discretization error only.  EM converges strongly at order
    1/2 for multiplicative noise and order 1 for the additive noise used
    here.
    """
    generator = np.random.default_rng(rng)
    dt_fine = t_final / fine_steps
    dw_fine = generator.normal(
        0.0, math.sqrt(dt_fine), size=(n_paths, fine_steps, sde.num_noises)
    )
    reference = euler_maruyama(
        sde, x0, t_final, fine_steps, n_paths=n_paths, dw=dw_fine
    )
    reference_final = reference.component(component)[:, -1]
    errors: dict[int, float] = {}
    for factor in coarsenings:
        factor = int(factor)
        if fine_steps % factor != 0:
            raise AnalysisError(
                f"coarsening {factor} does not divide fine_steps {fine_steps}"
            )
        coarse_steps = fine_steps // factor
        blocks = dw_fine.reshape(n_paths, coarse_steps, factor, sde.num_noises)
        dw_coarse = blocks.sum(axis=2)
        coarse = euler_maruyama(
            sde, x0, t_final, coarse_steps, n_paths=n_paths, dw=dw_coarse
        )
        coarse_final = coarse.component(component)[:, -1]
        errors[factor] = float(np.mean(np.abs(coarse_final - reference_final)))
    return errors
