"""Wiener process (Brownian motion) sampling.

Implements the discretized standard Wiener process of paper Section 4.1:
``W(0) = 0``; increments ``W(t) - W(s) ~ N(0, t - s)`` independent over
disjoint intervals.  Paths are sampled on a uniform grid ``dt = T/N``; the
:func:`brownian_bridge` helper refines a coarse path onto a finer grid
without changing the coarse values — the tool behind strong-convergence
studies (the fine and coarse solutions must share one Brownian path).
"""

from __future__ import annotations

import numpy as np


class WienerProcess:
    """Sampler for standard Wiener process paths on ``[0, T]``.

    Parameters
    ----------
    t_final:
        Horizon ``T``.
    steps:
        Number of increments ``N``; the grid has ``N + 1`` points.
    rng:
        ``numpy.random.Generator`` (or seed) for reproducibility.
    """

    def __init__(self, t_final: float, steps: int, rng=None) -> None:
        if t_final <= 0.0:
            raise ValueError(f"t_final must be positive, got {t_final!r}")
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps!r}")
        self.t_final = float(t_final)
        self.steps = int(steps)
        self.dt = self.t_final / self.steps
        self.rng = np.random.default_rng(rng)

    @property
    def times(self) -> np.ndarray:
        """The uniform grid ``0, dt, 2dt, ..., T``."""
        return np.linspace(0.0, self.t_final, self.steps + 1)

    def increments(self, paths: int = 1) -> np.ndarray:
        """``(paths, N)`` matrix of ``dW ~ N(0, dt)`` increments."""
        if paths < 1:
            raise ValueError(f"paths must be >= 1, got {paths!r}")
        return self.rng.normal(0.0, np.sqrt(self.dt), size=(paths, self.steps))

    def sample(self, paths: int = 1) -> np.ndarray:
        """``(paths, N + 1)`` matrix of Wiener paths starting at 0."""
        dw = self.increments(paths)
        w = np.zeros((paths, self.steps + 1))
        np.cumsum(dw, axis=1, out=w[:, 1:])
        return w

    def antithetic_increments(self, paths: int) -> np.ndarray:
        """``(2*paths, N)`` increments in antithetic pairs ``(dW, -dW)``.

        Halves Monte-Carlo variance for odd-symmetric functionals.
        """
        dw = self.increments(paths)
        return np.vstack([dw, -dw])


def brownian_bridge(
    coarse_path: np.ndarray, coarse_dt: float, refinement: int, rng=None
) -> np.ndarray:
    """Refine a Wiener path by conditional (bridge) sampling.

    Given path values on a grid of spacing ``coarse_dt``, returns values
    on the grid of spacing ``coarse_dt / refinement`` that agree with the
    input at the coarse points and are distributed as a Wiener process in
    between.

    The bridge fills each interval recursively by midpoint bisection, so
    ``refinement`` must be a power of two.
    """
    path = np.asarray(coarse_path, dtype=float)
    if path.ndim != 1 or path.size < 2:
        raise ValueError("coarse_path must be a 1-D array of >= 2 values")
    if refinement < 1 or (refinement & (refinement - 1)) != 0:
        raise ValueError(f"refinement must be a power of two, got {refinement}")
    generator = np.random.default_rng(rng)
    current = path
    dt = float(coarse_dt)
    levels = int(np.log2(refinement))
    for _ in range(levels):
        dt /= 2.0
        midpoints = 0.5 * (current[:-1] + current[1:])
        midpoints = midpoints + generator.normal(
            0.0, np.sqrt(dt / 2.0), size=midpoints.shape
        )
        refined = np.empty(2 * current.size - 1)
        refined[0::2] = current
        refined[1::2] = midpoints
        current = refined
    return current
