"""Linear SDE models, including the circuit-derived form of eq. (13).

The paper's stochastic state equation is

.. math::  C\\,dx = (-G(t)\\,x + b(t))\\,dt + B\\,dW

:class:`LinearSDE` holds the explicit form
``dx = (A(t) x + f(t)) dt + S dW`` that the EM integrator consumes;
:class:`CircuitSDE` builds it from a :class:`~repro.circuit.Circuit` by
inverting the capacitance matrix (every node must carry a grounded
capacitor — physically, the parasitic capacitance the paper's Fig. 10
circuit includes).  Deterministic drives enter through the circuit's
current sources; noise enters as white-noise current injections at named
nodes.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.mna.assembler import MnaSystem
from repro.swec.conductance import SwecLinearization


class LinearSDE:
    """``dx = (A(t) x + f(t)) dt + S dW`` with ``m`` independent noises.

    Parameters
    ----------
    drift_matrix:
        Either a constant ``(n, n)`` array or a callable ``A(t)``.
    drift_offset:
        Constant ``(n,)`` array or callable ``f(t)``; defaults to zero.
    noise_matrix:
        ``(n, m)`` array ``S`` mapping the ``m`` Wiener differentials
        into the state equations.
    """

    def __init__(self, drift_matrix, noise_matrix, drift_offset=None) -> None:
        self._a = drift_matrix
        self._constant_a = not callable(drift_matrix)
        if self._constant_a:
            self._a = np.atleast_2d(np.asarray(drift_matrix, dtype=float))
        self.noise = np.atleast_2d(np.asarray(noise_matrix, dtype=float))
        self.dimension = self._a.shape[0] if self._constant_a else self.noise.shape[0]
        if self.noise.shape[0] != self.dimension:
            raise AnalysisError(
                f"noise matrix has {self.noise.shape[0]} rows, "
                f"state dimension is {self.dimension}"
            )
        self.num_noises = self.noise.shape[1]
        if drift_offset is None:
            self._f: Callable | np.ndarray = np.zeros(self.dimension)
            self._constant_f = True
        else:
            self._constant_f = not callable(drift_offset)
            self._f = (
                np.asarray(drift_offset, dtype=float)
                if self._constant_f
                else drift_offset
            )

    def drift_matrix(self, t: float) -> np.ndarray:
        """``A(t)``."""
        return (
            self._a
            if self._constant_a
            else np.atleast_2d(np.asarray(self._a(t), dtype=float))
        )

    def drift_offset(self, t: float) -> np.ndarray:
        """``f(t)``."""
        return self._f if self._constant_f else np.asarray(self._f(t), dtype=float)

    def drift(self, x: np.ndarray, t: float) -> np.ndarray:
        """Full drift ``A(t) x + f(t)``, vectorized over path rows.

        *x* may be ``(n,)`` or ``(paths, n)``.
        """
        a = self.drift_matrix(t)
        f = self.drift_offset(t)
        return x @ a.T + f

    def is_stable(self, t: float = 0.0) -> bool:
        """True when all eigenvalues of ``A(t)`` have negative real part."""
        eigenvalues = np.linalg.eigvals(self.drift_matrix(t))
        return bool(np.all(eigenvalues.real < 0.0))


class CircuitSDE(LinearSDE):
    """The paper's eq. (13) built from a circuit description.

    ``dx = C^{-1}(-G(t) x + b(t)) dt + C^{-1} B dW``

    Requirements: no voltage sources (use Norton equivalents), and a
    nonsingular node capacitance matrix (a grounded capacitor at every
    node).  Nonlinear devices are handled exactly as in the SWEC engine:
    their chord conductance, evaluated along the *mean* trajectory, makes
    ``G`` time-varying — which eq. (13) explicitly allows.
    """

    def __init__(
        self,
        circuit: Circuit,
        noise_nodes: Sequence[tuple[str, float]],
        linearize_at: np.ndarray | None = None,
    ) -> None:
        if circuit.voltage_sources:
            raise AnalysisError(
                "CircuitSDE needs current-driven circuits; replace voltage "
                "sources with Norton equivalents"
            )
        system = MnaSystem(circuit)
        if system.size != system.num_nodes:
            raise AnalysisError("inductors are not supported in CircuitSDE")
        self.system = system
        self.circuit = circuit
        c = system.capacitance_matrix()
        try:
            c_inverse = np.linalg.inv(c)
        except np.linalg.LinAlgError:
            raise AnalysisError(
                "capacitance matrix is singular: every node needs a "
                "grounded capacitor to form a well-posed SDE"
            ) from None
        self._c_inverse = c_inverse
        self._g_base = system.conductance_base()
        self._linearization = SwecLinearization(system, use_predictor=False)
        self._operating_state = (
            np.zeros(system.size)
            if linearize_at is None
            else np.asarray(linearize_at, dtype=float)
        )

        noise_matrix = np.zeros((system.size, len(noise_nodes)))
        for column, (node, amplitude) in enumerate(noise_nodes):
            index = system.node_index(node)
            if index < 0:
                raise AnalysisError("cannot inject noise at ground")
            noise_matrix[index, column] = float(amplitude)
        if circuit.nonlinear():
            def drift_a(t: float) -> np.ndarray:
                g = self._linearization.conductance_matrix(
                    self._g_base, self._operating_state
                )
                return -c_inverse @ g
        else:
            g = self._g_base
            constant_a = -c_inverse @ g
            drift_a = constant_a  # type: ignore[assignment]

        def drift_f(t: float) -> np.ndarray:
            return c_inverse @ system.source_vector(t)

        super().__init__(drift_a, c_inverse @ noise_matrix, drift_offset=drift_f)

    def set_operating_state(self, state: np.ndarray) -> None:
        """Update the linearization point for nonlinear devices."""
        state = np.asarray(state, dtype=float)
        if state.shape != (self.system.size,):
            raise AnalysisError(f"state must have shape ({self.system.size},)")
        self._operating_state = state
