"""Ito versus Stratonovich stochastic sums (paper eqs. 15-16).

The paper stresses that, unlike deterministic Riemann sums, the two
evaluation-point choices

.. math::

    \\sum_j h(t_j)\\,(W_{j+1} - W_j)                 \\qquad \\text{(Ito, eq. 15)}

    \\sum_j h\\!\\left(\\tfrac{t_j + t_{j+1}}{2}\\right)(W_{j+1} - W_j)
                                                    \\qquad \\text{(eq. 16)}

do **not** converge to the same limit when the integrand itself depends on
``W``.  The canonical example: :math:`\\int_0^T W\\,dW` is
``(W(T)^2 - T)/2`` under Ito but ``W(T)^2/2`` under Stratonovich — the
mismatch ``T/2`` does not vanish as the grid refines.  These helpers
compute both sums for arbitrary integrand samples so the benches (and
tests) can exhibit the gap quantitatively.
"""

from __future__ import annotations

import numpy as np


def _check(values: np.ndarray, path: np.ndarray) -> None:
    if values.shape != path.shape:
        raise ValueError(
            f"integrand and path shapes differ: {values.shape} vs {path.shape}"
        )
    if values.ndim != 1 or values.size < 2:
        raise ValueError("need 1-D arrays with at least two samples")


def ito_integral(integrand: np.ndarray, path: np.ndarray) -> float:
    """Left-point (Ito) stochastic sum: eq. (15).

    *integrand* holds ``h(t_j)`` sampled on the same grid as the Wiener
    *path* values ``W(t_j)``.
    """
    integrand = np.asarray(integrand, dtype=float)
    path = np.asarray(path, dtype=float)
    _check(integrand, path)
    return float(np.sum(integrand[:-1] * np.diff(path)))


def midpoint_integral(integrand: np.ndarray, path: np.ndarray) -> float:
    """Midpoint-in-time stochastic sum: eq. (16).

    Uses the average of the two endpoint integrand samples as a stand-in
    for ``h((t_j + t_{j+1})/2)``; when the integrand is the Wiener path
    itself this equals the Stratonovich sum exactly.
    """
    integrand = np.asarray(integrand, dtype=float)
    path = np.asarray(path, dtype=float)
    _check(integrand, path)
    midpoints = 0.5 * (integrand[:-1] + integrand[1:])
    return float(np.sum(midpoints * np.diff(path)))


def stratonovich_integral(integrand: np.ndarray, path: np.ndarray) -> float:
    """Alias for the midpoint sum; named for the calculus it realizes."""
    return midpoint_integral(integrand, path)


def ito_w_dw_exact(w_final: float, t_final: float) -> float:
    """Closed form of the Ito integral :math:`\\int_0^T W\\,dW`."""
    return 0.5 * (w_final * w_final - t_final)


def stratonovich_w_dw_exact(w_final: float) -> float:
    """Closed form of the Stratonovich integral :math:`\\int_0^T W\\circ dW`."""
    return 0.5 * w_final * w_final
