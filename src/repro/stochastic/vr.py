"""Variance-reduced, adaptively-stopping Monte-Carlo (beyond-paper layer).

The paper criticizes performance prediction that needs "hundreds to over
thousands of Monte Carlo simulations at each time point"; this module
attacks the constant in front of that count.  Three estimator upgrades
layer over the lockstep ensemble engine, composable and individually
switchable:

control variates
    Every noisy path is paired with a *control* path — the same noise
    increments driven through a linearized companion circuit
    (:func:`linearized_control_circuit`) whose discrete expectation is
    known exactly (one noise-free march of the linear system).  The
    optimal coefficient is estimated from a pilot batch and frozen, so
    the post-pilot estimate stays unbiased; for a linear circuit the
    control is the signal itself and the estimator variance collapses
    to zero.

antithetic variates
    Gaussian increments are mirrored in pairs: path ``2q`` draws from
    pair stream ``q``, path ``2q + 1`` uses the negated draws.  Pair
    streams are spawned up front from one ``SeedSequence``, so any
    chunk split at even path boundaries reproduces bit-identically.

adaptive trial counts
    Paths run in batches through the chunked ``(K, n, n)`` stack march;
    after each batch the running confidence interval is evaluated and
    the run stops at ``target_ci`` (absolute half-width) or
    ``target_rel_ci`` (half-width relative to the peak mean), with
    ``max_trials`` as the backstop.

Results come back as :class:`VarianceReducedStatistics` (pointwise, a
drop-in extension of
:class:`~repro.stochastic.montecarlo.EnsembleStatistics`) with an
sde_mc-style scalar :class:`MCStatistics` summary.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np
from scipy.stats import norm

from repro.errors import AnalysisError
from repro.stochastic.montecarlo import EnsembleStatistics

#: Smallest conductance substituted for a dead or negative linearized
#: branch, keeping every node of the control circuit connected.
G_FLOOR = 1e-12


@dataclass
class MCStatistics:
    """Scalar Monte-Carlo summary at the widest-CI grid point.

    The shape follows the ``MCStatistics`` record of the sde_mc
    control-variate literature: one mean, one deviation, one standard
    error and one confidence half-width, plus the bookkeeping that
    tells how the estimate was produced.
    """

    sample_mean: float
    sample_std: float
    standard_error: float
    ci_halfwidth: float
    confidence: float
    #: Raw paths actually simulated (the cost).
    n_paths: int
    #: Independent samples behind the estimate (pairs count once,
    #: control-variate pilot paths are excluded).
    n_samples: int
    n_batches: int
    stopped_early: bool
    control_variate: bool
    antithetic: bool
    #: Estimated naive-paths / reduced-paths ratio at matched CI width.
    variance_reduction: float
    time_elapsed: float


@dataclass
class VarianceReducedStatistics(EnsembleStatistics):
    """Pointwise statistics of a variance-reduced ensemble.

    Extends :class:`~repro.stochastic.montecarlo.EnsembleStatistics`
    with the estimator bookkeeping.  The confidence band here is
    Gaussian (``mean ± z · se``) — the same interval the adaptive
    stopping rule evaluates — not the empirical quantile band of the
    plain ensemble.  ``n_paths`` counts the independent samples behind
    the estimate; ``n_simulated`` counts raw paths marched.
    """

    n_simulated: int = 0
    n_batches: int = 0
    stopped_early: bool = False
    control_variate: bool = False
    antithetic: bool = False
    #: Plain-MC statistics over every simulated path, for comparison.
    naive_mean: np.ndarray | None = None
    naive_std: np.ndarray | None = None
    naive_standard_error: np.ndarray | None = None
    #: Frozen pilot-batch coefficient ``c(t)`` (control variates only).
    cv_coefficient: np.ndarray | None = None
    #: Pilot signal/control correlation at the widest-variance point.
    cv_correlation: float | None = None
    #: Exact discrete mean of the control (noise-free linear march).
    control_mean: np.ndarray | None = None
    variance_reduction: float = 1.0
    time_elapsed: float = 0.0

    def summary(self) -> MCStatistics:
        """Scalar summary at the widest-CI grid point."""
        w = int(np.argmax(self.standard_error))
        z = norm.ppf(0.5 * (1.0 + self.confidence))
        return MCStatistics(
            sample_mean=float(self.mean[w]),
            sample_std=float(self.std[w]),
            standard_error=float(self.standard_error[w]),
            ci_halfwidth=float(z * self.standard_error[w]),
            confidence=self.confidence,
            n_paths=self.n_simulated,
            n_samples=self.n_paths,
            n_batches=self.n_batches,
            stopped_early=self.stopped_early,
            control_variate=self.control_variate,
            antithetic=self.antithetic,
            variance_reduction=self.variance_reduction,
            time_elapsed=self.time_elapsed,
        )


def path_normals(seeds, steps: int, m: int) -> np.ndarray:
    """``(len(seeds), steps, m)`` standard normals, one stream per seed.

    Draws exactly like the lockstep engine's internal per-seed path
    (:meth:`~repro.core.stepper.LinearStepper.run_grid` with
    ``seeds=``), so a variance-reduction run with no upgrades enabled
    reproduces the plain ensemble bit-for-bit.
    """
    return np.stack(
        [np.random.default_rng(seed).standard_normal((steps, m)) for seed in seeds]
    )


def antithetic_normals(pair_seeds, steps: int, m: int) -> np.ndarray:
    """``(2 * len(pair_seeds), steps, m)`` mirrored standard normals.

    Path ``2q`` carries pair stream ``q``'s draws, path ``2q + 1`` the
    negated draws.  The interleaved layout keeps any chunk split at an
    even path boundary bit-reproducible.
    """
    half = path_normals(pair_seeds, steps, m)
    out = np.empty((2 * half.shape[0], steps, m))
    out[0::2] = half
    out[1::2] = -half
    return out


def _node_voltage(result, node: str) -> float:
    from repro.circuit.netlist import is_ground

    if is_ground(node):
        return 0.0
    return float(result.voltage(node)[0, 0])


def linearized_control_circuit(circuit, options=None):
    """Linear companion of *circuit* for control-variate estimation.

    Linear elements (R, L, C, independent sources) are copied verbatim;
    every nonlinear device is replaced by a resistor at its DC
    operating point — the differential conductance ``dI/dV`` where that
    is positive (best small-signal correlation), else the chord
    conductance ``I/V`` (non-negative, so NDR devices yield a *stable*
    control), else :data:`G_FLOOR`.  Node names, noise-injection sites
    and initial conditions all survive, so the control can be driven
    with the exact noise increments of the noisy ensemble.

    The control's quality only affects the variance of the estimate,
    never its bias: the estimator subtracts the control's own exact
    discrete mean.
    """
    from repro.circuit.elements import (
        Capacitor,
        CurrentSource,
        Inductor,
        MosfetInstance,
        Resistor,
        TwoTerminalDeviceInstance,
        VoltageSource,
    )
    from repro.circuit.netlist import Circuit
    from repro.swec.ensemble import SwecEnsembleTransient

    if not circuit.nonlinear():
        return circuit

    # DC operating point from the engine's own initialization: a
    # noise-free two-point march whose t=0 states are the solved OP.
    probe = SwecEnsembleTransient(circuit, options, n_instances=1)
    op = probe.run_grid(np.array([0.0, 1e-15]))

    def linearized_conductance(candidates) -> float:
        for g in candidates:
            if math.isfinite(g) and g > G_FLOOR:
                return g
        return G_FLOOR

    control = Circuit(f"{circuit.name}-control")
    for element in circuit.elements():
        if isinstance(element, Resistor):
            control.add_resistor(element.name, *element.nodes, element.resistance)
        elif isinstance(element, Capacitor):
            control.add_capacitor(
                element.name,
                *element.nodes,
                element.capacitance,
                initial_voltage=element.initial_voltage,
            )
        elif isinstance(element, Inductor):
            control.add_inductor(
                element.name,
                *element.nodes,
                element.inductance,
                initial_current=element.initial_current,
            )
        elif isinstance(element, VoltageSource):
            control.add_voltage_source(element.name, *element.nodes, element.waveform)
        elif isinstance(element, CurrentSource):
            control.add_current_source(element.name, *element.nodes, element.waveform)
        elif isinstance(element, TwoTerminalDeviceInstance):
            v = _node_voltage(op, element.anode) - _node_voltage(op, element.cathode)
            g = linearized_conductance(
                (
                    float(element.differential_conductance(v)),
                    float(element.chord_conductance(v)),
                )
            )
            control.add_resistor(element.name, *element.nodes, 1.0 / g)
        elif isinstance(element, MosfetInstance):
            vg = _node_voltage(op, element.gate)
            vs = _node_voltage(op, element.source)
            vd = _node_voltage(op, element.drain)
            g = linearized_conductance(
                (
                    float(element.chord_conductance(vg - vs, vd - vs)),
                    float(element.partials(vg - vs, vd - vs)[1]),
                )
            )
            control.add_resistor(element.name, element.drain, element.source, 1.0 / g)
        else:  # pragma: no cover - no further element kinds exist today
            raise AnalysisError(
                f"control variates cannot linearize element "
                f"{type(element).__name__} ({element.name!r})"
            )
    return control


@dataclass
class _BatchPlan:
    """Resolved batching of a variance-reduced run."""

    max_trials: int
    batch_size: int
    #: Paths per independent sample (2 for antithetic pairs).
    pps: int
    batches: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        offset = 0
        while offset < self.max_trials:
            size = min(self.batch_size, self.max_trials - offset)
            size = self.pps * (size // self.pps)
            if size == 0:  # pragma: no cover - excluded by validation
                break
            self.batches.append((offset, size))
            offset += size


def _resolve_batching(
    max_trials: int,
    batch_size: int | None,
    antithetic: bool,
    control_variate: bool,
) -> _BatchPlan:
    pps = 2 if antithetic else 1
    if max_trials < 2 * pps:
        raise AnalysisError(
            f"adaptive ensembles need max_trials >= {2 * pps}, got {max_trials}"
        )
    if antithetic and max_trials % 2:
        raise AnalysisError(
            f"antithetic ensembles need an even max_trials, got {max_trials}"
        )
    if batch_size is None:
        batch_size = min(64, max_trials)
        if control_variate and batch_size >= max_trials:
            batch_size = max_trials // 2
        batch_size = max(2 * pps, pps * (batch_size // pps))
    if batch_size < 2 * pps:
        raise AnalysisError(
            f"batch_size must be >= {2 * pps}"
            f"{' (antithetic pairs)' if antithetic else ''}, got {batch_size}"
        )
    if antithetic and batch_size % 2:
        raise AnalysisError(
            f"antithetic ensembles need an even batch_size, got {batch_size}"
        )
    if control_variate and max_trials < batch_size + 2 * pps:
        raise AnalysisError(
            f"control variates spend the first batch as a pilot: need "
            f"max_trials >= batch_size + {2 * pps} "
            f"(got max_trials={max_trials}, batch_size={batch_size})"
        )
    return _BatchPlan(max_trials, batch_size, pps)


def _pilot_coefficient(y: np.ndarray, x: np.ndarray) -> tuple[np.ndarray, float]:
    """Pointwise optimal coefficient and scalar pilot correlation."""
    yc = y - y.mean(axis=0)
    xc = x - x.mean(axis=0)
    var_x = np.einsum("pt,pt->t", xc, xc)
    var_y = np.einsum("pt,pt->t", yc, yc)
    cov = np.einsum("pt,pt->t", yc, xc)
    c = np.divide(cov, var_x, out=np.zeros_like(cov), where=var_x > 0.0)
    w = int(np.argmax(var_y))
    denom = math.sqrt(float(var_x[w]) * float(var_y[w]))
    correlation = float(cov[w]) / denom if denom > 0.0 else 0.0
    return c, correlation


def _collapse(values: np.ndarray, pps: int) -> np.ndarray:
    """Average antithetic pairs into independent samples."""
    if pps == 1:
        return values
    return 0.5 * (values[0::2] + values[1::2])


@dataclass
class _Estimate:
    mean: np.ndarray
    std: np.ndarray
    standard_error: np.ndarray
    n_samples: int
    cv_coefficient: np.ndarray | None
    cv_correlation: float | None

    def halfwidth(self, z: float) -> np.ndarray:
        return z * self.standard_error


def _evaluate(ys, xs, control_mean, plan, control_variate) -> _Estimate | None:
    values = np.concatenate(ys, axis=0)
    samples = _collapse(values, plan.pps)
    coefficient = correlation = None
    if control_variate:
        controls = _collapse(np.concatenate(xs, axis=0), plan.pps)
        pilot = plan.batches[0][1] // plan.pps
        if samples.shape[0] - pilot < 2:
            return None
        coefficient, correlation = _pilot_coefficient(
            samples[:pilot], controls[:pilot]
        )
        samples = samples[pilot:] - coefficient * (controls[pilot:] - control_mean)
    if samples.shape[0] < 2:
        return None
    std = samples.std(axis=0, ddof=1)
    return _Estimate(
        mean=samples.mean(axis=0),
        std=std,
        standard_error=std / math.sqrt(samples.shape[0]),
        n_samples=samples.shape[0],
        cv_coefficient=coefficient,
        cv_correlation=correlation,
    )


def _target_met(
    estimate: _Estimate,
    z: float,
    target_ci: float | None,
    target_rel_ci: float | None,
) -> bool:
    if target_ci is None and target_rel_ci is None:
        return False
    width = float(np.max(estimate.halfwidth(z)))
    if target_ci is not None and width <= target_ci:
        return True
    if target_rel_ci is not None:
        scale = float(np.max(np.abs(estimate.mean)))
        if width <= target_rel_ci * scale:
            return True
    return False


def _adaptive_mc(
    sample,
    *,
    times: np.ndarray,
    plan: _BatchPlan,
    confidence: float,
    control_variate: bool,
    antithetic: bool,
    target_ci: float | None,
    target_rel_ci: float | None,
    control_mean: np.ndarray | None,
) -> VarianceReducedStatistics:
    """Run batches from *sample* until the CI target or the backstop.

    *sample(offset, size)* marches raw paths ``offset .. offset + size``
    and returns ``(signal, control)`` arrays of shape ``(size, T)``
    (control is None without control variates).  Paths are always
    consumed in canonical order, so any execution split that preserves
    the order is bit-reproducible.
    """
    start = time.perf_counter()
    z = float(norm.ppf(0.5 * (1.0 + confidence)))
    ys: list[np.ndarray] = []
    xs: list[np.ndarray] = []
    simulated = 0
    n_batches = 0
    estimate = None
    stopped_early = False
    for offset, size in plan.batches:
        signal, control = sample(offset, size)
        ys.append(np.asarray(signal, dtype=float))
        if control is not None:
            xs.append(np.asarray(control, dtype=float))
        simulated += size
        n_batches += 1
        estimate = _evaluate(ys, xs, control_mean, plan, control_variate)
        if estimate is not None and _target_met(estimate, z, target_ci, target_rel_ci):
            stopped_early = simulated < plan.max_trials
            break
    if estimate is None:  # pragma: no cover - excluded by batch validation
        raise AnalysisError("adaptive ensemble produced no estimate")

    values = np.concatenate(ys, axis=0)
    naive_std = values.std(axis=0, ddof=1)
    naive_variance = float(np.max(naive_std) ** 2)
    est_variance = float(np.max(estimate.std) ** 2)
    if plan.pps * est_variance > 0.0:
        factor = naive_variance / (plan.pps * est_variance)
    else:
        factor = math.inf if naive_variance > 0.0 else 1.0
    return VarianceReducedStatistics(
        times=times,
        mean=estimate.mean,
        std=estimate.std,
        standard_error=estimate.standard_error,
        lower=estimate.mean - z * estimate.standard_error,
        upper=estimate.mean + z * estimate.standard_error,
        n_paths=estimate.n_samples,
        confidence=confidence,
        n_simulated=simulated,
        n_batches=n_batches,
        stopped_early=stopped_early,
        control_variate=control_variate,
        antithetic=antithetic,
        naive_mean=values.mean(axis=0),
        naive_std=naive_std,
        naive_standard_error=naive_std / math.sqrt(values.shape[0]),
        cv_coefficient=estimate.cv_coefficient,
        cv_correlation=estimate.cv_correlation,
        control_mean=control_mean,
        variance_reduction=factor,
        time_elapsed=time.perf_counter() - start,
    )


def _spawn_children(seed, count: int):
    if isinstance(seed, np.random.SeedSequence):
        return seed.spawn(count)
    return np.random.SeedSequence(seed).spawn(count)


def _batch_normals(children, offset, size, steps, m, antithetic) -> np.ndarray:
    if antithetic:
        half = children[offset // 2 : (offset + size) // 2]
        return antithetic_normals(half, steps, m)
    return path_normals(children[offset : offset + size], steps, m)


def _chunk_sizes(size: int, chunks: int, pps: int) -> list[int]:
    units = size // pps
    parts = min(chunks, units)
    base, extra = divmod(units, parts)
    return [pps * (base + (1 if k < extra else 0)) for k in range(parts)]


def run_circuit_ensemble_vr(
    circuit,
    noise,
    t_stop: float,
    steps: int,
    *,
    node: str | None = None,
    seed=None,
    options=None,
    confidence: float = 0.95,
    backend: str | None = None,
    control_variate: bool = False,
    antithetic: bool = False,
    target_ci: float | None = None,
    target_rel_ci: float | None = None,
    max_trials: int = 256,
    batch_size: int | None = None,
    chunks: int | None = None,
    runner=None,
) -> VarianceReducedStatistics:
    """Variance-reduced circuit-noise ensemble through the SWEC engine.

    The front doors
    :func:`~repro.stochastic.montecarlo.run_circuit_ensemble` and
    :func:`~repro.stochastic.montecarlo.run_circuit_ensemble_parallel`
    delegate here whenever a variance-reduction knob is switched on;
    *chunks*/*runner* select the parallel execution path (batches split
    over :class:`~repro.runtime.EnsembleTransientJob` chunks).  Path
    streams are spawned up front from ``SeedSequence(seed)`` — pair
    streams with *antithetic* — so serial and chunked runs are
    bit-identical at any worker count.
    """
    from repro.runtime.jobs import _swec_options, apply_backend

    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence!r}")
    if steps < 1:
        raise AnalysisError(f"steps must be >= 1, got {steps!r}")
    noise = list(noise.items()) if hasattr(noise, "items") else list(noise)
    if not noise:
        raise AnalysisError("need at least one (node, amplitude) injection")
    node = noise[0][0] if node is None else node
    plan = _resolve_batching(max_trials, batch_size, antithetic, control_variate)
    options = apply_backend(options, backend)
    if isinstance(options, dict):
        options = _swec_options(options)
    times = np.linspace(0.0, float(t_stop), int(steps) + 1)
    m = len(noise)
    children = _spawn_children(seed, max_trials // plan.pps)

    control = linearized_control_circuit(circuit, options) if control_variate else None
    control_mean = None
    if control is not None:
        control_mean = _control_mean(control, noise, times, options, node)

    if chunks is None:
        sample = _serial_sampler(
            circuit, control, noise, times, options, node, children, antithetic
        )
    else:
        sample = _parallel_sampler(
            circuit,
            control,
            noise,
            t_stop,
            steps,
            options,
            node,
            children,
            antithetic,
            chunks,
            plan.pps,
            runner,
        )
    return _adaptive_mc(
        sample,
        times=times,
        plan=plan,
        confidence=confidence,
        control_variate=control_variate,
        antithetic=antithetic,
        target_ci=target_ci,
        target_rel_ci=target_rel_ci,
        control_mean=control_mean,
    )


def _control_mean(control, noise, times, options, node) -> np.ndarray:
    """Exact discrete mean of the control: one noise-free march."""
    from repro.swec.ensemble import SwecEnsembleTransient

    engine = SwecEnsembleTransient(control, options, n_instances=1, noise=noise)
    zeros = np.zeros((1, times.size - 1, len(noise)))
    return engine.run_grid(times, normals=zeros).voltage(node)[0]


def _serial_sampler(
    circuit, control, noise, times, options, node, children, antithetic
):
    from repro.swec.ensemble import SwecEnsembleTransient

    steps, m = times.size - 1, len(noise)
    engines: dict[tuple[int, int], object] = {}

    def march(which, circ, size, normals):
        engine = engines.get((which, size))
        if engine is None:
            engine = SwecEnsembleTransient(circ, options, n_instances=size, noise=noise)
            engines[(which, size)] = engine
        return engine.run_grid(times, normals=normals).voltage(node)

    def sample(offset, size):
        normals = _batch_normals(children, offset, size, steps, m, antithetic)
        signal = march(0, circuit, size, normals)
        ctrl = march(1, control, size, normals) if control is not None else None
        return signal, ctrl

    return sample


def _parallel_sampler(
    circuit,
    control,
    noise,
    t_stop,
    steps,
    options,
    node,
    children,
    antithetic,
    chunks,
    pps,
    runner,
):
    from repro.runtime import BatchRunner
    from repro.runtime.jobs import EnsembleTransientJob

    if chunks < 1:
        raise AnalysisError(f"chunks must be >= 1, got {chunks!r}")
    runner = runner or BatchRunner()

    def jobs_for(circ, offset, size, tag):
        jobs, off = [], offset
        for cs in _chunk_sizes(size, chunks, pps):
            seeds = (
                children[off // 2 : (off + cs) // 2]
                if antithetic
                else children[off : off + cs]
            )
            jobs.append(
                EnsembleTransientJob(
                    t_stop=t_stop,
                    circuit=circ,
                    n_instances=cs,
                    steps=steps,
                    noise=noise,
                    options=options,
                    path_seeds=seeds,
                    antithetic=antithetic,
                    return_result=True,
                    label=f"vr-{tag}-{off}",
                )
            )
            off += cs
        return jobs

    def sample(offset, size):
        jobs = jobs_for(circuit, offset, size, "signal")
        n_signal = len(jobs)
        if control is not None:
            jobs += jobs_for(control, offset, size, "control")
        report = runner.run(jobs)
        report.raise_failures()
        results = report.values()
        signal = np.concatenate([r.voltage(node) for r in results[:n_signal]])
        ctrl = None
        if control is not None:
            ctrl = np.concatenate([r.voltage(node) for r in results[n_signal:]])
        return signal, ctrl

    return sample


def run_sde_ensemble_vr(
    sde,
    x0,
    t_final: float,
    steps: int,
    *,
    component: int = 0,
    confidence: float = 0.95,
    antithetic: bool = False,
    target_ci: float | None = None,
    target_rel_ci: float | None = None,
    max_trials: int = 256,
    batch_size: int | None = None,
    seed=None,
) -> VarianceReducedStatistics:
    """Adaptive (optionally antithetic) Euler-Maruyama ensemble.

    The SDE twin of :func:`run_circuit_ensemble_vr`, used by
    :class:`~repro.runtime.EnsembleJob` when a CI target is set.
    Control variates are a circuit-level feature (the linearized
    companion); for the already-linear SDEs they would be the identity.
    """
    from repro.stochastic.em import euler_maruyama

    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence!r}")
    plan = _resolve_batching(max_trials, batch_size, antithetic, False)
    times = np.linspace(0.0, float(t_final), int(steps) + 1)
    m = sde.num_noises
    children = _spawn_children(seed, max_trials // plan.pps)
    x0 = np.zeros(sde.dimension) if x0 is None else np.asarray(x0, dtype=float)
    scale = math.sqrt(t_final / steps)

    def sample(offset, size):
        normals = _batch_normals(children, offset, size, steps, m, antithetic)
        result = euler_maruyama(
            sde, x0, t_final, steps, n_paths=size, dw=normals * scale
        )
        return result.component(component), None

    return _adaptive_mc(
        sample,
        times=times,
        plan=plan,
        confidence=confidence,
        control_variate=False,
        antithetic=antithetic,
        target_ci=target_ci,
        target_rel_ci=target_rel_ci,
        control_mean=None,
    )
