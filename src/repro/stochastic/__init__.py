"""Stochastic transient simulation (paper Section 4).

The paper models uncertain nanocircuit inputs as white noise — formally a
Wiener-process differential ``dW`` — and integrates the resulting linear
stochastic differential equation

.. math::  C\\,dX = (-G(t)X + b(t))\\,dt + B\\,dW

with the Euler-Maruyama method under the Ito convention (its eqs. 13-19).
This package provides the Wiener process substrate, the Ito/Stratonovich
sum contrast of eqs. (15)-(16), the EM integrator, exact Ornstein-
Uhlenbeck references for validation, Monte-Carlo ensemble statistics and
the windowed peak-performance predictor (the "Black-Scholes approach").
Beyond the paper, :mod:`repro.stochastic.vr` layers variance reduction on
top of the Monte-Carlo engine: control variates from a linearized
companion circuit, antithetic path pairs and CI-targeted adaptive
stopping.
"""

from repro.stochastic.analytic import OrnsteinUhlenbeck, VectorOrnsteinUhlenbeck
from repro.stochastic.em import EMResult, euler_maruyama
from repro.stochastic.ito import (
    ito_integral,
    midpoint_integral,
    stratonovich_integral,
)
from repro.stochastic.montecarlo import (
    EnsembleStatistics,
    ensemble_statistics,
    run_circuit_ensemble,
    run_circuit_ensemble_parallel,
    run_ensemble,
    run_ensemble_parallel,
    run_ensembles,
)
from repro.stochastic.peak import (
    brownian_max_cdf,
    expected_brownian_max,
    peak_exceedance_probability,
    predict_peak,
)
from repro.stochastic.nonlinear import (
    GeometricBrownianMotion,
    ScalarSDE,
    euler_maruyama_scalar,
    milstein,
)
from repro.stochastic.sde import CircuitSDE, LinearSDE
from repro.stochastic.vr import (
    MCStatistics,
    VarianceReducedStatistics,
    antithetic_normals,
    linearized_control_circuit,
    path_normals,
    run_circuit_ensemble_vr,
    run_sde_ensemble_vr,
)
from repro.stochastic.spectrum import (
    corner_frequency,
    fit_corner_frequency,
    ou_psd,
    periodogram_psd,
)
from repro.stochastic.wiener import WienerProcess, brownian_bridge

__all__ = [
    "GeometricBrownianMotion",
    "ScalarSDE",
    "corner_frequency",
    "euler_maruyama_scalar",
    "fit_corner_frequency",
    "milstein",
    "ou_psd",
    "periodogram_psd",
    "brownian_max_cdf",
    "brownian_bridge",
    "CircuitSDE",
    "EMResult",
    "EnsembleStatistics",
    "euler_maruyama",
    "expected_brownian_max",
    "ito_integral",
    "LinearSDE",
    "midpoint_integral",
    "OrnsteinUhlenbeck",
    "peak_exceedance_probability",
    "predict_peak",
    "ensemble_statistics",
    "run_circuit_ensemble",
    "run_circuit_ensemble_parallel",
    "run_ensemble",
    "run_ensemble_parallel",
    "run_ensembles",
    "stratonovich_integral",
    "VectorOrnsteinUhlenbeck",
    "WienerProcess",
    "MCStatistics",
    "VarianceReducedStatistics",
    "antithetic_normals",
    "linearized_control_circuit",
    "path_normals",
    "run_circuit_ensemble_vr",
    "run_sde_ensemble_vr",
]
