"""Scalar nonlinear SDEs, the Milstein scheme and geometric Brownian
motion (the paper's Black-Scholes analogy, Section 4.2).

The paper closes its stochastic section with: "Following the
Black-Scholes approach [13][14], we can predict the peak performance
within certain time window.  A close analogy to this problem is the
stock price prediction."  This module makes that analogy executable:

* :class:`ScalarSDE` — ``dX = a(X, t) dt + b(X, t) dW`` with user drift
  and diffusion (multiplicative noise allowed);
* :func:`euler_maruyama_scalar` and :func:`milstein` — EM converges
  strongly at order 1/2 under multiplicative noise, Milstein's
  ``0.5 b b' (dW^2 - dt)`` correction restores order 1 (Higham, the
  paper's ref. [13]);
* :class:`GeometricBrownianMotion` — the Black-Scholes asset process
  with exact path sampling, exact moments, and the closed-form
  running-maximum distribution used for barrier-style peak prediction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.stats import norm

from repro.errors import AnalysisError


class ScalarSDE:
    """``dX = a(X, t) dt + b(X, t) dW`` with vectorized coefficients.

    ``drift``/``diffusion`` take ``(x, t)`` with ``x`` an array of path
    states; ``diffusion_dx`` is the state derivative of ``b`` needed by
    Milstein (finite-differenced when not given).
    """

    def __init__(
        self, drift: Callable, diffusion: Callable, diffusion_dx: Callable | None = None
    ) -> None:
        self.drift = drift
        self.diffusion = diffusion
        if diffusion_dx is None:
            step = 1e-6

            def numeric(x, t):
                return (diffusion(x + step, t) - diffusion(x - step, t)) / (2.0 * step)

            diffusion_dx = numeric
        self.diffusion_dx = diffusion_dx


def _increments(
    steps: int, n_paths: int, dt: float, rng, dw: np.ndarray | None
) -> np.ndarray:
    if dw is not None:
        dw = np.asarray(dw, dtype=float)
        if dw.shape != (n_paths, steps):
            raise AnalysisError(
                f"dw must have shape ({n_paths}, {steps}), got {dw.shape}"
            )
        return dw
    generator = np.random.default_rng(rng)
    return generator.normal(0.0, np.sqrt(dt), size=(n_paths, steps))


def euler_maruyama_scalar(
    sde: ScalarSDE,
    x0: float,
    t_final: float,
    steps: int,
    n_paths: int = 1,
    rng=None,
    dw: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """EM for a scalar (possibly multiplicative-noise) SDE.

    Returns ``(times, paths)`` with paths of shape
    ``(n_paths, steps + 1)``.
    """
    if steps < 1 or t_final <= 0.0:
        raise AnalysisError("need steps >= 1 and t_final > 0")
    dt = t_final / steps
    increments = _increments(steps, n_paths, dt, rng, dw)
    times = np.linspace(0.0, t_final, steps + 1)
    paths = np.empty((n_paths, steps + 1))
    x = np.full(n_paths, float(x0))
    paths[:, 0] = x
    for j in range(steps):
        t = times[j]
        x = x + sde.drift(x, t) * dt + sde.diffusion(x, t) * increments[:, j]
        paths[:, j + 1] = x
    return times, paths


def milstein(
    sde: ScalarSDE,
    x0: float,
    t_final: float,
    steps: int,
    n_paths: int = 1,
    rng=None,
    dw: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Milstein scheme: EM plus ``0.5 b b' (dW^2 - dt)``.

    Strong order 1 where EM only achieves 1/2 (multiplicative noise).
    """
    if steps < 1 or t_final <= 0.0:
        raise AnalysisError("need steps >= 1 and t_final > 0")
    dt = t_final / steps
    increments = _increments(steps, n_paths, dt, rng, dw)
    times = np.linspace(0.0, t_final, steps + 1)
    paths = np.empty((n_paths, steps + 1))
    x = np.full(n_paths, float(x0))
    paths[:, 0] = x
    for j in range(steps):
        t = times[j]
        b = sde.diffusion(x, t)
        dwj = increments[:, j]
        x = (
            x
            + sde.drift(x, t) * dt
            + b * dwj
            + 0.5 * b * sde.diffusion_dx(x, t) * (dwj * dwj - dt)
        )
        paths[:, j + 1] = x
    return times, paths


class GeometricBrownianMotion:
    """Black-Scholes asset dynamics ``dX = mu X dt + sigma X dW``.

    The paper's stock-price analogy for nanocircuit peak prediction.
    Every quantity the peak predictor needs exists in closed form here,
    making GBM the exactness reference for the Milstein/EM machinery.
    """

    def __init__(self, mu: float, sigma: float, x0: float = 1.0) -> None:
        if sigma <= 0.0:
            raise AnalysisError(f"sigma must be positive, got {sigma!r}")
        if x0 <= 0.0:
            raise AnalysisError(f"x0 must be positive, got {x0!r}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.x0 = float(x0)

    def as_sde(self) -> ScalarSDE:
        """The drift/diffusion view consumed by EM/Milstein."""
        return ScalarSDE(
            drift=lambda x, t: self.mu * x,
            diffusion=lambda x, t: self.sigma * x,
            diffusion_dx=lambda x, t: np.full_like(
                np.asarray(x, dtype=float), self.sigma
            ),
        )

    # ------------------------------------------------------------------
    # Closed forms
    # ------------------------------------------------------------------

    def mean(self, t: float) -> float:
        """``E[X(t)] = x0 e^{mu t}``."""
        return self.x0 * float(np.exp(self.mu * t))

    def variance(self, t: float) -> float:
        """``Var[X(t)] = x0^2 e^{2 mu t}(e^{sigma^2 t} - 1)``."""
        return (
            self.x0**2
            * float(np.exp(2.0 * self.mu * t))
            * float(np.expm1(self.sigma**2 * t))
        )

    def exact_paths(
        self,
        t_final: float,
        steps: int,
        n_paths: int = 1,
        rng=None,
        dw: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact solution ``x0 exp((mu - sigma^2/2) t + sigma W(t))``.

        Shares increments with EM/Milstein when ``dw`` is passed — the
        strong-convergence reference.
        """
        dt = t_final / steps
        increments = _increments(steps, n_paths, dt, rng, dw)
        times = np.linspace(0.0, t_final, steps + 1)
        w = np.zeros((n_paths, steps + 1))
        np.cumsum(increments, axis=1, out=w[:, 1:])
        drift = (self.mu - 0.5 * self.sigma**2) * times
        return times, self.x0 * np.exp(drift + self.sigma * w)

    def running_max_cdf(self, level: float, t_final: float) -> float:
        """``P[max_{[0,T]} X <= level]`` — the Black-Scholes barrier law.

        Reflection principle with drift: with
        ``nu = mu - sigma^2 / 2`` and ``m = ln(level / x0)``,

        .. math::

            P = \\Phi\\!\\left(\\frac{m - \\nu T}{\\sigma\\sqrt T}\\right)
                - e^{2\\nu m / \\sigma^2}
                  \\Phi\\!\\left(\\frac{-m - \\nu T}{\\sigma\\sqrt T}\\right)
        """
        if t_final <= 0.0:
            raise AnalysisError("t_final must be positive")
        if level <= self.x0:
            return 0.0
        nu = self.mu - 0.5 * self.sigma**2
        m = float(np.log(level / self.x0))
        scale = self.sigma * np.sqrt(t_final)
        return float(
            norm.cdf((m - nu * t_final) / scale)
            - np.exp(2.0 * nu * m / self.sigma**2)
            * norm.cdf((-m - nu * t_final) / scale)
        )

    def peak_exceedance(self, level: float, t_final: float) -> float:
        """``P[max_{[0,T]} X > level]`` — the barrier-breach probability
        (the paper's windowed peak prediction, in closed form)."""
        return 1.0 - self.running_max_cdf(level, t_final)
