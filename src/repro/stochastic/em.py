"""The Euler-Maruyama integrator (paper eq. 18).

.. math::

    X_{j+1} = X_j + (A(\\tau_j) X_j + f(\\tau_j))\\,\\Delta t
                  + S\\,(W(\\tau_{j+1}) - W(\\tau_j))

The integrator is vectorized over an ensemble of paths: one matrix-matrix
product per time step integrates every path simultaneously, which is what
makes the statistical simulator practical (the paper's alternative — a
full deterministic run per Monte-Carlo sample — is the "hundreds to over
thousands of Monte Carlo simulations at each time point" it criticizes).

Passing explicit increments (``dw``) reuses one Brownian path across
solvers or step sizes — required for strong-convergence measurements.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError
from repro.stochastic.sde import LinearSDE
from repro.stochastic.wiener import WienerProcess


class EMResult:
    """Ensemble trajectory container.

    Attributes
    ----------
    times:
        ``(steps + 1,)`` grid.
    paths:
        ``(n_paths, steps + 1, dimension)`` state trajectories.
    """

    def __init__(self, times: np.ndarray, paths: np.ndarray) -> None:
        self.times = times
        self.paths = paths

    @property
    def n_paths(self) -> int:
        return self.paths.shape[0]

    @property
    def dimension(self) -> int:
        return self.paths.shape[2]

    def component(self, index: int) -> np.ndarray:
        """``(n_paths, steps + 1)`` trajectories of state *index*."""
        return self.paths[:, :, index]

    def mean(self, index: int = 0) -> np.ndarray:
        """Ensemble mean trajectory of component *index*."""
        return self.component(index).mean(axis=0)

    def std(self, index: int = 0) -> np.ndarray:
        """Ensemble standard deviation (ddof=1) of component *index*."""
        if self.n_paths < 2:
            raise AnalysisError("need >= 2 paths for a standard deviation")
        return self.component(index).std(axis=0, ddof=1)

    def quantile(self, q: float, index: int = 0) -> np.ndarray:
        """Pointwise ensemble quantile trajectory."""
        return np.quantile(self.component(index), q, axis=0)

    def running_max(self, index: int = 0) -> np.ndarray:
        """Per-path running maximum of component *index*."""
        return np.maximum.accumulate(self.component(index), axis=1)

    def window_peaks(self, t_start: float, t_stop: float, index: int = 0) -> np.ndarray:
        """Per-path maximum of component *index* within a time window."""
        mask = (self.times >= t_start) & (self.times <= t_stop)
        if not mask.any():
            raise AnalysisError("window contains no grid points")
        return self.component(index)[:, mask].max(axis=1)


def euler_maruyama(
    sde: LinearSDE,
    x0,
    t_final: float,
    steps: int,
    n_paths: int = 1,
    rng=None,
    dw: np.ndarray | None = None,
    antithetic: bool = False,
) -> EMResult:
    """Integrate *sde* from *x0* over ``[0, t_final]`` with EM.

    Parameters
    ----------
    x0:
        Initial state, shape ``(dimension,)`` (shared by all paths) or
        ``(n_paths, dimension)``.
    steps:
        Number of EM steps ``L``; ``dt = t_final / L`` (paper's notation).
    n_paths:
        Ensemble size.
    rng:
        Seed or ``numpy.random.Generator``.
    dw:
        Optional pre-drawn increments with shape
        ``(n_paths, steps, num_noises)``.  Overrides ``rng``.
    antithetic:
        Draw increments in antithetic pairs (``n_paths`` must be even).
    """
    if steps < 1:
        raise AnalysisError(f"steps must be >= 1, got {steps!r}")
    if t_final <= 0.0:
        raise AnalysisError(f"t_final must be positive, got {t_final!r}")
    if n_paths < 1:
        raise AnalysisError(f"n_paths must be >= 1, got {n_paths!r}")

    dimension = sde.dimension
    x0 = np.asarray(x0, dtype=float)
    if x0.ndim == 1:
        if x0.shape != (dimension,):
            raise AnalysisError(f"x0 must have shape ({dimension},), got {x0.shape}")
        x = np.tile(x0, (n_paths, 1))
    else:
        if x0.shape != (n_paths, dimension):
            raise AnalysisError(
                f"x0 must have shape ({n_paths}, {dimension}), got {x0.shape}"
            )
        x = x0.copy()

    dt = t_final / steps
    times = np.linspace(0.0, t_final, steps + 1)

    if dw is None:
        if antithetic:
            if n_paths % 2 != 0:
                raise AnalysisError("antithetic sampling needs even n_paths")
            wiener = WienerProcess(t_final, steps, rng)
            half = wiener.rng.normal(
                0.0, np.sqrt(dt), size=(n_paths // 2, steps, sde.num_noises)
            )
            dw = np.concatenate([half, -half], axis=0)
        else:
            generator = np.random.default_rng(rng)
            dw = generator.normal(
                0.0, np.sqrt(dt), size=(n_paths, steps, sde.num_noises)
            )
    else:
        dw = np.asarray(dw, dtype=float)
        if dw.shape != (n_paths, steps, sde.num_noises):
            raise AnalysisError(
                f"dw must have shape ({n_paths}, {steps}, "
                f"{sde.num_noises}), got {dw.shape}"
            )

    trajectories = np.empty((n_paths, steps + 1, dimension))
    trajectories[:, 0, :] = x
    noise_t = sde.noise.T  # (m, n): right-multiplication form
    for j in range(steps):
        t = times[j]
        x = x + dt * sde.drift(x, t) + dw[:, j, :] @ noise_t
        trajectories[:, j + 1, :] = x
    return EMResult(times, trajectories)
