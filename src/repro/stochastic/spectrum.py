"""Spectral analysis of stochastic node voltages.

The Ornstein-Uhlenbeck voltage of a noisy RC node has the Lorentzian
power spectral density

.. math::

    S(f) = \\frac{2 \\sigma^2 \\lambda}{\\lambda^2 + (2\\pi f)^2}

(one-sided: twice that).  Estimating the PSD of EM trajectories and
matching it against the Lorentzian validates the *dynamics* of the
stochastic engine, not just the pointwise moments: a wrong decay rate or
a discretization artifact shows up as a bent knee or a wrong corner
frequency.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


def periodogram_psd(
    paths: np.ndarray, dt: float, detrend: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Ensemble-averaged one-sided periodogram of path samples.

    Parameters
    ----------
    paths:
        ``(n_paths, n_samples)`` trajectories on a uniform grid.
    dt:
        Sample spacing in seconds.
    detrend:
        Subtract each path's mean first (removes the DC spike).

    Returns ``(frequencies, psd)`` with PSD in V^2/Hz.
    """
    paths = np.atleast_2d(np.asarray(paths, dtype=float))
    if paths.shape[1] < 8:
        raise AnalysisError("need at least 8 samples for a PSD")
    if dt <= 0.0:
        raise AnalysisError("dt must be positive")
    data = paths - paths.mean(axis=1, keepdims=True) if detrend else paths
    n = data.shape[1]
    spectrum = np.fft.rfft(data, axis=1)
    # one-sided periodogram normalization: dt/N |X_k|^2, doubled for
    # the folded negative frequencies (except DC and Nyquist)
    psd = (dt / n) * np.abs(spectrum) ** 2
    psd[:, 1:-1] *= 2.0
    frequencies = np.fft.rfftfreq(n, dt)
    return frequencies, psd.mean(axis=0)


def ou_psd(
    frequencies: np.ndarray, decay_rate: float, noise_amplitude: float
) -> np.ndarray:
    """One-sided Lorentzian PSD of the OU process.

    ``S(f) = 2 sigma^2 / (lambda^2 + (2 pi f)^2)`` — the stationary OU
    spectrum (one-sided convention matching :func:`periodogram_psd`).
    """
    if decay_rate <= 0.0:
        raise AnalysisError("decay rate must be positive")
    omega = 2.0 * np.pi * np.asarray(frequencies, dtype=float)
    return 2.0 * noise_amplitude**2 / (decay_rate**2 + omega**2)


def corner_frequency(decay_rate: float) -> float:
    """The Lorentzian knee ``f_c = lambda / (2 pi)``."""
    if decay_rate <= 0.0:
        raise AnalysisError("decay rate must be positive")
    return decay_rate / (2.0 * np.pi)


def fit_corner_frequency(frequencies: np.ndarray, psd: np.ndarray) -> float:
    """Estimate the Lorentzian knee from a measured PSD.

    Median-smooths the raw periodogram in logarithmically spaced
    frequency bins (tames its variance), then locates the half-power
    point of the low-frequency plateau by log-log interpolation.  A
    naive regression against the raw periodogram is biased by the
    aliased high-frequency tail; this estimator is accurate to ~15% on
    48-path ensembles.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    psd = np.asarray(psd, dtype=float)
    if frequencies.shape != psd.shape:
        raise AnalysisError("frequency and PSD arrays must match")
    valid = (frequencies > 0.0) & (psd > 0.0)
    f = frequencies[valid]
    s = psd[valid]
    if f.size < 16:
        raise AnalysisError("too few positive-frequency bins")
    edges = np.geomspace(f[0], f[-1], 25)
    centers, levels = [], []
    for lo, hi in zip(edges, edges[1:]):
        mask = (f >= lo) & (f < hi)
        if mask.sum() >= 2:
            centers.append(float(np.sqrt(lo * hi)))
            levels.append(float(np.median(s[mask])))
    if len(centers) < 4:
        raise AnalysisError("PSD band too narrow to fit a knee")
    centers_arr = np.array(centers)
    levels_arr = np.array(levels)
    plateau = float(np.max(levels_arr[:4]))
    below = np.nonzero(levels_arr < plateau / 2.0)[0]
    if below.size == 0 or below[0] == 0:
        raise AnalysisError("knee outside the measured band")
    k = int(below[0])
    x0, x1 = np.log(centers_arr[k - 1]), np.log(centers_arr[k])
    y0, y1 = np.log(levels_arr[k - 1]), np.log(levels_arr[k])
    target = np.log(plateau / 2.0)
    return float(np.exp(x0 + (x1 - x0) * (target - y0) / (y1 - y0)))
