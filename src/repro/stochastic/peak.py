"""Windowed peak-performance prediction (paper Section 4.2, Fig. 10).

"Following the Black-Scholes approach we can predict the peak performance
within certain time window" — the quantity of interest is the running
maximum of the stochastic node voltage, the same mathematical object as
the running maximum of an asset price in barrier-option pricing.

Closed forms exist for driftless Brownian motion via the reflection
principle:

.. math::

    P\\left[\\max_{[0,T]} \\sigma W \\le m\\right]
        = 2\\Phi\\!\\left(\\frac{m}{\\sigma\\sqrt T}\\right) - 1,
    \\qquad
    \\mathbb E\\left[\\max_{[0,T]} \\sigma W\\right]
        = \\sigma\\sqrt{2T/\\pi}.

For the OU dynamics of a real RC node no simple closed form exists, so
:func:`predict_peak` estimates the window-peak distribution from an EM
ensemble and reports mean, quantiles and exceedance probabilities, with
the Brownian closed form available as a short-horizon sanity bound
(``t << RC`` makes OU look like Brownian motion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.errors import AnalysisError
from repro.stochastic.em import EMResult, euler_maruyama
from repro.stochastic.sde import LinearSDE


def brownian_max_cdf(level: float, t_final: float, sigma: float = 1.0) -> float:
    """``P[max_{[0,T]} sigma*W <= level]`` by the reflection principle."""
    if t_final <= 0.0 or sigma <= 0.0:
        raise AnalysisError("need positive horizon and sigma")
    if level <= 0.0:
        return 0.0
    return float(2.0 * norm.cdf(level / (sigma * np.sqrt(t_final))) - 1.0)


def expected_brownian_max(t_final: float, sigma: float = 1.0) -> float:
    """``E[max_{[0,T]} sigma*W] = sigma sqrt(2T/pi)``."""
    if t_final <= 0.0 or sigma <= 0.0:
        raise AnalysisError("need positive horizon and sigma")
    return float(sigma * np.sqrt(2.0 * t_final / np.pi))


def peak_exceedance_probability(
    result: EMResult,
    threshold: float,
    t_start: float,
    t_stop: float,
    component: int = 0,
) -> float:
    """Fraction of ensemble paths whose window peak exceeds *threshold*.

    This is the signal-integrity question of the paper's Section 4: "if
    the transient voltage drop at a certain time point exceeds certain
    constraints, the whole design is still going to fail".
    """
    peaks = result.window_peaks(t_start, t_stop, index=component)
    return float(np.mean(peaks > threshold))


@dataclass
class PeakPrediction:
    """Window-peak summary of an EM ensemble."""

    t_start: float
    t_stop: float
    mean_peak: float
    std_peak: float
    quantile_50: float
    quantile_95: float
    quantile_99: float
    n_paths: int

    def exceedance(self, peaks: np.ndarray, threshold: float) -> float:
        """Empirical ``P[peak > threshold]`` given raw window peaks."""
        return float(np.mean(peaks > threshold))


def predict_peak(
    sde: LinearSDE,
    x0,
    t_start: float,
    t_stop: float,
    steps: int,
    n_paths: int = 2000,
    rng=None,
    component: int = 0,
) -> tuple[PeakPrediction, np.ndarray]:
    """Estimate the window-peak distribution of one state component.

    Integrates an EM ensemble over ``[0, t_stop]`` and extracts per-path
    maxima inside ``[t_start, t_stop]``.  Returns the summary record and
    the raw per-path peaks (for custom thresholds).
    """
    if not 0.0 <= t_start < t_stop:
        raise AnalysisError("need 0 <= t_start < t_stop")
    result = euler_maruyama(sde, x0, t_stop, steps, n_paths=n_paths, rng=rng)
    peaks = result.window_peaks(t_start, t_stop, index=component)
    prediction = PeakPrediction(
        t_start=t_start,
        t_stop=t_stop,
        mean_peak=float(peaks.mean()),
        std_peak=float(peaks.std(ddof=1)),
        quantile_50=float(np.quantile(peaks, 0.50)),
        quantile_95=float(np.quantile(peaks, 0.95)),
        quantile_99=float(np.quantile(peaks, 0.99)),
        n_paths=n_paths,
    )
    return prediction, peaks
