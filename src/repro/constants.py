"""Physical constants used by the device models.

All values are CODATA-style SI values; the simulator itself is unit-neutral
(volts, amperes, seconds, farads, siemens) so only ratios such as the thermal
voltage ``kT/q`` appear in device equations.
"""

from __future__ import annotations

#: Elementary charge in coulombs.
ELEMENTARY_CHARGE = 1.602176634e-19

#: Boltzmann constant in joules per kelvin.
BOLTZMANN = 1.380649e-23

#: Planck constant in joule-seconds.
PLANCK = 6.62607015e-34

#: Conductance quantum 2 e^2 / h in siemens (per spin-degenerate channel).
CONDUCTANCE_QUANTUM = 2.0 * ELEMENTARY_CHARGE**2 / PLANCK

#: Default device temperature in kelvin.
ROOM_TEMPERATURE = 300.0


def thermal_voltage(temperature: float = ROOM_TEMPERATURE) -> float:
    """Return the thermal voltage ``kT/q`` in volts at *temperature*.

    >>> round(thermal_voltage(300.0), 5)
    0.02585
    """
    if temperature <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature!r}")
    return BOLTZMANN * temperature / ELEMENTARY_CHARGE
