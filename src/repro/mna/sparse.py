"""Sparse-matrix path for large circuits.

The paper's Section 1 motivation — "the high computational complexity at
each time step makes the traditional circuit simulators unable to
analyze practical circuits" — only bites at scale, so the scaling
ablations need more than dense LU.  This module mirrors the dense
assembly with ``scipy.sparse``:

* :class:`SparseOperators` caches the *symbolic* sparsity pattern once:
  the union structure of ``G_base``, ``C`` and every device incidence is
  computed at construction, together with the positions of each device's
  four stamp entries inside the shared CSR data array.  The per-step
  system ``G_base + sum_k g_k * E_k + C/h`` is then assembled by filling
  a data vector — O(nnz) with no structural churn or Python loops over
  matrix entries.
* :class:`SparseSolver` wraps ``splu`` with flop *estimates* derived
  from the factor's fill-in (exact flop counting inside SuperLU is not
  exposed; the estimate ``2 * nnz(L+U) ** 1.5 / sqrt(n)`` reduces to the
  dense formula for full matrices and is documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.errors import SingularMatrixError
from repro.mna.assembler import MnaSystem
from repro.perf.flops import FlopCounter


def _incidence(size: int, i: int, j: int) -> sparse.csr_matrix:
    """Conductance-stamp pattern between indices *i*, *j* (-1 = ground)."""
    rows, cols, values = [], [], []
    if i >= 0:
        rows.append(i)
        cols.append(i)
        values.append(1.0)
    if j >= 0:
        rows.append(j)
        cols.append(j)
        values.append(1.0)
    if i >= 0 and j >= 0:
        rows.extend([i, j])
        cols.extend([j, i])
        values.extend([-1.0, -1.0])
    return sparse.csr_matrix((values, (rows, cols)), shape=(size, size))


def _structure(matrix) -> sparse.csr_matrix:
    """All-ones CSR matrix over *matrix*'s nonzero pattern."""
    coo = matrix.tocoo()
    return sparse.csr_matrix(
        (np.ones_like(coo.data), (coo.row, coo.col)), shape=matrix.shape)


class SparseOperators:
    """CSR views of an :class:`MnaSystem` for scalable assembly.

    The constructor performs the one-time symbolic analysis: the union
    sparsity pattern of every stamp the transient march can produce, the
    scatter of ``G_base`` and ``C`` into that pattern, and the data-array
    slots (with signs) of each nonlinear device's conductance stamp.
    """

    def __init__(self, system: MnaSystem) -> None:
        self.system = system
        self.size = system.size
        self.g_base = sparse.csr_matrix(system.conductance_base())
        self.c_matrix = sparse.csr_matrix(system.capacitance_matrix())
        self.device_incidence = [
            _incidence(self.size, anode, cathode)
            for anode, cathode in system.device_terminals()
        ]
        self.mosfet_incidence = [
            _incidence(self.size, drain, source)
            for drain, _gate, source in system.mosfet_terminals()
        ]

        # --- symbolic sparsity pattern, computed once -------------------
        union = _structure(self.g_base) + _structure(self.c_matrix)
        for incidence in self.device_incidence + self.mosfet_incidence:
            union = union + _structure(incidence)
        union = union.tocsr()
        union.sort_indices()
        self._indptr = union.indptr
        self._indices = union.indices
        self._nnz = union.nnz
        self._base_data = self._scatter(self.g_base)
        self._c_data = self._scatter(self.c_matrix)
        self._device_slots = [
            self._stamp_slots(anode, cathode)
            for anode, cathode in system.device_terminals()
        ]
        self._mosfet_slots = [
            self._stamp_slots(drain, source)
            for drain, _gate, source in system.mosfet_terminals()
        ]

    # ------------------------------------------------------------------
    # Symbolic helpers
    # ------------------------------------------------------------------

    def _locate(self, row: int, col: int) -> int:
        """Position of entry (row, col) inside the union data array."""
        lo, hi = self._indptr[row], self._indptr[row + 1]
        offset = int(np.searchsorted(self._indices[lo:hi], col))
        position = lo + offset
        if position >= hi or self._indices[position] != col:
            raise SingularMatrixError(
                f"entry ({row}, {col}) missing from the cached pattern")
        return int(position)

    def _scatter(self, matrix) -> np.ndarray:
        """Map *matrix*'s entries onto the union pattern's data array."""
        data = np.zeros(self._nnz)
        coo = matrix.tocoo()
        for row, col, value in zip(coo.row, coo.col, coo.data):
            data[self._locate(int(row), int(col))] += value
        return data

    def _stamp_slots(self, i: int, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Data positions and signs for one conductance stamp."""
        positions, signs = [], []
        if i >= 0:
            positions.append(self._locate(i, i))
            signs.append(1.0)
        if j >= 0:
            positions.append(self._locate(j, j))
            signs.append(1.0)
        if i >= 0 and j >= 0:
            positions.append(self._locate(i, j))
            signs.append(-1.0)
            positions.append(self._locate(j, i))
            signs.append(-1.0)
        return np.array(positions, dtype=np.intp), np.array(signs)

    # ------------------------------------------------------------------
    # Batch-assembly views (the sparse solver backend's contract)
    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Nonzeros of the cached union pattern."""
        return int(self._nnz)

    @property
    def base_data(self) -> np.ndarray:
        """``G_base`` scattered onto the union pattern (read-only view)."""
        return self._base_data

    @property
    def c_data(self) -> np.ndarray:
        """``C`` scattered onto the union pattern (read-only view)."""
        return self._c_data

    def stamp_indices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flattened ``(positions, columns, signs)`` stamp scatter.

        Mirrors :class:`~repro.mna.batch.ConductanceStamper` on the
        union *data* array: entry ``i`` adds
        ``values[..., columns[i]] * signs[i]`` at ``positions[i]``,
        where ``values`` concatenates the device then MOSFET chord
        conductances.  Entries are emitted device-by-device in stamp
        order, so batched ``np.add.at`` accumulation reproduces the
        scalar :meth:`conductance_data` loop bit for bit.
        """
        positions: list[int] = []
        columns: list[int] = []
        signs: list[float] = []
        for column, (slot_positions, slot_signs) in enumerate(
                self._device_slots + self._mosfet_slots):
            positions.extend(int(p) for p in slot_positions)
            columns.extend([column] * len(slot_positions))
            signs.extend(float(s) for s in slot_signs)
        return (np.asarray(positions, dtype=np.intp),
                np.asarray(columns, dtype=np.intp),
                np.asarray(signs, dtype=float))

    def diagonal_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """``(positions, mask)`` of the main diagonal in the data array.

        Rows whose diagonal entry is absent from the pattern (pure
        branch-current rows) carry position 0 and mask 0.0, so
        ``data[positions] * mask`` yields the diagonal with structural
        zeros reported as 0.0.
        """
        positions = np.zeros(self.size, dtype=np.intp)
        mask = np.zeros(self.size)
        for row in range(self.size):
            try:
                positions[row] = self._locate(row, row)
                mask[row] = 1.0
            except SingularMatrixError:
                continue
        return positions, mask

    def _assemble(self, data: np.ndarray) -> sparse.csr_matrix:
        """CSR matrix over the cached pattern with *data* values."""
        return sparse.csr_matrix(
            (data, self._indices, self._indptr),
            shape=(self.size, self.size))

    def matrix_from_data(self, data: np.ndarray) -> sparse.csr_matrix:
        """Public view of :meth:`_assemble` for data-level callers."""
        return self._assemble(data)

    # ------------------------------------------------------------------
    # Per-step assembly (hot path)
    # ------------------------------------------------------------------

    def conductance_data(self, device_g: np.ndarray,
                         mosfet_g: np.ndarray) -> np.ndarray:
        """Data array of ``G_base`` plus all equivalent-conductance
        stamps, laid out on the cached union pattern."""
        data = self._base_data.copy()
        for g, (positions, signs) in zip(device_g, self._device_slots):
            if g != 0.0:
                data[positions] += float(g) * signs
        for g, (positions, signs) in zip(mosfet_g, self._mosfet_slots):
            if g != 0.0:
                data[positions] += float(g) * signs
        return data

    def conductance(self, device_g: np.ndarray,
                    mosfet_g: np.ndarray) -> sparse.csr_matrix:
        """``G_base`` plus all equivalent-conductance stamps."""
        return self._assemble(self.conductance_data(device_g, mosfet_g))

    def system_matrix_from_data(self, conductance_data: np.ndarray, h: float,
                                trapezoidal: bool = False
                                ) -> sparse.csc_matrix:
        """Transient system matrix from a :meth:`conductance_data` array.

        ``G + C/h`` for backward Euler, ``G/2 + C/h`` for trapezoidal,
        assembled directly on the cached pattern — the unconditional
        fast path the transient march uses.
        """
        scale = 0.5 if trapezoidal else 1.0
        data = scale * conductance_data + self._c_data / h
        return self._assemble(data).tocsc()

    def system_matrix(self, conductance: sparse.csr_matrix, h: float,
                      trapezoidal: bool = False) -> sparse.csc_matrix:
        """Transient system matrix from an already-assembled ``G``.

        Matrices on the cached pattern (anything :meth:`conductance`
        returns) take the data-level fast path; foreign matrices fall
        back to generic sparse addition.
        """
        if (conductance.nnz == self._nnz
                and np.array_equal(conductance.indptr, self._indptr)
                and np.array_equal(conductance.indices, self._indices)):
            return self.system_matrix_from_data(conductance.data, h,
                                                trapezoidal)
        scale = 0.5 if trapezoidal else 1.0
        return (scale * conductance + self.c_matrix / h).tocsc()

    def transient_matrix(self, device_g: np.ndarray, mosfet_g: np.ndarray,
                         h: float) -> sparse.csc_matrix:
        """Backward-Euler system matrix ``G(t_n) + C/h``."""
        data = self.conductance_data(device_g, mosfet_g) + self._c_data / h
        return self._assemble(data).tocsc()


class SparseSolver:
    """``splu``-backed factor/solve pair with flop estimates."""

    def __init__(self, flops: FlopCounter | None = None) -> None:
        self.flops = flops
        self._lu = None
        self._n = 0

    def factor(self, matrix: sparse.csc_matrix) -> None:
        """Factor a sparse CSC matrix."""
        if matrix.shape[0] != matrix.shape[1]:
            raise SingularMatrixError(
                f"expected square matrix, got {matrix.shape}")
        self._n = matrix.shape[0]
        try:
            self._lu = splu(matrix.tocsc())
        except RuntimeError as exc:  # SuperLU signals singularity this way
            raise SingularMatrixError(str(exc)) from exc
        if self.flops is not None:
            nnz = self._lu.L.nnz + self._lu.U.nnz
            estimate = int(2.0 * nnz ** 1.5 / max(np.sqrt(self._n), 1.0))
            self.flops.add("factor", estimate)
            self.flops.factorizations += 1

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute against the cached factorization.

        Real and complex systems alike (the AC sweeps factor
        ``G0 + jwC`` through this solver).
        """
        if self._lu is None:
            raise SingularMatrixError("factor() before solve()")
        rhs = np.asarray(
            rhs, dtype=complex if np.iscomplexobj(rhs) else float)
        solution = self._lu.solve(rhs)
        if self.flops is not None:
            self.flops.add("solve", 2 * (self._lu.L.nnz + self._lu.U.nnz))
            self.flops.linear_solves += 1
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError("sparse solution is non-finite")
        return solution
