"""Sparse-matrix path for large circuits.

The paper's Section 1 motivation — "the high computational complexity at
each time step makes the traditional circuit simulators unable to
analyze practical circuits" — only bites at scale, so the scaling
ablations need more than dense LU.  This module mirrors the dense
assembly with ``scipy.sparse``:

* :class:`SparseOperators` precomputes CSR forms of the constant stamps
  plus one incidence matrix per nonlinear device, so the per-step system
  ``G_base + sum_k g_k * E_k + C/h`` is assembled in O(nnz) without
  touching Python loops over matrix entries.
* :class:`SparseSolver` wraps ``splu`` with flop *estimates* derived
  from the factor's fill-in (exact flop counting inside SuperLU is not
  exposed; the estimate ``2 * nnz(L+U) ** 1.5 / sqrt(n)`` reduces to the
  dense formula for full matrices and is documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.errors import SingularMatrixError
from repro.mna.assembler import MnaSystem
from repro.perf.flops import FlopCounter


def _incidence(size: int, i: int, j: int) -> sparse.csr_matrix:
    """Conductance-stamp pattern between indices *i*, *j* (-1 = ground)."""
    rows, cols, values = [], [], []
    if i >= 0:
        rows.append(i)
        cols.append(i)
        values.append(1.0)
    if j >= 0:
        rows.append(j)
        cols.append(j)
        values.append(1.0)
    if i >= 0 and j >= 0:
        rows.extend([i, j])
        cols.extend([j, i])
        values.extend([-1.0, -1.0])
    return sparse.csr_matrix((values, (rows, cols)), shape=(size, size))


class SparseOperators:
    """CSR views of an :class:`MnaSystem` for scalable assembly."""

    def __init__(self, system: MnaSystem) -> None:
        self.system = system
        self.size = system.size
        self.g_base = sparse.csr_matrix(system.conductance_base())
        self.c_matrix = sparse.csr_matrix(system.capacitance_matrix())
        self.device_incidence = [
            _incidence(self.size, anode, cathode)
            for anode, cathode in system.device_terminals()
        ]
        self.mosfet_incidence = [
            _incidence(self.size, drain, source)
            for drain, _gate, source in system.mosfet_terminals()
        ]

    def conductance(self, device_g: np.ndarray,
                    mosfet_g: np.ndarray) -> sparse.csr_matrix:
        """``G_base`` plus all equivalent-conductance stamps."""
        total = self.g_base
        for g, pattern in zip(device_g, self.device_incidence):
            if g != 0.0:
                total = total + float(g) * pattern
        for g, pattern in zip(mosfet_g, self.mosfet_incidence):
            if g != 0.0:
                total = total + float(g) * pattern
        return total

    def transient_matrix(self, device_g: np.ndarray, mosfet_g: np.ndarray,
                         h: float) -> sparse.csc_matrix:
        """Backward-Euler system matrix ``G(t_n) + C/h``."""
        return (self.conductance(device_g, mosfet_g)
                + self.c_matrix / h).tocsc()


class SparseSolver:
    """``splu``-backed factor/solve pair with flop estimates."""

    def __init__(self, flops: FlopCounter | None = None) -> None:
        self.flops = flops
        self._lu = None
        self._n = 0

    def factor(self, matrix: sparse.csc_matrix) -> None:
        """Factor a sparse CSC matrix."""
        if matrix.shape[0] != matrix.shape[1]:
            raise SingularMatrixError(
                f"expected square matrix, got {matrix.shape}")
        self._n = matrix.shape[0]
        try:
            self._lu = splu(matrix.tocsc())
        except RuntimeError as exc:  # SuperLU signals singularity this way
            raise SingularMatrixError(str(exc)) from exc
        if self.flops is not None:
            nnz = self._lu.L.nnz + self._lu.U.nnz
            estimate = int(2.0 * nnz ** 1.5 / max(np.sqrt(self._n), 1.0))
            self.flops.add("factor", estimate)
            self.flops.factorizations += 1

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute against the cached factorization."""
        if self._lu is None:
            raise SingularMatrixError("factor() before solve()")
        solution = self._lu.solve(np.asarray(rhs, dtype=float))
        if self.flops is not None:
            self.flops.add("solve", 2 * (self._lu.L.nnz + self._lu.U.nnz))
            self.flops.linear_solves += 1
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError("sparse solution is non-finite")
        return solution
