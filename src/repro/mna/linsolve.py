"""Dense linear solves with flop accounting.

All paper circuits are tiny (a handful of nodes), so the default path is
dense LAPACK via scipy.  A :class:`LinearSolver` caches the LU
factorization; engines that keep the matrix fixed across several solves
(e.g. Newton with a frozen Jacobian, or linear circuits with a constant
step) pay the factorization once, and the flop counter reflects that.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.errors import SingularMatrixError
from repro.perf.flops import FlopCounter


def solve_dense(matrix: np.ndarray, rhs: np.ndarray,
                flops: FlopCounter | None = None) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` once, counting flops into *flops*."""
    solver = LinearSolver(flops)
    solver.factor(matrix)
    return solver.solve(rhs)


class LinearSolver:
    """LU-based solver with an explicit factor/solve split.

    Parameters
    ----------
    flops:
        Optional :class:`FlopCounter`; factorizations and substitutions
        are recorded into it when given.
    """

    def __init__(self, flops: FlopCounter | None = None) -> None:
        self.flops = flops
        self._lu = None
        self._n = 0

    def factor(self, matrix: np.ndarray) -> None:
        """Factor *matrix*; raises :class:`SingularMatrixError` if unusable."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise SingularMatrixError(
                f"expected a square matrix, got shape {matrix.shape}")
        if not np.all(np.isfinite(matrix)):
            raise SingularMatrixError("matrix contains non-finite entries")
        self._n = matrix.shape[0]
        try:
            self._lu = linalg.lu_factor(matrix, check_finite=False)
        except linalg.LinAlgError as exc:  # pragma: no cover - scipy raises
            raise SingularMatrixError(str(exc)) from exc
        # LAPACK getrf signals exact singularity through U's diagonal.
        diag = np.abs(np.diag(self._lu[0]))
        if np.any(diag == 0.0) or not np.all(np.isfinite(diag)):
            raise SingularMatrixError(
                "MNA matrix is singular (floating node or short loop?)")
        if self.flops is not None:
            self.flops.count_factorization(self._n)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute against the cached factorization."""
        if self._lu is None:
            raise SingularMatrixError("factor() must be called before solve()")
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self._n:
            raise SingularMatrixError(
                f"rhs length {rhs.shape[0]} does not match matrix size {self._n}")
        solution = linalg.lu_solve(self._lu, rhs, check_finite=False)
        if self.flops is not None:
            self.flops.count_solve(self._n)
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError("solution contains non-finite entries")
        return solution

    @property
    def size(self) -> int:
        """Dimension of the factored system (0 before factoring)."""
        return self._n
