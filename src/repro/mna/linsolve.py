"""Dense linear solves with flop accounting.

All paper circuits are tiny (a handful of nodes), so the default path is
dense LAPACK via scipy.  A :class:`LinearSolver` caches the LU
factorization; engines that keep the matrix fixed across several solves
(e.g. Newton with a frozen Jacobian, or linear circuits with a constant
step) pay the factorization once, and the flop counter reflects that.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.errors import SingularMatrixError
from repro.perf.flops import FlopCounter


def solve_dense(matrix: np.ndarray, rhs: np.ndarray,
                flops: FlopCounter | None = None) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` once, counting flops into *flops*."""
    solver = LinearSolver(flops)
    solver.factor(matrix)
    return solver.solve(rhs)


class LinearSolver:
    """LU-based solver with an explicit factor/solve split.

    Parameters
    ----------
    flops:
        Optional :class:`FlopCounter`; factorizations and substitutions
        are recorded into it when given.
    """

    def __init__(self, flops: FlopCounter | None = None) -> None:
        self.flops = flops
        self._lu = None
        self._n = 0

    def factor(self, matrix: np.ndarray) -> None:
        """Factor *matrix*; raises :class:`SingularMatrixError` if unusable."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise SingularMatrixError(
                f"expected a square matrix, got shape {matrix.shape}")
        if not np.all(np.isfinite(matrix)):
            raise SingularMatrixError("matrix contains non-finite entries")
        self._n = matrix.shape[0]
        try:
            self._lu = linalg.lu_factor(matrix, check_finite=False)
        except linalg.LinAlgError as exc:  # pragma: no cover - scipy raises
            raise SingularMatrixError(str(exc)) from exc
        # LAPACK getrf signals exact singularity through U's diagonal.
        diag = np.abs(np.diag(self._lu[0]))
        if np.any(diag == 0.0) or not np.all(np.isfinite(diag)):
            raise SingularMatrixError(
                "MNA matrix is singular (floating node or short loop?)")
        if self.flops is not None:
            self.flops.count_factorization(self._n)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute against the cached factorization."""
        if self._lu is None:
            raise SingularMatrixError("factor() must be called before solve()")
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self._n:
            raise SingularMatrixError(
                f"rhs length {rhs.shape[0]} does not match matrix size {self._n}")
        solution = linalg.lu_solve(self._lu, rhs, check_finite=False)
        if self.flops is not None:
            self.flops.count_solve(self._n)
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError("solution contains non-finite entries")
        return solution

    @property
    def size(self) -> int:
        """Dimension of the factored system (0 before factoring)."""
        return self._n


class CachedFactorization:
    """Factor/solve wrapper that skips redundant refactorizations.

    Wraps any solver exposing ``factor(matrix)`` / ``solve(rhs)`` (both
    :class:`LinearSolver` and :class:`~repro.mna.sparse.SparseSolver`
    qualify) and keeps a copy of the last factored matrix.  A subsequent
    ``factor`` call whose matrix is unchanged within ``rtol`` (relative to
    the cached matrix's largest entry) reuses the existing factorization
    instead of paying the O(n^3) LU again.  With ``rtol = 0.0`` only a
    bitwise-identical matrix is reused, so results cannot drift.

    This is the SWEC transient's slowly-varying-region optimization: in
    settled stretches the stamped ``G + C/h`` barely changes between
    accepted points, and the reuse turns a factorization per point into a
    back-substitution per point.  ``reuses`` counts the skipped
    factorizations for diagnostics.
    """

    def __init__(self, solver, rtol: float = 0.0) -> None:
        if rtol < 0.0:
            raise ValueError(f"rtol must be non-negative, got {rtol!r}")
        self.solver = solver
        self.rtol = rtol
        self.reuses = 0
        self._matrix = None

    def _unchanged(self, matrix) -> bool:
        cached = self._matrix
        if cached is None or cached.shape != matrix.shape:
            return False
        # Works for ndarrays and scipy sparse matrices alike.
        diff = abs(matrix - cached).max()
        scale = abs(cached).max()
        return bool(diff <= self.rtol * scale)

    def factor(self, matrix) -> bool:
        """Factor *matrix* unless the cached one still applies.

        Returns True when a fresh factorization was computed, False when
        the cached one was reused.
        """
        if self._unchanged(matrix):
            self.reuses += 1
            return False
        self.solver.factor(matrix)
        self._matrix = matrix.copy()
        return True

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute against the most recent factorization."""
        return self.solver.solve(rhs)

    def invalidate(self) -> None:
        """Drop the cached matrix, forcing the next factor() to refactor."""
        self._matrix = None
