"""MNA system assembly.

Unknown vector layout::

    x = [ v_1 ... v_N | i_V1 ... i_VM | i_L1 ... i_LK ]

node voltages first, then one branch current per voltage source, then one
per inductor.  Ground is eliminated (index ``-1`` never stamps).

The assembler produces:

``conductance_base()``
    Constant part of ``G``: resistor stamps plus source/inductor incidence
    rows.  Engines copy it and add device conductances each step.
``capacitance_matrix()``
    ``C`` with capacitor stamps and ``-L`` on inductor branch diagonals.
``source_vector(t)``
    ``b(t)`` from the independent sources.
``stamp_two_terminal`` / ``stamp_mosfet_*``
    In-place stamp helpers shared by every engine (SWEC chords, Newton
    companion models, PWL segment conductances all stamp identically).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Circuit, is_ground
from repro.errors import AssemblyError


class MnaSystem:
    """Matrix-level view of a :class:`~repro.circuit.Circuit`.

    Parameters
    ----------
    circuit:
        The circuit to assemble.  It is validated on construction.
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self.num_nodes = circuit.num_nodes
        self._vsrc_offset = self.num_nodes
        self._ind_offset = self.num_nodes + len(circuit.voltage_sources)
        self.size = self._ind_offset + len(circuit.inductors)
        if self.size == 0:
            raise AssemblyError(
                f"circuit {circuit.name!r} produced an empty system")
        self._node_of = {name: k for k, name in enumerate(circuit.nodes)}

    # ------------------------------------------------------------------
    # Index helpers
    # ------------------------------------------------------------------

    def node_index(self, node: str) -> int:
        """Row index for *node*'s voltage; ``-1`` for ground."""
        if is_ground(node):
            return -1
        try:
            return self._node_of[node]
        except KeyError:
            raise AssemblyError(f"unknown node {node!r}") from None

    def vsource_index(self, name: str) -> int:
        """Row index of the branch current of voltage source *name*."""
        for k, source in enumerate(self.circuit.voltage_sources):
            if source.name == name:
                return self._vsrc_offset + k
        raise AssemblyError(f"no voltage source named {name!r}")

    def inductor_index(self, name: str) -> int:
        """Row index of the branch current of inductor *name*."""
        for k, inductor in enumerate(self.circuit.inductors):
            if inductor.name == name:
                return self._ind_offset + k
        raise AssemblyError(f"no inductor named {name!r}")

    # ------------------------------------------------------------------
    # Stamp helpers (shared by every engine)
    # ------------------------------------------------------------------

    @staticmethod
    def stamp_conductance(matrix: np.ndarray, i: int, j: int,
                          g: float) -> None:
        """Stamp conductance *g* between row/col indices *i* and *j*.

        Either index may be ``-1`` (ground), in which case only the
        diagonal of the other survives.
        """
        if i >= 0:
            matrix[i, i] += g
        if j >= 0:
            matrix[j, j] += g
        if i >= 0 and j >= 0:
            matrix[i, j] -= g
            matrix[j, i] -= g

    @staticmethod
    def stamp_current(vector: np.ndarray, i: int, j: int,
                      current: float) -> None:
        """Inject *current* flowing from node *i* into node *j*."""
        if i >= 0:
            vector[i] -= current
        if j >= 0:
            vector[j] += current

    def stamp_two_terminal(self, matrix: np.ndarray, anode: int,
                           cathode: int, g: float) -> None:
        """Stamp a device's (chord or companion) conductance."""
        self.stamp_conductance(matrix, anode, cathode, g)

    def stamp_transconductance(self, matrix: np.ndarray, out_p: int,
                               out_n: int, ctrl_p: int, ctrl_n: int,
                               gm: float) -> None:
        """Stamp a VCCS: current ``gm * (V_ctrlp - V_ctrln)`` into
        ``out_p -> out_n`` (used for the MOSFET ``gm`` in Newton mode)."""
        for row, sign_r in ((out_p, 1.0), (out_n, -1.0)):
            if row < 0:
                continue
            for col, sign_c in ((ctrl_p, 1.0), (ctrl_n, -1.0)):
                if col < 0:
                    continue
                matrix[row, col] += gm * sign_r * sign_c

    # ------------------------------------------------------------------
    # Matrix builders
    # ------------------------------------------------------------------

    def conductance_base(self) -> np.ndarray:
        """Constant ``G`` stamps: resistors + source/inductor incidence."""
        g = np.zeros((self.size, self.size))
        for resistor in self.circuit.resistors:
            i = self.node_index(resistor.nodes[0])
            j = self.node_index(resistor.nodes[1])
            self.stamp_conductance(g, i, j, resistor.conductance)
        for k, source in enumerate(self.circuit.voltage_sources):
            row = self._vsrc_offset + k
            p = self.node_index(source.nodes[0])
            n = self.node_index(source.nodes[1])
            if p >= 0:
                g[p, row] += 1.0
                g[row, p] += 1.0
            if n >= 0:
                g[n, row] -= 1.0
                g[row, n] -= 1.0
        for k, inductor in enumerate(self.circuit.inductors):
            row = self._ind_offset + k
            p = self.node_index(inductor.nodes[0])
            n = self.node_index(inductor.nodes[1])
            if p >= 0:
                g[p, row] += 1.0
                g[row, p] += 1.0
            if n >= 0:
                g[n, row] -= 1.0
                g[row, n] -= 1.0
        return g

    def capacitance_matrix(self) -> np.ndarray:
        """``C`` matrix: capacitor stamps, ``-L`` on inductor diagonals."""
        c = np.zeros((self.size, self.size))
        for capacitor in self.circuit.capacitors:
            i = self.node_index(capacitor.nodes[0])
            j = self.node_index(capacitor.nodes[1])
            self.stamp_conductance(c, i, j, capacitor.capacitance)
        for k, inductor in enumerate(self.circuit.inductors):
            row = self._ind_offset + k
            c[row, row] -= inductor.inductance
        return c

    def source_vector(self, t: float,
                      out: np.ndarray | None = None) -> np.ndarray:
        """Independent-source contribution ``b(t)``.

        Passing *out* (a ``(size,)`` array) reuses the buffer instead of
        allocating — the transient engines call this every step.
        """
        if out is None:
            b = np.zeros(self.size)
        else:
            b = out
            b.fill(0.0)
        for k, source in enumerate(self.circuit.voltage_sources):
            b[self._vsrc_offset + k] = source.value(t)
        for source in self.circuit.current_sources:
            p = self.node_index(source.nodes[0])
            n = self.node_index(source.nodes[1])
            self.stamp_current(b, p, n, source.value(t))
        return b

    # ------------------------------------------------------------------
    # Device terminal indices, precomputed once per analysis
    # ------------------------------------------------------------------

    def device_terminals(self) -> list[tuple[int, int]]:
        """``(anode, cathode)`` index pairs for each two-terminal device."""
        return [
            (self.node_index(d.nodes[0]), self.node_index(d.nodes[1]))
            for d in self.circuit.devices
        ]

    def mosfet_terminals(self) -> list[tuple[int, int, int]]:
        """``(drain, gate, source)`` index triples for each MOSFET."""
        return [
            (self.node_index(m.drain), self.node_index(m.gate),
             self.node_index(m.source))
            for m in self.circuit.mosfets
        ]

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------

    def initial_state(self) -> np.ndarray:
        """Zero state with capacitor initial voltages honoured.

        A capacitor with ``initial_voltage`` set pins the *difference* of
        its node voltages; when one terminal is grounded the assignment is
        exact, otherwise the positive node takes the value (standard IC
        semantics for the circuits in this library).
        """
        x = np.zeros(self.size)
        for capacitor in self.circuit.capacitors:
            if capacitor.initial_voltage is None:
                continue
            i = self.node_index(capacitor.nodes[0])
            j = self.node_index(capacitor.nodes[1])
            if i >= 0:
                x[i] = capacitor.initial_voltage + (x[j] if j >= 0 else 0.0)
            elif j >= 0:
                x[j] = -capacitor.initial_voltage
        for k, inductor in enumerate(self.circuit.inductors):
            x[self._ind_offset + k] = inductor.initial_current
        return x

    def voltages(self, state: np.ndarray) -> dict[str, float]:
        """Map node name -> voltage for a solved state vector."""
        return {name: float(state[k]) for name, k in self._node_of.items()}

    def branch_voltage(self, state: np.ndarray, node_a: str,
                       node_b: str) -> float:
        """Voltage ``V(node_a) - V(node_b)`` from a state vector."""
        va = 0.0 if is_ground(node_a) else float(state[self.node_index(node_a)])
        vb = 0.0 if is_ground(node_b) else float(state[self.node_index(node_b)])
        return va - vb

    def __repr__(self) -> str:
        return (f"MnaSystem({self.circuit.name!r}, size={self.size}, "
                f"nodes={self.num_nodes})")
