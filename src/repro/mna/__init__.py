"""Modified nodal analysis: stamping, assembly and linear solution.

:class:`~repro.mna.assembler.MnaSystem` turns a
:class:`~repro.circuit.Circuit` into the matrices of the paper's eq. (1),

.. math::  G(t)\\,V(t) + C\\,\\dot V(t) = b\\,u_s(t)

with voltage sources and inductors handled through branch-current
augmentation.  Engines own the time discretization; this package owns the
matrix structure and the solver primitives the
:mod:`repro.core.backends` registry composes: dense LU
(:class:`~repro.mna.linsolve.LinearSolver` +
:class:`~repro.mna.linsolve.CachedFactorization`), SuperLU on a cached
symbolic pattern (:class:`~repro.mna.sparse.SparseOperators` /
:class:`~repro.mna.sparse.SparseSolver`), and chunked batched LAPACK
(:func:`~repro.mna.batch.solve_stack`).
"""

from repro.mna.assembler import MnaSystem
from repro.mna.batch import ConductanceStamper, solve_stack
from repro.mna.linsolve import CachedFactorization, LinearSolver, solve_dense
from repro.mna.sparse import SparseOperators, SparseSolver

__all__ = ["CachedFactorization", "ConductanceStamper", "LinearSolver",
           "MnaSystem", "SparseOperators", "SparseSolver", "solve_dense",
           "solve_stack"]
