"""Modified nodal analysis: stamping, assembly and linear solution.

:class:`~repro.mna.assembler.MnaSystem` turns a
:class:`~repro.circuit.Circuit` into the matrices of the paper's eq. (1),

.. math::  G(t)\\,V(t) + C\\,\\dot V(t) = b\\,u_s(t)

with voltage sources and inductors handled through branch-current
augmentation.  Engines own the time discretization; this package owns the
matrix structure.
"""

from repro.mna.assembler import MnaSystem
from repro.mna.batch import ConductanceStamper, solve_stack
from repro.mna.linsolve import LinearSolver, solve_dense

__all__ = ["ConductanceStamper", "LinearSolver", "MnaSystem",
           "solve_dense", "solve_stack"]
