"""Index-based batch assembly and chunked batched dense solves.

Two pieces shared by every stacked-system path in the repo:

:class:`ConductanceStamper`
    Precomputed scatter indices for two-terminal conductance stamps.
    Built once per analysis from ``(i, j)`` terminal index pairs, it
    stamps a whole column of conductances into a dense ``(n, n)``
    matrix — or a ``(K, n, n)`` stack, one conductance row per
    instance — without a Python loop over devices.

:func:`solve_stack`
    Chunked batched ``numpy.linalg.solve`` over a ``(B, n, n)`` stack
    of systems.  The AC sweeps (:mod:`repro.ac.analysis`, complex
    ``(F, n, n)`` frequency stacks) and the ensemble transient engine
    (:mod:`repro.swec.ensemble`, real ``(K, n, n)`` instance stacks)
    both route through it, so memory bounding and singular-system
    reporting live in one place.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SingularMatrixError

#: Matrix entries per solve chunk (~64 MB at complex128, ~32 MB at
#: float64) — the same bound the AC sweeps have always used.
CHUNK_ENTRIES = 4_000_000


def solve_stack(matrices, rhs, *, chunk_entries: int | None = None,
                describe: Callable[[int, int], str] | None = None,
                dtype=None) -> np.ndarray:
    """Solve a stack of linear systems with chunked batched LAPACK.

    Parameters
    ----------
    matrices:
        ``(B, n, n)`` array stack, or a callable ``matrices(lo, hi)``
        returning the ``(hi - lo, n, n)`` chunk — the lazy form lets
        callers assemble huge stacks chunk by chunk (the AC sweep
        never materializes its full ``(F, n, n)`` complex stack).
    rhs:
        ``(B, n)`` right-hand sides, or ``(B, n, k)`` for multiple
        columns per system.  A ``numpy.broadcast_to`` view is fine —
        it is only ever sliced.
    chunk_entries:
        Matrix entries per chunk; defaults to :data:`CHUNK_ENTRIES`.
    describe:
        Optional ``describe(lo, hi)`` callback naming the chunk in the
        :class:`~repro.errors.SingularMatrixError` message.
    dtype:
        Result dtype; defaults to the rhs dtype (callers passing a
        lazy complex ``matrices`` with a real rhs must say so).

    Returns the ``(B, n)`` or ``(B, n, k)`` solution stack, matching
    the rhs rank.
    """
    rhs = np.asarray(rhs)
    if rhs.ndim not in (2, 3):
        raise ValueError(
            f"rhs must have shape (B, n) or (B, n, k), got {rhs.shape}")
    squeeze = rhs.ndim == 2
    rhs3 = rhs[:, :, None] if squeeze else rhs
    batch, n = rhs3.shape[0], rhs3.shape[1]
    if dtype is None:
        dtype = rhs.dtype if np.iscomplexobj(rhs) else float
    out = np.empty((batch, n, rhs3.shape[2]), dtype=dtype)
    entries = CHUNK_ENTRIES if chunk_entries is None else int(chunk_entries)
    chunk = max(1, entries // max(n * n, 1))
    for lo in range(0, batch, chunk):
        hi = min(lo + chunk, batch)
        block = matrices(lo, hi) if callable(matrices) else matrices[lo:hi]
        try:
            out[lo:hi] = np.linalg.solve(block, rhs3[lo:hi])
        except np.linalg.LinAlgError as exc:
            context = describe(lo, hi) if describe is not None else \
                f"batch [{lo}, {hi})"
            raise SingularMatrixError(
                f"singular system in {context}: {exc}") from exc
    return out[:, :, 0] if squeeze else out


class ConductanceStamper:
    """Scatter-index stamping of two-terminal conductances.

    Parameters
    ----------
    pairs:
        ``(i, j)`` row/column index pairs, one per conductance to be
        stamped; ``-1`` means ground (that side does not stamp).
    size:
        System dimension ``n``.

    ``stamp(matrix, values)`` adds each ``values[..., k]`` between
    ``pairs[k]`` exactly like
    :meth:`repro.mna.assembler.MnaSystem.stamp_conductance`, but as
    one ``np.add.at`` scatter instead of a Python loop — and with an
    optional leading batch axis on both arguments.  Scatter entries
    are emitted in the same device-then-entry order the loop used, so
    accumulation order (hence bitwise results) is unchanged.
    """

    def __init__(self, pairs, size: int) -> None:
        self.size = int(size)
        self.n_values = len(pairs)
        positions: list[int] = []
        columns: list[int] = []
        signs: list[float] = []
        for k, (i, j) in enumerate(pairs):
            if i >= 0:
                positions.append(i * size + i)
                columns.append(k)
                signs.append(1.0)
            if j >= 0:
                positions.append(j * size + j)
                columns.append(k)
                signs.append(1.0)
            if i >= 0 and j >= 0:
                positions.append(i * size + j)
                columns.append(k)
                signs.append(-1.0)
                positions.append(j * size + i)
                columns.append(k)
                signs.append(-1.0)
        self._positions = np.asarray(positions, dtype=np.intp)
        self._columns = np.asarray(columns, dtype=np.intp)
        self._signs = np.asarray(signs, dtype=float)

    def stamp(self, matrix: np.ndarray, values: np.ndarray) -> None:
        """Stamp *values* into *matrix* in place.

        *matrix* is ``(n, n)`` or a C-contiguous ``(K, n, n)`` stack;
        *values* correspondingly ``(n_values,)`` or ``(K, n_values)``.
        """
        if self._positions.size == 0:
            return
        if not matrix.flags.c_contiguous:
            # reshape on a non-contiguous array would copy and the
            # in-place scatter would be lost.
            raise ValueError("stamp target must be C-contiguous")
        values = np.asarray(values, dtype=float)
        contributions = values[..., self._columns] * self._signs
        flat = matrix.reshape(*matrix.shape[:-2], self.size * self.size)
        if flat.ndim == 1:
            np.add.at(flat, self._positions, contributions)
        else:
            flat2 = flat.reshape(-1, self.size * self.size)
            rows = np.arange(flat2.shape[0], dtype=np.intp)[:, None]
            np.add.at(flat2, (rows, self._positions[None, :]),
                      contributions.reshape(flat2.shape[0], -1))
