"""Engineering-notation value parsing and formatting.

SPICE netlists write component values as ``1k``, ``2.2u``, ``10meg``,
``100n`` and so on.  :func:`parse_value` understands that notation, and
:func:`format_value` produces it for reports.
"""

from __future__ import annotations

import re

#: SPICE suffix -> multiplier.  ``meg`` must be matched before ``m``.
_SUFFIXES = (
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
)

_VALUE_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Z]*)\s*$")

#: Ordered (multiplier, suffix) pairs for formatting, largest first.
#: Mega is written ``Meg`` so formatted values reparse correctly under
#: the SPICE convention where a bare ``m``/``M`` means milli.
_FORMAT_STEPS = (
    (1e12, "T"), (1e9, "G"), (1e6, "Meg"), (1e3, "k"), (1.0, ""),
    (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
)


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE-style value such as ``"4.7k"`` or ``"10meg"``.

    Numbers pass through unchanged, letters after a recognized suffix are
    ignored (so ``"10pF"`` parses as ``10e-12``, matching SPICE behaviour).

    >>> parse_value("4.7k")
    4700.0
    >>> parse_value("10pF")
    1e-11
    >>> parse_value(3.3)
    3.3
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _VALUE_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse value {text!r}")
    magnitude = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return magnitude
    for name, multiplier in _SUFFIXES:
        if suffix.startswith(name):
            return magnitude * multiplier
    # Unknown letters with no numeric meaning (e.g. "V", "F") are units.
    return magnitude


def format_value(value: float, unit: str = "", digits: int = 4) -> str:
    """Format *value* with an engineering suffix.

    >>> format_value(4700.0, "Ohm")
    '4.7kOhm'
    >>> format_value(1e-11, "F")
    '10pF'
    """
    if value == 0.0:
        return f"0{unit}"
    magnitude = abs(value)
    for multiplier, suffix in _FORMAT_STEPS:
        if magnitude >= multiplier:
            scaled = value / multiplier
            text = f"{scaled:.{digits}g}"
            return f"{text}{suffix}{unit}"
    multiplier, suffix = _FORMAT_STEPS[-1]
    scaled = value / multiplier
    return f"{scaled:.{digits}g}{suffix}{unit}"
