"""SPICE-like netlist text parser.

Supported card types (case-insensitive, ``*`` and ``;`` comments,
``+`` continuation lines)::

    R<name> n1 n2 <value>
    C<name> n1 n2 <value> [IC=<v0>]
    L<name> n1 n2 <value> [IC=<i0>]
    V<name> n+ n- <dc value> | PULSE(v1 v2 td tr tf pw per) |
                               SIN(off ampl freq [delay]) |
                               PWL(t1 v1 t2 v2 ...)
    I<name> n+ n- <same waveform syntax>
    D<name> n+ n- <model>            (diode)
    X<name> n+ n- <model> [M=<mult>] (two-terminal nanodevice)
    M<name> nd ng ns <model>         (MOSFET)
    .MODEL <name> <RTD|NANOWIRE|RTT|DIODE|NMOS|PMOS> [param=value ...]
    .TITLE <text> / .END

Values accept engineering suffixes (``1k``, ``10p``...).  Device models
reference ``.MODEL`` cards; the RTD model exposes the Schulman parameters
under their paper names (``A B C D N1 N2 H``).
"""

from __future__ import annotations

import re

from repro.circuit.netlist import Circuit
from repro.circuit.sources import DC, PiecewiseLinear, Pulse, Sine, Waveform
from repro.devices.diode import Diode
from repro.devices.mosfet import nmos, pmos
from repro.devices.nanowire import QuantizedNanowire
from repro.devices.rtd import (
    NANO_SIM_DATE05,
    SchulmanParameters,
    SchulmanRTD,
)
from repro.devices.rtt import MultiPeakRTT
from repro.errors import NetlistParseError
from repro.units import parse_value

_FUNC_RE = re.compile(r"^(PULSE|SIN|PWL)\s*\((.*)\)$", re.IGNORECASE)
_PARAM_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)=(.+)$")


def _join_continuations(text: str) -> list[tuple[int, str]]:
    """Strip comments, join ``+`` continuation lines; keep line numbers."""
    logical: list[tuple[int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not logical:
                raise NetlistParseError(
                    "continuation line with nothing to continue",
                    number, raw)
            prev_number, prev_line = logical[-1]
            logical[-1] = (prev_number, prev_line + " " + stripped[1:])
        else:
            logical.append((number, stripped))
    return logical


def _split_fields(line: str) -> list[str]:
    """Tokenize a card, keeping ``FUNC(...)`` groups as single fields."""
    fields: list[str] = []
    depth = 0
    current: list[str] = []
    for char in line:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char.isspace() and depth == 0:
            if current:
                fields.append("".join(current))
                current = []
        else:
            current.append(char)
    if current:
        fields.append("".join(current))
    return fields


def _parse_waveform(fields: list[str], line_number: int,
                    line: str) -> Waveform:
    """Parse the source-value tail of a V/I card."""
    joined = " ".join(fields)
    match = _FUNC_RE.match(joined)
    if match is None:
        if len(fields) == 2 and fields[0].upper() == "DC":
            return DC(parse_value(fields[1]))
        if len(fields) == 1:
            return DC(parse_value(fields[0]))
        raise NetlistParseError(
            f"cannot parse source value {joined!r}", line_number, line)
    kind = match.group(1).upper()
    arguments = [parse_value(tok) for tok in
                 re.split(r"[\s,]+", match.group(2).strip()) if tok]
    try:
        if kind == "PULSE":
            names = ("initial", "pulsed", "delay", "rise", "fall",
                     "width", "period")
            kwargs = dict(zip(names, arguments))
            initial = kwargs.pop("initial")
            pulsed = kwargs.pop("pulsed")
            if "period" not in kwargs:
                kwargs["period"] = float("inf")
            return Pulse(initial, pulsed, **kwargs)
        if kind == "SIN":
            return Sine(*arguments)
        if kind == "PWL":
            if len(arguments) % 2 != 0:
                raise ValueError("PWL needs time/value pairs")
            points = list(zip(arguments[0::2], arguments[1::2]))
            return PiecewiseLinear(points)
    except (TypeError, ValueError) as exc:
        raise NetlistParseError(
            f"bad {kind} source: {exc}", line_number, line) from exc
    raise NetlistParseError(
        f"unknown source function {kind!r}", line_number, line)


def _build_model(kind: str, params: dict[str, float], line_number: int,
                 line: str):
    """Instantiate a device model from a ``.MODEL`` card."""
    kind = kind.upper()
    if kind == "RTD":
        base = NANO_SIM_DATE05
        record = SchulmanParameters(
            a=params.pop("a", base.a), b=params.pop("b", base.b),
            c=params.pop("c", base.c), d=params.pop("d", base.d),
            n1=params.pop("n1", base.n1), n2=params.pop("n2", base.n2),
            h=params.pop("h", base.h),
            temperature=params.pop("temp", base.temperature))
        model = SchulmanRTD(record)
    elif kind == "NANOWIRE":
        steps = int(params.pop("steps", 4))
        spacing = params.pop("spacing", 0.3)
        first = params.pop("first", 0.2)
        model = QuantizedNanowire(
            step_voltages=tuple(first + spacing * k for k in range(steps)),
            smearing=params.pop("smearing", 0.02))
    elif kind == "RTT":
        peaks = int(params.pop("peaks", 3))
        spacing = params.pop("spacing", 0.7)
        first = params.pop("first", 0.5)
        model = MultiPeakRTT(
            peak_voltages=tuple(first + spacing * k for k in range(peaks)),
            base_drive=params.pop("drive", 1.0))
    elif kind == "DIODE":
        model = Diode(saturation_current=params.pop("is", 1e-14),
                      ideality=params.pop("n", 1.0))
    elif kind in ("NMOS", "PMOS"):
        builder = nmos if kind == "NMOS" else pmos
        model = builder(kp=params.pop("kp", 2e-5),
                        w=params.pop("w", 10e-6),
                        l=params.pop("l", 1e-6),
                        vth=params.pop("vth", 1.0 if kind == "NMOS" else -1.0))
    else:
        raise NetlistParseError(
            f"unknown model kind {kind!r}", line_number, line)
    if params:
        raise NetlistParseError(
            f"unknown {kind} parameters: {sorted(params)}",
            line_number, line)
    return model


def parse_netlist(text: str) -> Circuit:
    """Parse *text* into a :class:`~repro.circuit.Circuit`.

    >>> circuit = parse_netlist('''
    ... .title divider
    ... Vs in 0 1.0
    ... R1 in out 10
    ... .model myrtd RTD
    ... Xrtd out 0 myrtd
    ... .end
    ... ''')
    >>> circuit.num_nodes
    2
    """
    lines = _join_continuations(text)
    circuit = Circuit()
    models: dict[str, object] = {}
    # First pass: collect models so device cards can reference them in
    # any order (SPICE allows .MODEL after the instance line).
    for number, line in lines:
        fields = _split_fields(line)
        if fields[0].upper() == ".MODEL":
            if len(fields) < 3:
                raise NetlistParseError(".MODEL needs name and kind",
                                        number, line)
            name = fields[1].lower()
            params: dict[str, float] = {}
            for token in fields[3:]:
                match = _PARAM_RE.match(token)
                if match is None:
                    raise NetlistParseError(
                        f"bad model parameter {token!r}", number, line)
                params[match.group(1).lower()] = parse_value(match.group(2))
            models[name] = _build_model(fields[2], params, number, line)

    for number, line in lines:
        fields = _split_fields(line)
        head = fields[0]
        upper = head.upper()
        if upper.startswith(".TITLE"):
            circuit.name = " ".join(fields[1:]) or circuit.name
            continue
        if upper in (".END",) or upper.startswith(".MODEL"):
            continue
        if upper.startswith("."):
            raise NetlistParseError(
                f"unsupported directive {head!r}", number, line)
        letter = upper[0]
        try:
            if letter == "R":
                circuit.add_resistor(head, fields[1], fields[2],
                                     parse_value(fields[3]))
            elif letter == "C":
                initial = None
                tail = fields[4:] if len(fields) > 4 else []
                for token in tail:
                    match = _PARAM_RE.match(token)
                    if match and match.group(1).upper() == "IC":
                        initial = parse_value(match.group(2))
                circuit.add_capacitor(head, fields[1], fields[2],
                                      parse_value(fields[3]), initial)
            elif letter == "L":
                initial = 0.0
                for token in fields[4:]:
                    match = _PARAM_RE.match(token)
                    if match and match.group(1).upper() == "IC":
                        initial = parse_value(match.group(2))
                circuit.add_inductor(head, fields[1], fields[2],
                                     parse_value(fields[3]), initial)
            elif letter == "V":
                circuit.add_voltage_source(
                    head, fields[1], fields[2],
                    _parse_waveform(fields[3:], number, line))
            elif letter == "I":
                circuit.add_current_source(
                    head, fields[1], fields[2],
                    _parse_waveform(fields[3:], number, line))
            elif letter in ("X", "D"):
                model_name = fields[3].lower()
                if model_name not in models:
                    raise NetlistParseError(
                        f"unknown model {fields[3]!r}", number, line)
                multiplicity = 1.0
                for token in fields[4:]:
                    match = _PARAM_RE.match(token)
                    if match and match.group(1).upper() == "M":
                        multiplicity = parse_value(match.group(2))
                circuit.add_device(head, fields[1], fields[2],
                                   models[model_name], multiplicity)
            elif letter == "M":
                model_name = fields[4].lower()
                if model_name not in models:
                    raise NetlistParseError(
                        f"unknown model {fields[4]!r}", number, line)
                circuit.add_mosfet(head, fields[1], fields[2], fields[3],
                                   models[model_name])
            else:
                raise NetlistParseError(
                    f"unknown card type {head!r}", number, line)
        except NetlistParseError:
            raise
        except IndexError:
            raise NetlistParseError(
                f"too few fields for {head!r}", number, line) from None
        except Exception as exc:
            raise NetlistParseError(str(exc), number, line) from exc
    return circuit
