"""SPICE-like netlist text parser.

Supported card types (case-insensitive, ``*`` and ``;`` comments,
``+`` continuation lines)::

    R<name> n1 n2 <value>
    C<name> n1 n2 <value> [IC=<v0>]
    L<name> n1 n2 <value> [IC=<i0>]
    V<name> n+ n- <dc value> | PULSE(v1 v2 td tr tf pw per) |
                               SIN(off ampl freq [delay]) |
                               PWL(t1 v1 t2 v2 ...)
    I<name> n+ n- <same waveform syntax>
    D<name> n+ n- <model>            (diode)
    X<name> n+ n- <model> [M=<mult>] (two-terminal nanodevice)
    X<name> n1 n2 ... <subckt> [param=value ...]  (subcircuit call)
    M<name> nd ng ns <model>         (MOSFET)
    .MODEL <name> <RTD|NANOWIRE|RTT|DIODE|NMOS|PMOS> [param=value ...]
    .PARAM <name>=<expr> [<name>=<expr> ...]
    .SUBCKT <name> port1 port2 ... [param=default ...] / .ENDS
    .TITLE <text> / .END

Values accept engineering suffixes (``1k``, ``10p``...).  Any value
position may be an expression in braces (``{rload * 2}``) over the
``.PARAM`` environment — see :mod:`repro.circuit.expressions`.
Subcircuits are flattened at parse time: internal nodes and element
names are prefixed with the instance name (``X1.n1``), and instances
may nest.  Device models reference ``.MODEL`` cards (global, even when
written inside a ``.SUBCKT`` body); the RTD model exposes the Schulman
parameters under their paper names (``A B C D N1 N2 H``).

The full dialect is documented in ``docs/netlist_format.md``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.circuit.expressions import ExpressionError, evaluate
from repro.circuit.netlist import Circuit, is_ground
from repro.circuit.sources import DC, PiecewiseLinear, Pulse, Sine, Waveform
from repro.devices.diode import Diode
from repro.devices.mosfet import nmos, pmos
from repro.devices.nanowire import QuantizedNanowire
from repro.devices.rtd import (
    NANO_SIM_DATE05,
    SchulmanParameters,
    SchulmanRTD,
)
from repro.devices.rtt import MultiPeakRTT
from repro.errors import NetlistParseError
from repro.units import parse_value

_FUNC_RE = re.compile(r"^(PULSE|SIN|PWL)\s*\((.*)\)$", re.IGNORECASE)
_PARAM_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)=(.+)$", re.DOTALL)
_BRACE_RE = re.compile(r"\{([^{}]*)\}")

#: Recursion limit for subcircuit expansion; hitting it means a cycle.
MAX_SUBCKT_DEPTH = 32


def _join_continuations(text: str) -> list[tuple[int, str]]:
    """Strip comments, join ``+`` continuation lines; keep line numbers."""
    logical: list[tuple[int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not logical:
                raise NetlistParseError(
                    "continuation line with nothing to continue",
                    number, raw)
            prev_number, prev_line = logical[-1]
            logical[-1] = (prev_number, prev_line + " " + stripped[1:])
        else:
            logical.append((number, stripped))
    return logical


def _split_fields(line: str) -> list[str]:
    """Tokenize a card, keeping ``FUNC(...)``/``{...}`` groups together."""
    fields: list[str] = []
    depth = 0
    current: list[str] = []
    for char in line:
        if char in "({":
            depth += 1
        elif char in ")}":
            depth -= 1
        if char.isspace() and depth == 0:
            if current:
                fields.append("".join(current))
                current = []
        else:
            current.append(char)
    if current:
        fields.append("".join(current))
    return fields


def _substitute(token: str, env: dict, number: int, line: str) -> str:
    """Replace every ``{expr}`` in *token* with its evaluated value."""
    if "{" not in token:
        return token

    def replace(match: re.Match) -> str:
        return repr(evaluate(match.group(1), env))

    try:
        return _BRACE_RE.sub(replace, token)
    except ExpressionError as exc:
        raise NetlistParseError(str(exc), number, line) from exc


def _expression_value(token: str, env: dict, number: int,
                      line: str) -> float:
    """Evaluate a value token: ``{expr}``, bare expression, or number."""
    text = token.strip()
    if text.startswith("{") and text.endswith("}"):
        text = text[1:-1]
    try:
        return evaluate(text, env)
    except ExpressionError as exc:
        raise NetlistParseError(str(exc), number, line) from exc


def _parse_waveform(fields: list[str], line_number: int,
                    line: str) -> Waveform:
    """Parse the source-value tail of a V/I card."""
    joined = " ".join(fields)
    match = _FUNC_RE.match(joined)
    if match is None:
        if len(fields) == 2 and fields[0].upper() == "DC":
            return DC(parse_value(fields[1]))
        if len(fields) == 1:
            return DC(parse_value(fields[0]))
        raise NetlistParseError(
            f"cannot parse source value {joined!r}", line_number, line)
    kind = match.group(1).upper()
    arguments = [parse_value(tok) for tok in
                 re.split(r"[\s,]+", match.group(2).strip()) if tok]
    try:
        if kind == "PULSE":
            names = ("initial", "pulsed", "delay", "rise", "fall",
                     "width", "period")
            kwargs = dict(zip(names, arguments))
            initial = kwargs.pop("initial")
            pulsed = kwargs.pop("pulsed")
            if "period" not in kwargs:
                kwargs["period"] = float("inf")
            return Pulse(initial, pulsed, **kwargs)
        if kind == "SIN":
            return Sine(*arguments)
        if kind == "PWL":
            if len(arguments) % 2 != 0:
                raise ValueError("PWL needs time/value pairs")
            points = list(zip(arguments[0::2], arguments[1::2]))
            return PiecewiseLinear(points)
    except (TypeError, ValueError) as exc:
        raise NetlistParseError(
            f"bad {kind} source: {exc}", line_number, line) from exc
    raise NetlistParseError(
        f"unknown source function {kind!r}", line_number, line)


def _build_model(kind: str, params: dict[str, float], line_number: int,
                 line: str):
    """Instantiate a device model from a ``.MODEL`` card."""
    kind = kind.upper()
    if kind == "RTD":
        base = NANO_SIM_DATE05
        record = SchulmanParameters(
            a=params.pop("a", base.a), b=params.pop("b", base.b),
            c=params.pop("c", base.c), d=params.pop("d", base.d),
            n1=params.pop("n1", base.n1), n2=params.pop("n2", base.n2),
            h=params.pop("h", base.h),
            temperature=params.pop("temp", base.temperature))
        model = SchulmanRTD(record)
    elif kind == "NANOWIRE":
        steps = int(params.pop("steps", 4))
        spacing = params.pop("spacing", 0.3)
        first = params.pop("first", 0.2)
        model = QuantizedNanowire(
            step_voltages=tuple(first + spacing * k for k in range(steps)),
            smearing=params.pop("smearing", 0.02))
    elif kind == "RTT":
        peaks = int(params.pop("peaks", 3))
        spacing = params.pop("spacing", 0.7)
        first = params.pop("first", 0.5)
        model = MultiPeakRTT(
            peak_voltages=tuple(first + spacing * k for k in range(peaks)),
            base_drive=params.pop("drive", 1.0))
    elif kind == "DIODE":
        model = Diode(saturation_current=params.pop("is", 1e-14),
                      ideality=params.pop("n", 1.0))
    elif kind in ("NMOS", "PMOS"):
        builder = nmos if kind == "NMOS" else pmos
        model = builder(kp=params.pop("kp", 2e-5),
                        w=params.pop("w", 10e-6),
                        l=params.pop("l", 1e-6),
                        vth=params.pop("vth", 1.0 if kind == "NMOS" else -1.0))
    else:
        raise NetlistParseError(
            f"unknown model kind {kind!r}", line_number, line)
    if params:
        raise NetlistParseError(
            f"unknown {kind} parameters: {sorted(params)}",
            line_number, line)
    return model


@dataclass
class SubcktDef:
    """One ``.SUBCKT`` definition, kept unexpanded until instantiated."""

    name: str
    ports: tuple[str, ...]
    defaults: dict[str, str]
    body: list[tuple[int, str]]
    line_number: int
    line: str


@dataclass
class _Scope:
    """Expansion context: name prefix, port mapping, parameter env."""

    env: dict
    prefix: str = ""
    node_map: dict = field(default_factory=dict)

    def resolve(self, node: str) -> str:
        """Map a local node name to its flattened global name."""
        if is_ground(node):
            return node
        if node in self.node_map:
            return self.node_map[node]
        return self.prefix + node


def _extract_subckts(
    lines: list[tuple[int, str]],
) -> tuple[list[tuple[int, str]], dict[str, SubcktDef]]:
    """Split logical lines into top-level cards and subckt definitions."""
    top: list[tuple[int, str]] = []
    subckts: dict[str, SubcktDef] = {}
    current: SubcktDef | None = None
    for number, line in lines:
        fields = _split_fields(line)
        head = fields[0].upper()
        if head == ".SUBCKT":
            if current is not None:
                raise NetlistParseError(
                    "nested .SUBCKT definitions are not supported "
                    "(nested *instantiation* is)", number, line)
            if len(fields) < 3:
                raise NetlistParseError(
                    ".SUBCKT needs a name and at least one port",
                    number, line)
            name = fields[1].lower()
            if name in subckts:
                raise NetlistParseError(
                    f"duplicate .SUBCKT name {fields[1]!r}", number, line)
            ports: list[str] = []
            defaults: dict[str, str] = {}
            for token in fields[2:]:
                match = _PARAM_RE.match(token)
                if match is not None:
                    defaults[match.group(1)] = match.group(2)
                elif defaults:
                    raise NetlistParseError(
                        f"port {token!r} after parameter defaults",
                        number, line)
                else:
                    ports.append(token)
            if not ports:
                raise NetlistParseError(
                    ".SUBCKT needs at least one port", number, line)
            current = SubcktDef(name, tuple(ports), defaults, [],
                                number, line)
        elif head == ".ENDS":
            if current is None:
                raise NetlistParseError(
                    ".ENDS without a matching .SUBCKT", number, line)
            subckts[current.name] = current
            current = None
        elif current is not None:
            if head == ".PARAM":
                raise NetlistParseError(
                    ".PARAM inside a .SUBCKT body; declare defaults on "
                    "the .SUBCKT line instead", number, line)
            current.body.append((number, line))
        else:
            top.append((number, line))
    if current is not None:
        raise NetlistParseError(
            f".SUBCKT {current.name!r} is never closed by .ENDS",
            current.line_number, current.line)
    return top, subckts


def _collect_params(lines: list[tuple[int, str]],
                    overrides: dict | None) -> dict[str, float]:
    """Process ``.PARAM`` cards in order, applying external overrides.

    Overrides replace the value of a parameter *at its definition
    point*, so later parameters derived from it see the override.
    Overriding a name no ``.PARAM`` card defines is an error — it is
    almost always a typo in a sweep spec.
    """
    overrides = dict(overrides or {})
    env: dict[str, float] = {}
    for number, line in lines:
        fields = _split_fields(line)
        if fields[0].upper() != ".PARAM":
            continue
        if len(fields) < 2:
            raise NetlistParseError(
                ".PARAM needs at least one name=value pair", number, line)
        for token in fields[1:]:
            match = _PARAM_RE.match(token)
            if match is None:
                raise NetlistParseError(
                    f"bad .PARAM token {token!r} (expected name=value)",
                    number, line)
            name = match.group(1)
            if name in env:
                raise NetlistParseError(
                    f"parameter {name!r} redefined", number, line)
            if name in overrides:
                env[name] = float(overrides.pop(name))
            else:
                env[name] = _expression_value(match.group(2), env,
                                              number, line)
    if overrides:
        unknown = ", ".join(sorted(overrides))
        raise NetlistParseError(
            f"override of parameter(s) not defined by any .PARAM card: "
            f"{unknown}")
    return env


def _collect_models(lines: list[tuple[int, str]],
                    env: dict[str, float]) -> dict[str, object]:
    """Build the (global) model table from every ``.MODEL`` card."""
    models: dict[str, object] = {}
    for number, line in lines:
        fields = _split_fields(line)
        if fields[0].upper() != ".MODEL":
            continue
        if len(fields) < 3:
            raise NetlistParseError(".MODEL needs name and kind",
                                    number, line)
        name = fields[1].lower()
        params: dict[str, float] = {}
        for token in fields[3:]:
            token = _substitute(token, env, number, line)
            match = _PARAM_RE.match(token)
            if match is None:
                raise NetlistParseError(
                    f"bad model parameter {token!r}", number, line)
            params[match.group(1).lower()] = parse_value(match.group(2))
        models[name] = _build_model(fields[2], params, number, line)
    return models


def _split_bare_and_params(tokens: list[str]) -> tuple[list[str],
                                                       list[str]]:
    """Separate positional tokens from trailing ``name=value`` tokens."""
    bare = [t for t in tokens if _PARAM_RE.match(t) is None]
    params = [t for t in tokens if _PARAM_RE.match(t) is not None]
    return bare, params


class _Parser:
    """Single-netlist parse state: model/subckt tables plus the circuit."""

    def __init__(self, models: dict, subckts: dict[str, SubcktDef],
                 provenance: dict | None = None) -> None:
        self.models = models
        self.subckts = subckts
        self.circuit = Circuit()
        self.provenance = provenance

    def _note(self, name: str, number: int, line: str) -> None:
        """Record where an element came from, when provenance is on."""
        if self.provenance is not None:
            self.provenance[name] = (number, line)

    # ------------------------------------------------------------------

    def add_card(self, fields: list[str], number: int, line: str,
                 scope: _Scope, depth: int = 0) -> None:
        """Parse one element card into the circuit, inside *scope*."""
        head = fields[0]
        name = scope.prefix + head
        if head[0].upper() in "RCLVIM":
            self._note(name, number, line)
        fields = [head] + [_substitute(token, scope.env, number, line)
                           for token in fields[1:]]
        letter = head[0].upper()
        circuit = self.circuit
        try:
            if letter == "R":
                circuit.add_resistor(name, scope.resolve(fields[1]),
                                     scope.resolve(fields[2]),
                                     parse_value(fields[3]))
            elif letter == "C":
                initial = None
                for token in fields[4:]:
                    match = _PARAM_RE.match(token)
                    if match and match.group(1).upper() == "IC":
                        initial = parse_value(match.group(2))
                circuit.add_capacitor(name, scope.resolve(fields[1]),
                                      scope.resolve(fields[2]),
                                      parse_value(fields[3]), initial)
            elif letter == "L":
                initial = 0.0
                for token in fields[4:]:
                    match = _PARAM_RE.match(token)
                    if match and match.group(1).upper() == "IC":
                        initial = parse_value(match.group(2))
                circuit.add_inductor(name, scope.resolve(fields[1]),
                                     scope.resolve(fields[2]),
                                     parse_value(fields[3]), initial)
            elif letter == "V":
                circuit.add_voltage_source(
                    name, scope.resolve(fields[1]), scope.resolve(fields[2]),
                    _parse_waveform(fields[3:], number, line))
            elif letter == "I":
                circuit.add_current_source(
                    name, scope.resolve(fields[1]), scope.resolve(fields[2]),
                    _parse_waveform(fields[3:], number, line))
            elif letter == "X":
                self._add_x_card(fields, number, line, scope, depth)
            elif letter == "D":
                self._add_device(fields, number, line, scope)
            elif letter == "M":
                model_name = fields[4].lower()
                if model_name not in self.models:
                    raise NetlistParseError(
                        f"unknown model {fields[4]!r}", number, line)
                circuit.add_mosfet(name, scope.resolve(fields[1]),
                                   scope.resolve(fields[2]),
                                   scope.resolve(fields[3]),
                                   self.models[model_name])
            else:
                raise NetlistParseError(
                    f"unknown card type {head!r}", number, line)
        except NetlistParseError:
            raise
        except IndexError:
            raise NetlistParseError(
                f"too few fields for {head!r}", number, line) from None
        except Exception as exc:
            raise NetlistParseError(str(exc), number, line) from exc

    # ------------------------------------------------------------------

    def _add_device(self, fields: list[str], number: int, line: str,
                    scope: _Scope) -> None:
        """``D``/two-terminal ``X`` card referencing a ``.MODEL``."""
        model_name = fields[3].lower()
        if model_name not in self.models:
            raise NetlistParseError(
                f"unknown model {fields[3]!r}", number, line)
        multiplicity = 1.0
        for token in fields[4:]:
            match = _PARAM_RE.match(token)
            if match and match.group(1).upper() == "M":
                multiplicity = parse_value(match.group(2))
        self._note(scope.prefix + fields[0], number, line)
        self.circuit.add_device(
            scope.prefix + fields[0], scope.resolve(fields[1]),
            scope.resolve(fields[2]), self.models[model_name], multiplicity)

    def _add_x_card(self, fields: list[str], number: int, line: str,
                    scope: _Scope, depth: int) -> None:
        """``X`` card: subcircuit call, or two-terminal nanodevice."""
        bare, param_tokens = _split_bare_and_params(fields[1:])
        if len(bare) < 2:
            raise NetlistParseError(
                f"too few fields for {fields[0]!r}", number, line)
        reference = bare[-1].lower()
        if reference in self.subckts:
            self._expand_subckt(fields[0], bare[:-1], param_tokens,
                                self.subckts[reference], number, line,
                                scope, depth)
            return
        if reference in self.models:
            self._add_device(fields, number, line, scope)
            return
        raise NetlistParseError(
            f"unknown model or subcircuit {bare[-1]!r}", number, line)

    def _expand_subckt(self, instance: str, nodes: list[str],
                       param_tokens: list[str], definition: SubcktDef,
                       number: int, line: str, scope: _Scope,
                       depth: int) -> None:
        """Flatten one subcircuit call into prefixed elements."""
        if depth >= MAX_SUBCKT_DEPTH:
            raise NetlistParseError(
                f"subcircuit nesting deeper than {MAX_SUBCKT_DEPTH} "
                f"levels (recursive definition?)", number, line)
        if len(nodes) != len(definition.ports):
            raise NetlistParseError(
                f"subcircuit {definition.name!r} has "
                f"{len(definition.ports)} port(s) "
                f"{definition.ports}, got {len(nodes)} node(s)",
                number, line)
        # Instance overrides are evaluated in the caller's scope...
        overrides: dict[str, float] = {}
        for token in param_tokens:
            match = _PARAM_RE.match(token)
            key = match.group(1)
            if key not in definition.defaults:
                raise NetlistParseError(
                    f"subcircuit {definition.name!r} has no parameter "
                    f"{key!r} (has: {sorted(definition.defaults) or 'none'})",
                    number, line)
            overrides[key] = _expression_value(match.group(2), scope.env,
                                               number, line)
        # ...while defaults are evaluated in the global/outer env, with
        # earlier subckt parameters visible to later defaults.
        child_env = dict(scope.env)
        for key, default in definition.defaults.items():
            if key in overrides:
                child_env[key] = overrides[key]
            else:
                child_env[key] = _expression_value(
                    default, child_env, definition.line_number,
                    definition.line)
        child = _Scope(
            env=child_env,
            prefix=scope.prefix + instance + ".",
            node_map={port: scope.resolve(node)
                      for port, node in zip(definition.ports, nodes)})
        for body_number, body_line in definition.body:
            body_fields = _split_fields(body_line)
            head = body_fields[0].upper()
            if head == ".MODEL":
                continue  # models are global; collected in the first pass
            if head.startswith("."):
                raise NetlistParseError(
                    f"directive {body_fields[0]!r} not allowed inside "
                    f".SUBCKT {definition.name!r}", body_number, body_line)
            self.add_card(body_fields, body_number, body_line, child,
                          depth + 1)


def parse_netlist(text: str, params: dict | None = None,
                  provenance: dict | None = None) -> Circuit:
    """Parse *text* into a :class:`~repro.circuit.Circuit`.

    Parameters
    ----------
    text:
        The netlist source.
    params:
        External overrides for ``.PARAM`` values — this is how the
        sweep subsystem turns one netlist into a circuit family.  Every
        key must be defined by a ``.PARAM`` card in the netlist.
    provenance:
        Optional dict the parser fills with
        ``element name -> (line_number, logical_line)`` for every
        element it creates (subcircuit-expanded elements point at
        their body line).  The lint subsystem uses this to attach
        netlist locations to graph-level diagnostics.

    >>> circuit = parse_netlist('''
    ... .title divider
    ... .param rser=10
    ... Vs in 0 1.0
    ... R1 in out {rser}
    ... .model myrtd RTD
    ... Xrtd out 0 myrtd
    ... .end
    ... ''', params={"rser": 22.0})
    >>> circuit.num_nodes
    2
    >>> circuit.resistors[0].resistance
    22.0
    """
    lines = _join_continuations(text)
    top, subckts = _extract_subckts(lines)
    env = _collect_params(top, params)
    parser = _Parser(_collect_models(lines, env), subckts, provenance)
    circuit = parser.circuit

    for number, line in top:
        fields = _split_fields(line)
        head = fields[0]
        upper = head.upper()
        if upper == ".TITLE":
            circuit.name = " ".join(fields[1:]) or circuit.name
            continue
        # Exact matches only: a mistyped directive (".MODELS",
        # ".PARAMS") must be reported, not silently skipped.
        if upper in (".END", ".MODEL", ".PARAM"):
            continue
        if upper.startswith("."):
            raise NetlistParseError(
                f"unsupported directive {head!r}", number, line)
        parser.add_card(fields, number, line, _Scope(env=env))
    return circuit
