"""The :class:`Circuit` builder.

A circuit is a named collection of elements over string-named nodes.  It
owns no mathematics: the MNA assembler consumes its element lists.  The
builder API is what examples and the netlist parser use::

    ckt = Circuit("rtd-divider")
    ckt.add_voltage_source("Vs", "in", "0", 1.0)
    ckt.add_resistor("R1", "in", "out", 50.0)
    ckt.add_device("X1", "out", "0", SchulmanRTD())
"""

from __future__ import annotations

from typing import Iterator

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    MosfetInstance,
    Resistor,
    TwoTerminalDeviceInstance,
    VoltageSource,
)
from repro.circuit.sources import Waveform
from repro.errors import CircuitError

#: Node names treated as the reference (ground) node.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "ground"})


def is_ground(node: str) -> bool:
    """Return True when *node* names the reference node."""
    return node in GROUND_NAMES


class Circuit:
    """Mutable netlist builder.

    Parameters
    ----------
    name:
        Human-readable circuit title, used in reports and reprs.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.resistors: list[Resistor] = []
        self.capacitors: list[Capacitor] = []
        self.inductors: list[Inductor] = []
        self.voltage_sources: list[VoltageSource] = []
        self.current_sources: list[CurrentSource] = []
        self.devices: list[TwoTerminalDeviceInstance] = []
        self.mosfets: list[MosfetInstance] = []
        self._names: set[str] = set()
        self._node_order: list[str] = []
        self._node_seen: set[str] = set()

    # ------------------------------------------------------------------
    # Node bookkeeping
    # ------------------------------------------------------------------

    def _register(self, element: Element) -> None:
        if element.name in self._names:
            raise CircuitError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        for node in element.nodes:
            if not is_ground(node) and node not in self._node_seen:
                self._node_seen.add(node)
                self._node_order.append(node)

    @property
    def nodes(self) -> tuple[str, ...]:
        """Non-ground node names in first-appearance order."""
        return tuple(self._node_order)

    @property
    def num_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_order)

    def node_index(self, node: str) -> int:
        """Index of *node* into the MNA voltage vector; ``-1`` for ground."""
        if is_ground(node):
            return -1
        try:
            return self._node_order.index(node)
        except ValueError:
            raise CircuitError(
                f"unknown node {node!r} in circuit {self.name!r}") from None

    def has_node(self, node: str) -> bool:
        """Return True when *node* exists (ground always exists)."""
        return is_ground(node) or node in self._node_seen

    # ------------------------------------------------------------------
    # Element builders
    # ------------------------------------------------------------------

    def add_resistor(self, name: str, n1: str, n2: str,
                     resistance: float) -> Resistor:
        """Add a linear resistor and return it."""
        element = Resistor(name, n1, n2, resistance)
        self._register(element)
        self.resistors.append(element)
        return element

    def add_capacitor(self, name: str, n1: str, n2: str, capacitance: float,
                      initial_voltage: float | None = None) -> Capacitor:
        """Add a linear capacitor and return it."""
        element = Capacitor(name, n1, n2, capacitance, initial_voltage)
        self._register(element)
        self.capacitors.append(element)
        return element

    def add_inductor(self, name: str, n1: str, n2: str, inductance: float,
                     initial_current: float = 0.0) -> Inductor:
        """Add a linear inductor and return it."""
        element = Inductor(name, n1, n2, inductance, initial_current)
        self._register(element)
        self.inductors.append(element)
        return element

    def add_voltage_source(self, name: str, positive: str, negative: str,
                           waveform: Waveform | float) -> VoltageSource:
        """Add an independent voltage source and return it."""
        element = VoltageSource(name, positive, negative, waveform)
        self._register(element)
        self.voltage_sources.append(element)
        return element

    def add_current_source(self, name: str, positive: str, negative: str,
                           waveform: Waveform | float) -> CurrentSource:
        """Add an independent current source and return it."""
        element = CurrentSource(name, positive, negative, waveform)
        self._register(element)
        self.current_sources.append(element)
        return element

    def add_device(self, name: str, anode: str, cathode: str, model,
                   multiplicity: float = 1.0) -> TwoTerminalDeviceInstance:
        """Add a nonlinear two-terminal device (RTD, diode, nanowire...)."""
        element = TwoTerminalDeviceInstance(
            name, anode, cathode, model, multiplicity)
        self._register(element)
        self.devices.append(element)
        return element

    def add_mosfet(self, name: str, drain: str, gate: str, source: str,
                   model) -> MosfetInstance:
        """Add a level-1 MOSFET instance."""
        element = MosfetInstance(name, drain, gate, source, model)
        self._register(element)
        self.mosfets.append(element)
        return element

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def elements(self) -> Iterator[Element]:
        """Iterate over every element in insertion-category order."""
        for group in (self.resistors, self.capacitors, self.inductors,
                      self.voltage_sources, self.current_sources,
                      self.devices, self.mosfets):
            yield from group

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        for candidate in self.elements():
            if candidate.name == name:
                return candidate
        raise CircuitError(f"no element named {name!r} in {self.name!r}")

    @property
    def num_elements(self) -> int:
        """Total number of elements."""
        return sum(1 for _ in self.elements())

    def nonlinear(self) -> bool:
        """Return True when the circuit contains nonlinear devices."""
        return bool(self.devices or self.mosfets)

    def validate(self) -> None:
        """Raise :class:`CircuitError` on structural problems.

        Checks: at least one element; a ground connection somewhere; and
        no node whose *only* attachment is a single capacitor terminal —
        such a node has an all-zero conductance row, which makes every DC
        operating-point solve singular.  (A node ending in a single
        resistor is electrically a dead end but still solvable, so it is
        allowed.)
        """
        if self.num_elements == 0:
            raise CircuitError(f"circuit {self.name!r} is empty")
        touches: dict[str, int] = {}
        grounded = False
        for element in self.elements():
            for node in element.nodes:
                if is_ground(node):
                    grounded = True
                else:
                    touches[node] = touches.get(node, 0) + 1
        if not grounded:
            raise CircuitError(
                f"circuit {self.name!r} has no ground ('0') connection")
        capacitor_touches: dict[str, int] = {}
        for element in self.capacitors:
            for node in element.nodes:
                if not is_ground(node):
                    capacitor_touches[node] = (
                        capacitor_touches.get(node, 0) + 1)
        dangling = sorted(
            node for node, count in touches.items()
            if count == 1 and capacitor_touches.get(node, 0) == 1)
        if dangling:
            raise CircuitError(
                f"circuit {self.name!r} has dangling node(s): {dangling}")

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, nodes={self.num_nodes}, "
                f"elements={self.num_elements})")
