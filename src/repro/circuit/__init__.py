"""Circuit description substrate: elements, waveform sources, netlists.

The central type is :class:`~repro.circuit.netlist.Circuit`, a builder that
collects elements and device instances and hands them to the MNA assembler.
Textual SPICE-like netlists are handled by :mod:`repro.circuit.parser`.
"""

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    MosfetInstance,
    Resistor,
    TwoTerminalDeviceInstance,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, GROUND_NAMES
from repro.circuit.sources import (
    DC,
    Clock,
    PiecewiseLinear,
    Pulse,
    Sine,
    Step,
    Waveform,
)

__all__ = [
    "Capacitor",
    "Circuit",
    "Clock",
    "CurrentSource",
    "DC",
    "Element",
    "GROUND_NAMES",
    "Inductor",
    "MosfetInstance",
    "PiecewiseLinear",
    "Pulse",
    "Resistor",
    "Sine",
    "Step",
    "TwoTerminalDeviceInstance",
    "VoltageSource",
    "Waveform",
]
