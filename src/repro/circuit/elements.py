"""Circuit element records.

Elements are thin, validated data holders; all numerical behaviour lives in
the MNA assembler (:mod:`repro.mna`) and the device models
(:mod:`repro.devices`).  Node names are strings; ``"0"`` and ``"gnd"`` are
ground.

Two nonlinear instance types exist:

:class:`TwoTerminalDeviceInstance`
    Wraps any two-terminal device model (RTD, diode, nanowire...) exposing
    ``current(v)`` / ``differential_conductance(v)`` / ``chord_conductance(v)``.
:class:`MosfetInstance`
    A three-terminal level-1 MOSFET.  SWEC treats it as a gate-controlled
    drain-source conductance (paper eqs. 2-3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.circuit.sources import Waveform, as_waveform
from repro.errors import CircuitError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.devices.base import TwoTerminalDevice
    from repro.devices.mosfet import MosfetModel


def _check_positive(name: str, quantity: str, value: float) -> float:
    value = float(value)
    if value <= 0.0 or value != value:  # NaN check
        raise CircuitError(
            f"{name}: {quantity} must be positive and finite, got {value!r}")
    return value


class Element:
    """Base class for all circuit elements.

    Attributes
    ----------
    name:
        Unique instance name (``"R1"``, ``"Vdd"``...).
    nodes:
        Tuple of node names this element connects to, in stamp order.
    """

    def __init__(self, name: str, nodes: tuple[str, ...]) -> None:
        if not name:
            raise CircuitError("element name must be non-empty")
        if any(not n for n in nodes):
            raise CircuitError(f"{name}: node names must be non-empty")
        self.name = name
        self.nodes = nodes

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes!r})"


class Resistor(Element):
    """Linear resistor between two nodes."""

    def __init__(self, name: str, n1: str, n2: str, resistance: float) -> None:
        super().__init__(name, (n1, n2))
        self.resistance = _check_positive(name, "resistance", resistance)

    @property
    def conductance(self) -> float:
        """Conductance ``1/R`` in siemens."""
        return 1.0 / self.resistance


class Capacitor(Element):
    """Linear capacitor between two nodes, with optional initial voltage."""

    def __init__(self, name: str, n1: str, n2: str, capacitance: float,
                 initial_voltage: float | None = None) -> None:
        super().__init__(name, (n1, n2))
        self.capacitance = _check_positive(name, "capacitance", capacitance)
        self.initial_voltage = (
            None if initial_voltage is None else float(initial_voltage))


class Inductor(Element):
    """Linear inductor; contributes a branch-current unknown to the MNA."""

    def __init__(self, name: str, n1: str, n2: str, inductance: float,
                 initial_current: float = 0.0) -> None:
        super().__init__(name, (n1, n2))
        self.inductance = _check_positive(name, "inductance", inductance)
        self.initial_current = float(initial_current)


class VoltageSource(Element):
    """Independent voltage source; contributes a branch-current unknown."""

    def __init__(self, name: str, positive: str, negative: str,
                 waveform: Waveform | float) -> None:
        super().__init__(name, (positive, negative))
        self.waveform = as_waveform(waveform)

    def value(self, t: float) -> float:
        """Source voltage at time *t*."""
        return self.waveform.value(t)

    def slope(self, t: float) -> float:
        """Source time derivative at time *t*."""
        return self.waveform.slope(t)


class CurrentSource(Element):
    """Independent current source, flowing from *positive* to *negative*
    through the source (i.e. it pushes current into *negative*'s node)."""

    def __init__(self, name: str, positive: str, negative: str,
                 waveform: Waveform | float) -> None:
        super().__init__(name, (positive, negative))
        self.waveform = as_waveform(waveform)

    def value(self, t: float) -> float:
        """Source current at time *t*."""
        return self.waveform.value(t)

    def slope(self, t: float) -> float:
        """Source time derivative at time *t*."""
        return self.waveform.slope(t)


class TwoTerminalDeviceInstance(Element):
    """A nonlinear two-terminal device placed between *anode* and *cathode*.

    The voltage across the device is ``V(anode) - V(cathode)`` and positive
    current flows from anode to cathode through the device.  *multiplicity*
    scales the current (parallel devices), matching SPICE's ``M=`` factor.
    """

    def __init__(self, name: str, anode: str, cathode: str,
                 model: "TwoTerminalDevice", multiplicity: float = 1.0) -> None:
        super().__init__(name, (anode, cathode))
        if multiplicity <= 0.0:
            raise CircuitError(
                f"{name}: multiplicity must be positive, got {multiplicity!r}")
        self.model = model
        self.multiplicity = float(multiplicity)

    @property
    def anode(self) -> str:
        return self.nodes[0]

    @property
    def cathode(self) -> str:
        return self.nodes[1]

    def current(self, voltage: float) -> float:
        """Device current at branch *voltage*."""
        return self.multiplicity * self.model.current(voltage)

    def current_many(self, voltages):
        """Vectorized device current over an array of branch voltages."""
        return self.multiplicity * self.model.current_many(voltages)

    def differential_conductance(self, voltage: float) -> float:
        """Small-signal conductance ``dI/dV`` — negative inside NDR."""
        return self.multiplicity * self.model.differential_conductance(voltage)

    def chord_conductance(self, voltage: float) -> float:
        """SWEC chord conductance ``I(V)/V`` (paper Section 3.2)."""
        return self.multiplicity * self.model.chord_conductance(voltage)

    def chord_conductance_derivative(self, voltage: float) -> float:
        """``d(I/V)/dV`` used by the Taylor predictor (paper eq. 7)."""
        return self.multiplicity * self.model.chord_conductance_derivative(
            voltage)


class MosfetInstance(Element):
    """Level-1 MOSFET with nodes ``(drain, gate, source)``.

    The gate draws no DC current; the drain-source branch carries
    ``Ids(Vgs, Vds)``.  Negative ``Vds`` is handled by the model via
    source/drain symmetry.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 model: "MosfetModel") -> None:
        super().__init__(name, (drain, gate, source))
        self.model = model

    @property
    def drain(self) -> str:
        return self.nodes[0]

    @property
    def gate(self) -> str:
        return self.nodes[1]

    @property
    def source(self) -> str:
        return self.nodes[2]

    def current(self, vgs: float, vds: float) -> float:
        """Drain-source current at the given terminal voltages."""
        return self.model.current(vgs, vds)

    def chord_conductance(self, vgs: float, vds: float) -> float:
        """SWEC equivalent conductance ``Ids/Vds`` (paper eq. 3)."""
        return self.model.chord_conductance(vgs, vds)

    def partials(self, vgs: float, vds: float) -> tuple[float, float]:
        """Return ``(gm, gds)`` partial derivatives for Newton baselines."""
        return self.model.partials(vgs, vds)
