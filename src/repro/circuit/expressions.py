"""Arithmetic expression evaluation for ``.param`` netlists.

Netlist parameter values and ``{...}`` substitutions are arithmetic
expressions over previously defined parameters::

    .param rload=4.7k gain=2
    R1 in out {rload * gain}

Expressions support ``+ - * / // % **``, unary sign, parentheses, a
small set of math functions (``sqrt``, ``exp``, ``log``, ``log10``,
``sin``, ``cos``, ``tan``, ``abs``, ``min``, ``max``, ``floor``,
``ceil``), the constant ``pi``, and SPICE engineering suffixes on
numeric literals (``4.7k`` is ``4700.0``).  Evaluation is AST-based —
no :func:`eval`, no attribute access, no subscripts — so untrusted
netlists cannot execute code.
"""

from __future__ import annotations

import ast
import math
import re

__all__ = ["ExpressionError", "evaluate"]


class ExpressionError(ValueError):
    """An expression failed to parse or evaluate.

    The netlist parser wraps this into a
    :class:`~repro.errors.NetlistParseError` carrying the line number.
    """


#: Functions callable from expressions, by name.
FUNCTIONS: dict[str, object] = {
    "abs": abs,
    "min": min,
    "max": max,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "log10": math.log10,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "floor": math.floor,
    "ceil": math.ceil,
}

#: Constants available without definition.
CONSTANTS: dict[str, float] = {"pi": math.pi}

_BINARY = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
}

_UNARY = {
    ast.UAdd: lambda a: a,
    ast.USub: lambda a: -a,
}

# A numeric literal with a trailing engineering suffix ("4.7k",
# "10pF").  The lookbehind keeps identifiers like "r2k" intact: the
# digits must not continue a word.
_SUFFIXED_NUMBER = re.compile(
    r"(?<![\w.])((?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)([a-zA-Z]\w*)")


def _desuffix(expression: str) -> str:
    """Rewrite engineering-suffixed literals as plain floats."""
    from repro.units import parse_value

    def replace(match: re.Match) -> str:
        return repr(parse_value(match.group(0)))

    return _SUFFIXED_NUMBER.sub(replace, expression)


def _eval_node(node: ast.AST, env: dict, expression: str) -> float:
    if isinstance(node, ast.Expression):
        return _eval_node(node.body, env, expression)
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (int, float)):
            return float(node.value)
        raise ExpressionError(
            f"non-numeric literal {node.value!r} in {expression!r}")
    if isinstance(node, ast.Name):
        if node.id in env:
            return float(env[node.id])
        if node.id in CONSTANTS:
            return CONSTANTS[node.id]
        raise ExpressionError(
            f"undefined parameter {node.id!r} in {expression!r}")
    if isinstance(node, ast.BinOp) and type(node.op) in _BINARY:
        left = _eval_node(node.left, env, expression)
        right = _eval_node(node.right, env, expression)
        try:
            return float(_BINARY[type(node.op)](left, right))
        except ZeroDivisionError:
            raise ExpressionError(
                f"division by zero in {expression!r}") from None
    if isinstance(node, ast.UnaryOp) and type(node.op) in _UNARY:
        return _UNARY[type(node.op)](_eval_node(node.operand, env,
                                                expression))
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.keywords:
            raise ExpressionError(
                f"unsupported call syntax in {expression!r}")
        function = FUNCTIONS.get(node.func.id)
        if function is None:
            raise ExpressionError(
                f"unknown function {node.func.id!r} in {expression!r}")
        arguments = [_eval_node(arg, env, expression) for arg in node.args]
        try:
            return float(function(*arguments))
        except (TypeError, ValueError) as exc:
            raise ExpressionError(
                f"bad call to {node.func.id}(): {exc}") from exc
    raise ExpressionError(
        f"unsupported syntax {type(node).__name__!r} in {expression!r}")


def evaluate(expression: str, env: dict | None = None) -> float:
    """Evaluate *expression* against the parameter mapping *env*.

    >>> evaluate("2 * rload", {"rload": 4700.0})
    9400.0
    >>> evaluate("sqrt(4) + 1k")
    1002.0

    Raises :class:`ExpressionError` on syntax errors, undefined
    parameters, or unsupported constructs.
    """
    text = expression.strip()
    if not text:
        raise ExpressionError("empty expression")
    try:
        tree = ast.parse(_desuffix(text), mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(
            f"cannot parse expression {expression!r}: {exc.msg}") from exc
    return _eval_node(tree, dict(env or {}), expression)
