"""Time-domain waveforms for independent sources.

Every waveform exposes two methods:

``value(t)``
    The source value (volts or amperes) at time ``t``.
``slope(t)``
    The time derivative at ``t``.  The SWEC adaptive step controller uses
    the input slope ``alpha = dV_in/dt`` in its error bound (paper eq. 11),
    so slopes are first-class citizens rather than finite differences.

Waveforms are immutable; building a new stimulus means building a new
object.  All of them are plain Python over floats — they are evaluated once
per accepted time point, never in an inner loop.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence


class Waveform:
    """Base class for source waveforms."""

    def value(self, t: float) -> float:
        """Return the waveform value at time *t*."""
        raise NotImplementedError

    def slope(self, t: float) -> float:
        """Return the time derivative at time *t*."""
        raise NotImplementedError

    def breakpoints(self) -> tuple[float, ...]:
        """Return times where the derivative is discontinuous.

        Transient engines refuse to step across a breakpoint: they shorten
        the step to land exactly on it, which keeps sharp edges sharp.
        """
        return ()


class DC(Waveform):
    """Constant source.

    >>> DC(5.0).value(1e-9)
    5.0
    """

    def __init__(self, level: float) -> None:
        self.level = float(level)

    def value(self, t: float) -> float:
        return self.level

    def slope(self, t: float) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"DC({self.level!r})"


class Step(Waveform):
    """Ideal-ish step from *initial* to *final* at *time* over *rise*.

    A zero *rise* is replaced with a very small ramp so the slope stays
    finite (the adaptive controller divides by it).
    """

    _MIN_RISE = 1e-15

    def __init__(self, initial: float, final: float, time: float,
                 rise: float = 0.0) -> None:
        self.initial = float(initial)
        self.final = float(final)
        self.time = float(time)
        self.rise = max(float(rise), self._MIN_RISE)

    def value(self, t: float) -> float:
        if t <= self.time:
            return self.initial
        if t >= self.time + self.rise:
            return self.final
        fraction = (t - self.time) / self.rise
        return self.initial + (self.final - self.initial) * fraction

    def slope(self, t: float) -> float:
        if self.time < t < self.time + self.rise:
            return (self.final - self.initial) / self.rise
        return 0.0

    def breakpoints(self) -> tuple[float, ...]:
        return (self.time, self.time + self.rise)

    def __repr__(self) -> str:
        return (f"Step({self.initial!r}, {self.final!r}, time={self.time!r}, "
                f"rise={self.rise!r})")


class Pulse(Waveform):
    """SPICE-style periodic pulse.

    Parameters mirror the SPICE ``PULSE(V1 V2 TD TR TF PW PER)`` source:
    initial value, pulsed value, delay, rise time, fall time, pulse width
    and period.  Zero rise/fall times are nudged to a tiny positive value.
    """

    _MIN_EDGE = 1e-15

    def __init__(self, initial: float, pulsed: float, delay: float = 0.0,
                 rise: float = 0.0, fall: float = 0.0,
                 width: float = 0.0, period: float = math.inf) -> None:
        if width < 0.0:
            raise ValueError(f"pulse width must be >= 0, got {width!r}")
        self.initial = float(initial)
        self.pulsed = float(pulsed)
        self.delay = float(delay)
        self.rise = max(float(rise), self._MIN_EDGE)
        self.fall = max(float(fall), self._MIN_EDGE)
        self.width = float(width)
        self.period = float(period)
        cycle = self.rise + self.width + self.fall
        if self.period < cycle:
            raise ValueError(
                f"period {period!r} shorter than rise+width+fall {cycle!r}")

    def _phase(self, t: float) -> float:
        """Time within the current cycle, after the initial delay."""
        local = t - self.delay
        if local < 0.0 or not math.isfinite(self.period):
            return local
        return local % self.period

    def value(self, t: float) -> float:
        phase = self._phase(t)
        if phase < 0.0:
            return self.initial
        if phase < self.rise:
            return self.initial + (self.pulsed - self.initial) * phase / self.rise
        if phase < self.rise + self.width:
            return self.pulsed
        if phase < self.rise + self.width + self.fall:
            fraction = (phase - self.rise - self.width) / self.fall
            return self.pulsed + (self.initial - self.pulsed) * fraction
        return self.initial

    def slope(self, t: float) -> float:
        phase = self._phase(t)
        if 0.0 < phase < self.rise:
            return (self.pulsed - self.initial) / self.rise
        start_fall = self.rise + self.width
        if start_fall < phase < start_fall + self.fall:
            return (self.initial - self.pulsed) / self.fall
        return 0.0

    def breakpoints(self) -> tuple[float, ...]:
        edges = (0.0, self.rise, self.rise + self.width,
                 self.rise + self.width + self.fall)
        if not math.isfinite(self.period):
            return tuple(self.delay + e for e in edges)
        # One period's worth; engines re-fold periodic breakpoints.
        return tuple(self.delay + e for e in edges)

    def periodic_breakpoints(self, t_stop: float) -> tuple[float, ...]:
        """All breakpoints in ``[0, t_stop]``, unrolled over periods."""
        base = (0.0, self.rise, self.rise + self.width,
                self.rise + self.width + self.fall)
        points: list[float] = []
        if not math.isfinite(self.period):
            return tuple(p for p in (self.delay + e for e in base)
                         if 0.0 <= p <= t_stop)
        k = 0
        while self.delay + k * self.period <= t_stop:
            for e in base:
                p = self.delay + k * self.period + e
                if 0.0 <= p <= t_stop:
                    points.append(p)
            k += 1
        return tuple(points)

    def __repr__(self) -> str:
        return (f"Pulse({self.initial!r}, {self.pulsed!r}, "
                f"delay={self.delay!r}, rise={self.rise!r}, "
                f"fall={self.fall!r}, width={self.width!r}, "
                f"period={self.period!r})")


class Clock(Pulse):
    """Square clock: 50% duty cycle, given period, low/high levels.

    Convenience wrapper over :class:`Pulse` used by the flip-flop
    experiments (paper Fig. 9(b)).
    """

    def __init__(self, low: float, high: float, period: float,
                 rise: float = 0.0, delay: float = 0.0) -> None:
        if period <= 0.0:
            raise ValueError(f"clock period must be positive, got {period!r}")
        edge = max(rise, period * 1e-4)
        width = period / 2.0 - edge
        if width <= 0.0:
            raise ValueError("clock edges longer than half the period")
        super().__init__(low, high, delay=delay, rise=edge, fall=edge,
                         width=width, period=period)


class Sine(Waveform):
    """Sinusoidal source ``offset + amplitude * sin(2 pi f (t - delay))``."""

    def __init__(self, offset: float, amplitude: float, frequency: float,
                 delay: float = 0.0) -> None:
        if frequency <= 0.0:
            raise ValueError(f"frequency must be positive, got {frequency!r}")
        self.offset = float(offset)
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)
        self.delay = float(delay)

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        phase = 2.0 * math.pi * self.frequency * (t - self.delay)
        return self.offset + self.amplitude * math.sin(phase)

    def slope(self, t: float) -> float:
        if t < self.delay:
            return 0.0
        omega = 2.0 * math.pi * self.frequency
        return self.amplitude * omega * math.cos(omega * (t - self.delay))

    def breakpoints(self) -> tuple[float, ...]:
        return (self.delay,)

    def __repr__(self) -> str:
        return (f"Sine({self.offset!r}, {self.amplitude!r}, "
                f"{self.frequency!r}, delay={self.delay!r})")


class PiecewiseLinear(Waveform):
    """Piecewise-linear waveform through ``(time, value)`` points.

    Before the first point the waveform holds the first value; after the
    last point it holds the last value.

    >>> w = PiecewiseLinear([(0.0, 0.0), (1.0, 2.0)])
    >>> w.value(0.5)
    1.0
    """

    def __init__(self, points: Sequence[tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("PWL waveform needs at least two points")
        times = [float(t) for t, _ in points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")
        self.times = tuple(times)
        self.values = tuple(float(v) for _, v in points)

    def value(self, t: float) -> float:
        if t <= self.times[0]:
            return self.values[0]
        if t >= self.times[-1]:
            return self.values[-1]
        idx = bisect.bisect_right(self.times, t) - 1
        t0, t1 = self.times[idx], self.times[idx + 1]
        v0, v1 = self.values[idx], self.values[idx + 1]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def slope(self, t: float) -> float:
        if t <= self.times[0] or t >= self.times[-1]:
            return 0.0
        idx = bisect.bisect_right(self.times, t) - 1
        t0, t1 = self.times[idx], self.times[idx + 1]
        v0, v1 = self.values[idx], self.values[idx + 1]
        return (v1 - v0) / (t1 - t0)

    def breakpoints(self) -> tuple[float, ...]:
        return self.times

    def __repr__(self) -> str:
        pts = list(zip(self.times, self.values))
        return f"PiecewiseLinear({pts!r})"


def waveform_state_key(waveform: Waveform):
    """Structural deduplication key for waveform evaluations.

    Instances built by independent builder calls carry distinct but
    value-identical waveform objects (K ``fet_rtd_inverter()`` calls
    make K equal ``Pulse``\\ s); keying on ``(type, attribute state)``
    lets batched engines share one evaluation per time point.
    Waveforms with unhashable state fall back to object identity —
    never wrong, just unshared.
    """
    try:
        state = tuple(sorted(vars(waveform).items()))
        hash(state)
    except TypeError:
        return ("id", id(waveform))
    return (type(waveform), state)


def as_waveform(value: "Waveform | float | int") -> Waveform:
    """Coerce a bare number to a :class:`DC` waveform.

    Circuit-building helpers accept either a waveform or a plain number;
    this keeps ``circuit.add_voltage_source("V1", "in", "0", 5.0)`` terse.
    """
    if isinstance(value, Waveform):
        return value
    return DC(float(value))
