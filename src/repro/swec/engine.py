"""The SWEC transient engine (paper Sections 3.2-3.4).

One backward-Euler linear solve per accepted time point:

.. math::

    \\left(G_{eq}(t_n) + \\tfrac{C}{h_n}\\right) x_{n+1}
        = b(t_{n+1}) + \\tfrac{C}{h_n}\\, x_n

``G_eq`` holds the step-wise equivalent (chord) conductances of every
nonlinear device, frozen across the step — that is the method's defining
move.  Because every chord is non-negative, the matrix stays an M-matrix-
like diffusive operator and the march cannot oscillate the way
Newton-Raphson does on NDR devices.

:class:`SwecTransient` is the K = 1 slice of the unified
:class:`~repro.core.stepper.LinearStepper` march — the same loop that
drives :class:`~repro.swec.ensemble.SwecEnsembleTransient` — with the
solver chosen through the :mod:`repro.core.backends` registry
(``dense`` by default; ``sparse``, ``stack`` or ``auto`` via
:attr:`SwecOptions.backend`).

A small safety net beyond the paper: an optional per-step voltage-change
limit rejects a step and halves ``h`` when the solution jumps more than
``dv_limit`` — this matters only for the stiff latch circuits and is
disabled by setting ``dv_limit=None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.waveforms import EnsembleTransientResult, TransientResult
from repro.circuit.netlist import Circuit
from repro.core.backends import available_backends
from repro.core.stepper import LinearStepper
from repro.errors import AnalysisError
from repro.swec.timestep import AdaptiveStepController, StepControlOptions


@dataclass
class SwecOptions:
    """Engine tunables.

    Attributes
    ----------
    step:
        Adaptive step-control options (paper eqs. 10-12).
    use_predictor:
        Apply the eq. (5) Taylor predictor to the chord conductances.
    initialize_dc:
        Solve the chord fixed point at ``t = 0`` for a consistent initial
        state instead of starting from all-zeros.
    dv_limit:
        Optional max node-voltage change per step; exceeding it rejects
        the step and halves ``h``.  ``None`` disables rejection (pure
        paper behaviour).
    max_points:
        Hard cap on accepted points, guarding against ``h_min`` stalls.
    trace_conductance:
        When True, record the equivalent conductances actually stamped
        for the step ending at each accepted point (used by the Fig. 5
        bench).  The trace copies one ``n_devices`` vector per
        accepted point (``8 * T * n_devices`` bytes); under a K-wide
        ensemble that cost would multiply by K, so
        :class:`~repro.swec.ensemble.SwecEnsembleTransient` requires
        an explicit per-instance ``trace_instances`` selection.
    factor_rtol:
        Factorization-reuse knob.  ``None`` (default) refactorizes the
        system matrix at every solve, the pure paper behaviour.  A float
        enables the reuse cache on the ``dense`` and ``sparse``
        backends: when the stamped ``G + C/h`` is unchanged within this
        relative tolerance since the last factorization (common in
        slowly-varying regions and linear circuits at a settled step
        size), the cached LU is reused and only a back-substitution is
        paid.  ``0.0`` reuses only on bitwise-identical matrices; small
        values like ``1e-9`` trade a bounded matrix perturbation for
        fewer factorizations.  Skipped factorizations are reported in
        ``TransientResult.factor_reuses``.  The ``stack`` backend
        refactors unconditionally (batched LAPACK fuses factor+solve).
    backend:
        Solver backend name from the :mod:`repro.core.backends`
        registry — ``"dense"``, ``"sparse"``, ``"stack"`` or
        ``"auto"`` (select by system size and fill ratio).  ``None``
        keeps each engine's historical default: ``dense`` for
        :class:`SwecTransient`, ``stack`` for
        :class:`~repro.swec.ensemble.SwecEnsembleTransient` — unless
        the legacy ``matrix_format="sparse"`` alias forces ``sparse``.
    fallback:
        When True, wrap the resolved backend in the
        :class:`~repro.core.FallbackBackend` degradation chain
        (``sparse`` → ``dense``, ``stack`` → ``dense``): a
        factorization failure switches engines and repeats the solve
        instead of aborting the run.  Degradations are recorded in
        ``result.fallback_events`` and the final ``result.backend``.
        Off by default — the pure paper behaviour raises
        :class:`~repro.errors.SingularMatrixError`.
    """

    step: StepControlOptions = field(default_factory=StepControlOptions)
    use_predictor: bool = True
    initialize_dc: bool = True
    dv_limit: float | None = None
    max_points: int = 2_000_000
    trace_conductance: bool = False
    factor_rtol: float | None = None
    #: Integration formula: ``"be"`` (backward Euler, the paper's choice)
    #: or ``"trap"`` (trapezoidal; second-order, used by the ablation).
    method: str = "be"
    #: Legacy alias kept for compatibility: ``"sparse"`` forces the
    #: sparse backend.  Prefer the ``backend`` knob.
    matrix_format: str = "dense"
    #: Solver backend registry name (or None for the engine default).
    backend: str | None = None
    #: Graceful degradation: fall back along sparse/stack -> dense on
    #: factorization failure instead of raising.
    fallback: bool = False

    def __post_init__(self) -> None:
        if self.method not in ("be", "trap"):
            raise ValueError(f"unknown method {self.method!r}")
        if self.matrix_format not in ("dense", "sparse"):
            raise ValueError(
                f"unknown matrix_format {self.matrix_format!r}")
        if self.factor_rtol is not None and self.factor_rtol < 0.0:
            raise ValueError(
                f"factor_rtol must be non-negative, got {self.factor_rtol!r}")
        if self.backend is not None and \
                self.backend not in available_backends():
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(available: {', '.join(available_backends())})")

    def resolved_backend(self) -> str | None:
        """Backend name to instantiate, or None for the engine default.

        The explicit ``backend`` knob wins; the legacy
        ``matrix_format="sparse"`` alias maps to ``"sparse"``.
        """
        if self.backend is not None:
            return self.backend
        if self.matrix_format == "sparse":
            return "sparse"
        return None


class SwecTransient:
    """Step-wise equivalent conductance transient simulator.

    The K = 1 slice of the unified lockstep march: construction builds
    a single-instance :class:`~repro.core.stepper.LinearStepper` on the
    resolved solver backend (``dense`` unless
    ``options.backend``/``matrix_format`` say otherwise), and
    :meth:`run`/:meth:`run_grid` adapt its ensemble result back to a
    scalar :class:`~repro.analysis.waveforms.TransientResult`.
    """

    def __init__(self, circuit: Circuit,
                 options: SwecOptions | None = None) -> None:
        self.circuit = circuit
        self.options = options or SwecOptions()
        trace = (0,) if self.options.trace_conductance else ()
        self._stepper = LinearStepper(
            [circuit], self.options, trace_instances=trace,
            default_backend="dense")
        self.system = self._stepper.system
        self.linearization = self._stepper.linearization
        self.controller: AdaptiveStepController = self._stepper.controller

    @property
    def backend_name(self) -> str:
        """Registry name of the resolved solver backend."""
        return self._stepper.backend_name

    # ------------------------------------------------------------------

    def _scalar_result(self,
                       ensemble: EnsembleTransientResult) -> TransientResult:
        """Collapse the K = 1 ensemble result to a scalar one."""
        result = TransientResult(self.system.circuit.nodes, engine="swec")
        for t, row in zip(ensemble.times, ensemble.states[0]):
            result.append(float(t), row)
        result.flops = ensemble.flops
        result.accepted_steps = ensemble.accepted_steps
        result.rejected_steps = ensemble.rejected_steps
        result.aborted = ensemble.aborted
        result.abort_reason = ensemble.abort_reason
        result.factor_reuses = ensemble.factor_reuses
        result.backend = getattr(ensemble, "backend", self.backend_name)
        result.fallback_events = list(getattr(ensemble, "fallback_events", ()))
        if self.options.trace_conductance:
            result.conductance_trace = [  # type: ignore[attr-defined]
                (t, g.copy())
                for t, g in ensemble.conductance_trace.get(0, [])]
        return result

    @staticmethod
    def _initial_states(initial_state) -> np.ndarray | None:
        if initial_state is None:
            return None
        states = np.asarray(initial_state, dtype=float)
        if states.ndim != 1:
            raise AnalysisError(
                f"initial state must be a 1-D vector, got shape "
                f"{states.shape}")
        return states

    # ------------------------------------------------------------------

    def run(self, t_stop: float,
            initial_state: np.ndarray | None = None) -> TransientResult:
        """Simulate from ``t = 0`` to *t_stop*; returns the waveforms."""
        return self._scalar_result(self._stepper.run(
            t_stop, initial_states=self._initial_states(initial_state)))

    def run_grid(self, times,
                 initial_state: np.ndarray | None = None) -> TransientResult:
        """March the implicit update on an explicit time grid.

        No adaptive control: the step sizes are exactly
        ``h_n = times[n+1] - times[n]``.  This is the per-instance
        reference :class:`~repro.swec.ensemble.SwecEnsembleTransient`
        is validated against, and the fixed-grid mode behind
        bit-reproducible stochastic ensembles.  Any solver backend
        applies.
        """
        return self._scalar_result(self._stepper.run_grid(
            times, initial_states=self._initial_states(initial_state)))

    # ------------------------------------------------------------------

    def device_current_waveform(self, result: TransientResult,
                                device_name: str) -> np.ndarray:
        """Current through a named two-terminal device over a result.

        Evaluated with the model's vectorized I-V law — one numpy pass
        over the whole waveform instead of a Python loop per point.
        """
        for k, device in enumerate(self.circuit.devices):
            if device.name == device_name:
                anode, cathode = self.system.device_terminals()[k]
                states = result.states
                zeros = np.zeros(states.shape[0])
                va = states[:, anode] if anode >= 0 else zeros
                vc = states[:, cathode] if cathode >= 0 else zeros
                return device.current_many(va - vc)
        raise AnalysisError(f"no device named {device_name!r}")
