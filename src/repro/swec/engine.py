"""The SWEC transient engine (paper Sections 3.2-3.4).

One backward-Euler linear solve per accepted time point:

.. math::

    \\left(G_{eq}(t_n) + \\tfrac{C}{h_n}\\right) x_{n+1}
        = b(t_{n+1}) + \\tfrac{C}{h_n}\\, x_n

``G_eq`` holds the step-wise equivalent (chord) conductances of every
nonlinear device, frozen across the step — that is the method's defining
move.  Because every chord is non-negative, the matrix stays an M-matrix-
like diffusive operator and the march cannot oscillate the way
Newton-Raphson does on NDR devices.

A small safety net beyond the paper: an optional per-step voltage-change
limit rejects a step and halves ``h`` when the solution jumps more than
``dv_limit`` — this matters only for the stiff latch circuits and is
disabled by setting ``dv_limit=None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.waveforms import TransientResult
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.mna.assembler import MnaSystem
from repro.mna.linsolve import CachedFactorization, LinearSolver
from repro.swec.conductance import SwecLinearization
from repro.swec.timestep import AdaptiveStepController, StepControlOptions


@dataclass
class SwecOptions:
    """Engine tunables.

    Attributes
    ----------
    step:
        Adaptive step-control options (paper eqs. 10-12).
    use_predictor:
        Apply the eq. (5) Taylor predictor to the chord conductances.
    initialize_dc:
        Solve the chord fixed point at ``t = 0`` for a consistent initial
        state instead of starting from all-zeros.
    dv_limit:
        Optional max node-voltage change per step; exceeding it rejects
        the step and halves ``h``.  ``None`` disables rejection (pure
        paper behaviour).
    max_points:
        Hard cap on accepted points, guarding against ``h_min`` stalls.
    trace_conductance:
        When True, record the equivalent conductances actually stamped
        for the step ending at each accepted point (used by the Fig. 5
        bench).  The trace copies one ``n_devices`` vector per
        accepted point (``8 * T * n_devices`` bytes); under a K-wide
        ensemble that cost would multiply by K, so
        :class:`~repro.swec.ensemble.SwecEnsembleTransient` requires
        an explicit per-instance ``trace_instances`` selection.
    factor_rtol:
        Factorization-reuse knob.  ``None`` (default) refactorizes the
        system matrix at every solve, the pure paper behaviour.  A float
        enables the reuse cache: when the stamped ``G + C/h`` is
        unchanged within this relative tolerance since the last
        factorization (common in slowly-varying regions and linear
        circuits at a settled step size), the cached LU is reused and
        only a back-substitution is paid.  ``0.0`` reuses only on
        bitwise-identical matrices; small values like ``1e-9`` trade a
        bounded matrix perturbation for fewer factorizations.  Skipped
        factorizations are reported in ``TransientResult.factor_reuses``.
    """

    step: StepControlOptions = field(default_factory=StepControlOptions)
    use_predictor: bool = True
    initialize_dc: bool = True
    dv_limit: float | None = None
    max_points: int = 2_000_000
    trace_conductance: bool = False
    factor_rtol: float | None = None
    #: Integration formula: ``"be"`` (backward Euler, the paper's choice)
    #: or ``"trap"`` (trapezoidal; second-order, used by the ablation).
    method: str = "be"
    #: ``"dense"`` LAPACK solves, or ``"sparse"`` SuperLU for the grid-
    #: scale workloads.
    matrix_format: str = "dense"

    def __post_init__(self) -> None:
        if self.method not in ("be", "trap"):
            raise ValueError(f"unknown method {self.method!r}")
        if self.matrix_format not in ("dense", "sparse"):
            raise ValueError(
                f"unknown matrix_format {self.matrix_format!r}")
        if self.factor_rtol is not None and self.factor_rtol < 0.0:
            raise ValueError(
                f"factor_rtol must be non-negative, got {self.factor_rtol!r}")


class SwecTransient:
    """Step-wise equivalent conductance transient simulator."""

    def __init__(self, circuit: Circuit,
                 options: SwecOptions | None = None) -> None:
        self.circuit = circuit
        self.options = options or SwecOptions()
        self.system = MnaSystem(circuit)
        self.linearization = SwecLinearization(
            self.system, use_predictor=self.options.use_predictor)
        self.controller = AdaptiveStepController(self.system,
                                                 self.options.step)
        self._g_base = self.system.conductance_base()
        self._c_matrix = self.system.capacitance_matrix()

    # ------------------------------------------------------------------

    def _dc_initialize(self, x: np.ndarray, result: TransientResult,
                       t: float = 0.0, max_iter: int = 200,
                       tol: float = 1e-9) -> np.ndarray:
        """Chord-conductance fixed point at time *t* (DC operating point)."""
        solver = LinearSolver(result.flops)
        b = self.system.source_vector(t)
        damping = 1.0
        prev_delta = np.inf
        for _ in range(max_iter):
            g = self.linearization.conductance_matrix(
                self._g_base, x, flops=result.flops)
            solver.factor(g)
            x_new = solver.solve(b)
            delta = float(np.max(np.abs(x_new - x))) if x.size else 0.0
            if delta > prev_delta and damping > 0.1:
                damping *= 0.5
            prev_delta = delta
            x = x + damping * (x_new - x)
            if delta < tol:
                break
        return x

    # ------------------------------------------------------------------

    def run(self, t_stop: float,
            initial_state: np.ndarray | None = None) -> TransientResult:
        """Simulate from ``t = 0`` to *t_stop*; returns the waveforms."""
        if t_stop <= 0.0:
            raise AnalysisError(f"t_stop must be positive, got {t_stop!r}")
        opts = self.options
        system = self.system
        result = TransientResult(system.circuit.nodes, engine="swec")
        if opts.trace_conductance:
            result.conductance_trace = []  # type: ignore[attr-defined]

        x = (system.initial_state() if initial_state is None
             else np.array(initial_state, dtype=float, copy=True))
        if x.shape != (system.size,):
            raise AnalysisError(
                f"initial state must have shape ({system.size},), "
                f"got {x.shape}")
        if opts.initialize_dc and initial_state is None:
            x = self._dc_initialize(x, result)

        use_sparse = opts.matrix_format == "sparse"
        if use_sparse:
            from repro.mna.sparse import SparseOperators, SparseSolver
            operators = SparseOperators(system)
            solver = SparseSolver(result.flops)
            c = operators.c_matrix
        else:
            operators = None
            solver = LinearSolver(result.flops)
            c = self._c_matrix
            # Pre-allocated per-step buffers: the stamped G, the system
            # matrix A, the C/h scale, the RHS and two dot scratches.
            g_buf = np.empty_like(self._g_base)
            a_buf = np.empty_like(self._g_base)
            ch_buf = np.empty_like(self._g_base)
            rhs_buf = np.empty(system.size)
            b_buf = np.empty(system.size)
            tmp_buf = np.empty(system.size)
        if opts.factor_rtol is not None:
            solver = CachedFactorization(solver, opts.factor_rtol)
        trapezoidal = opts.method == "trap"

        t = 0.0
        result.append(t, x)
        h = self.controller.initial_step(t_stop)
        h_prev: float | None = None
        prev_x: np.ndarray | None = None

        while t < t_stop * (1.0 - 1e-12):
            if len(result) >= opts.max_points:
                result.aborted = True
                result.abort_reason = (
                    f"max_points={opts.max_points} reached at t={t:.4g}")
                break

            # Equivalent conductances at t_n (with Taylor prediction).
            device_g = self.linearization.device_conductances(
                x, prev_x, h_prev, h, flops=result.flops)
            mosfet_g = self.linearization.mosfet_conductances(
                x, flops=result.flops)
            if use_sparse:
                g_data = operators.conductance_data(device_g, mosfet_g)
                g = operators.matrix_from_data(g_data)
            else:
                np.copyto(g_buf, self._g_base)
                self.linearization.stamp(g_buf, device_g, mosfet_g)
                g = g_buf

            # Adaptive step from the freshly stamped G (eq. 12).
            h = self.controller.next_step(t, h if h_prev is None else h_prev,
                                          g, t_stop)

            accepted = False
            while not accepted:
                if use_sparse:
                    a = operators.system_matrix_from_data(g_data, h,
                                                          trapezoidal)
                    if trapezoidal:
                        rhs = (0.5 * (self.system.source_vector(t)
                                      + self.system.source_vector(t + h))
                               + (c @ x) / h - 0.5 * (g @ x))
                    else:
                        rhs = self.system.source_vector(t + h) + (c @ x) / h
                else:
                    np.multiply(c, 1.0 / h, out=ch_buf)
                    np.dot(c, x, out=tmp_buf)
                    tmp_buf /= h
                    if trapezoidal:
                        np.multiply(g, 0.5, out=a_buf)
                        a_buf += ch_buf
                        rhs = self.system.source_vector(t, out=rhs_buf)
                        rhs += self.system.source_vector(t + h, out=b_buf)
                        rhs *= 0.5
                        rhs += tmp_buf
                        np.dot(g, x, out=tmp_buf)
                        tmp_buf *= 0.5
                        rhs -= tmp_buf
                    else:
                        np.add(g, ch_buf, out=a_buf)
                        rhs = self.system.source_vector(t + h, out=rhs_buf)
                        rhs += tmp_buf
                    a = a_buf
                solver.factor(a)
                x_new = solver.solve(rhs)
                if opts.dv_limit is not None:
                    dv = float(np.max(np.abs(
                        x_new[:system.num_nodes] - x[:system.num_nodes])))
                    if dv > opts.dv_limit and h > opts.step.h_min * 1.001:
                        result.rejected_steps += 1
                        h = max(h * 0.5, opts.step.h_min)
                        continue
                accepted = True

            prev_x, h_prev = x, h
            x = x_new
            t += h
            result.append(t, x)
            result.accepted_steps += 1
            if opts.trace_conductance:
                # Reuse the chords already computed (and flop-counted)
                # for this step instead of re-evaluating every device.
                result.conductance_trace.append(  # type: ignore[attr-defined]
                    (t, device_g.copy()))

        if isinstance(solver, CachedFactorization):
            result.factor_reuses = solver.reuses
        return result

    # ------------------------------------------------------------------

    def run_grid(self, times,
                 initial_state: np.ndarray | None = None) -> TransientResult:
        """March the backward-Euler update on an explicit time grid.

        No adaptive control: the step sizes are exactly
        ``h_n = times[n+1] - times[n]``.  This is the per-instance
        reference :class:`~repro.swec.ensemble.SwecEnsembleTransient`
        is validated against, and the fixed-grid mode behind
        bit-reproducible stochastic ensembles.  Dense backward Euler
        only (``method="trap"`` and ``matrix_format="sparse"`` are the
        adaptive engine's territory).
        """
        opts = self.options
        if opts.method != "be" or opts.matrix_format != "dense":
            raise AnalysisError(
                "run_grid supports the dense backward-Euler path only")
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise AnalysisError(
                f"need a 1-D grid with >= 2 points, got shape {times.shape}")
        if np.any(np.diff(times) <= 0.0):
            raise AnalysisError("grid times must be strictly increasing")
        system = self.system
        result = TransientResult(system.circuit.nodes, engine="swec")
        if opts.trace_conductance:
            result.conductance_trace = []  # type: ignore[attr-defined]

        x = (system.initial_state() if initial_state is None
             else np.array(initial_state, dtype=float, copy=True))
        if x.shape != (system.size,):
            raise AnalysisError(
                f"initial state must have shape ({system.size},), "
                f"got {x.shape}")
        if opts.initialize_dc and initial_state is None:
            x = self._dc_initialize(x, result, t=float(times[0]))

        solver = LinearSolver(result.flops)
        if opts.factor_rtol is not None:
            solver = CachedFactorization(solver, opts.factor_rtol)
        c = self._c_matrix
        g_buf = np.empty_like(self._g_base)
        a_buf = np.empty_like(self._g_base)
        ch_buf = np.empty_like(self._g_base)
        rhs_buf = np.empty(system.size)
        tmp_buf = np.empty(system.size)

        result.append(times[0], x)
        h_prev: float | None = None
        prev_x: np.ndarray | None = None
        for k in range(times.size - 1):
            t_next = float(times[k + 1])
            h = t_next - float(times[k])
            device_g = self.linearization.device_conductances(
                x, prev_x, h_prev, h, flops=result.flops)
            mosfet_g = self.linearization.mosfet_conductances(
                x, flops=result.flops)
            np.copyto(g_buf, self._g_base)
            self.linearization.stamp(g_buf, device_g, mosfet_g)

            np.multiply(c, 1.0 / h, out=ch_buf)
            np.dot(c, x, out=tmp_buf)
            tmp_buf /= h
            np.add(g_buf, ch_buf, out=a_buf)
            rhs = self.system.source_vector(t_next, out=rhs_buf)
            rhs += tmp_buf
            solver.factor(a_buf)
            x_new = solver.solve(rhs)

            prev_x, h_prev = x, h
            x = x_new
            result.append(t_next, x)
            result.accepted_steps += 1
            if opts.trace_conductance:
                result.conductance_trace.append(  # type: ignore[attr-defined]
                    (float(times[k + 1]), device_g.copy()))
        if isinstance(solver, CachedFactorization):
            result.factor_reuses = solver.reuses
        return result

    # ------------------------------------------------------------------

    def device_current_waveform(self, result: TransientResult,
                                device_name: str) -> np.ndarray:
        """Current through a named two-terminal device over a result.

        Evaluated with the model's vectorized I-V law — one numpy pass
        over the whole waveform instead of a Python loop per point.
        """
        for k, device in enumerate(self.circuit.devices):
            if device.name == device_name:
                anode, cathode = self.system.device_terminals()[k]
                states = result.states
                zeros = np.zeros(states.shape[0])
                va = states[:, anode] if anode >= 0 else zeros
                vc = states[:, cathode] if cathode >= 0 else zeros
                return device.current_many(va - vc)
        raise AnalysisError(f"no device named {device_name!r}")
