"""Adaptive time-step control (paper Section 3.4).

For a requested local error fraction ``eps`` the paper derives two
constraints (its eqs. 11-12, after Lin/Marek-Sadowska/Kuh):

input-slope constraint
    ``h <= 3 eps |V_i0| / alpha_i`` for every active input, where
    ``alpha_i = dV_in/dt`` is the source slope and ``V_i0`` the present
    source magnitude.
node-RC constraint
    ``h <= eps C_j / sum_k G_jk(t_n)`` for every node ``j`` with grounded
    capacitance ``C_j``; the denominator is the total conductance hanging
    off the node — the diagonal of the current ``G`` matrix.

The controller takes the minimum over all constraints, clamps it into
``[h_min, h_max]``, limits growth to ``growth_limit`` per step, and never
steps across a source breakpoint (so pulse edges are honoured exactly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Circuit
from repro.mna.assembler import MnaSystem


@dataclass
class StepControlOptions:
    """Tunables for :class:`AdaptiveStepController`.

    Attributes
    ----------
    epsilon:
        Target fractional local error (paper's ``eps``); 2% default.
    h_min, h_max:
        Hard clamp on the step size.
    h_initial:
        First step; defaults to ``h_min`` when ``None``.
    growth_limit:
        Maximum ratio ``h_{n+1} / h_n``.
    voltage_floor:
        Floor on ``|V_i0|`` in the slope constraint so a source crossing
        zero does not drive the step to ``h_min`` forever.
    """

    epsilon: float = 0.02
    h_min: float = 1e-15
    h_max: float = math.inf
    h_initial: float | None = None
    growth_limit: float = 2.0
    voltage_floor: float = 1e-3

    def __post_init__(self) -> None:
        if self.epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon!r}")
        if self.h_min <= 0.0:
            raise ValueError(f"h_min must be positive, got {self.h_min!r}")
        if self.h_max < self.h_min:
            raise ValueError("h_max must be >= h_min")
        if self.growth_limit <= 1.0:
            raise ValueError("growth_limit must exceed 1")


class AdaptiveStepController:
    """Computes the next SWEC step from the current operating point."""

    def __init__(self, system: MnaSystem,
                 options: StepControlOptions | None = None) -> None:
        self.system = system
        self.options = options or StepControlOptions()
        circuit: Circuit = system.circuit
        # Grounded capacitance per node: diagonal of the C matrix restricted
        # to node rows (branch rows carry -L and are excluded).
        c_matrix = system.capacitance_matrix()
        self._node_capacitance = np.diag(c_matrix)[:system.num_nodes].copy()
        self._sources = list(circuit.voltage_sources) + list(
            circuit.current_sources)
        self._breakpoints = self._collect_breakpoints()

    def _collect_breakpoints(self) -> list[float]:
        points: set[float] = set()
        for source in self._sources:
            waveform = source.waveform
            points.update(waveform.breakpoints())
        return sorted(points)

    # ------------------------------------------------------------------
    # Constraint evaluation
    # ------------------------------------------------------------------

    def slope_bound(self, t: float) -> float:
        """``min_i 3 eps |V_i0| / alpha_i`` over active sources (eq. 11)."""
        eps = self.options.epsilon
        bound = math.inf
        for source in self._sources:
            slope = abs(source.slope(t))
            if slope == 0.0:
                continue
            level = max(abs(source.value(t)), self.options.voltage_floor)
            bound = min(bound, 3.0 * eps * level / slope)
        return bound

    def node_rc_bound(self, conductance_matrix) -> float:
        """``min_j eps C_j / sum_k G_jk`` over capacitive nodes (eq. 12).

        Accepts dense arrays and scipy sparse matrices alike (both
        expose ``.diagonal()``).
        """
        eps = self.options.epsilon
        bound = math.inf
        diag = np.asarray(conductance_matrix.diagonal()).ravel()
        for j in range(self.system.num_nodes):
            c_j = self._node_capacitance[j]
            g_j = diag[j]
            if c_j > 0.0 and g_j > 0.0:
                bound = min(bound, eps * c_j / g_j)
        return bound

    def breakpoint_bound(self, t: float, h: float, t_stop: float) -> float:
        """Shrink *h* so the step lands exactly on the next breakpoint or
        on ``t_stop``, whichever comes first."""
        limit = t_stop - t
        for point in self._breakpoints:
            if t < point < t + h:
                limit = min(limit, point - t)
                break
        # Periodic pulse edges are not in the static list; probe them.
        for source in self._sources:
            waveform = source.waveform
            folder = getattr(waveform, "periodic_breakpoints", None)
            if folder is None:
                continue
            for point in folder(min(t + h, t_stop)):
                if t < point < t + h:
                    limit = min(limit, point - t)
        return min(h, max(limit, 0.0))

    # ------------------------------------------------------------------
    # Main entry
    # ------------------------------------------------------------------

    def _clamp(self, t: float, h_prev: float, bound: float,
               t_stop: float) -> float:
        """Clamp the raw constraint *bound* into an accepted step size."""
        opts = self.options
        h = bound
        if not math.isfinite(h):
            h = opts.h_max if math.isfinite(opts.h_max) else h_prev * opts.growth_limit
        h = min(h, h_prev * opts.growth_limit, opts.h_max)
        h = max(h, opts.h_min)
        h = self.breakpoint_bound(t, h, t_stop)
        return max(h, min(opts.h_min, t_stop - t))

    def next_step(self, t: float, h_prev: float,
                  conductance_matrix, t_stop: float) -> float:
        """Return the next accepted step size ``h_n`` (paper eq. 12)."""
        bound = min(self.slope_bound(t),
                    self.node_rc_bound(conductance_matrix))
        return self._clamp(t, h_prev, bound, t_stop)

    def initial_step(self, t_stop: float) -> float:
        """First step: explicit option, else a conservative fraction."""
        if self.options.h_initial is not None:
            return self.options.h_initial
        fallback = t_stop * 1e-4
        if math.isfinite(self.options.h_max):
            fallback = min(fallback, self.options.h_max)
        return max(fallback, self.options.h_min)


class EnsembleStepController(AdaptiveStepController):
    """Worst-case eq.-10/12 step control over an instance ensemble.

    Value-identical waveforms are deduplicated
    (:func:`~repro.circuit.sources.waveform_state_key`) so the slope
    and breakpoint bounds pay one evaluation per *distinct* source,
    and the node-RC bound is vectorized over a ``(K, n)`` diagonal
    stack — the only part of ``G`` the bound needs, which is what the
    solver backends expose regardless of matrix representation.
    """

    def __init__(self, systems, circuits,
                 options: StepControlOptions | None = None) -> None:
        from repro.circuit.sources import waveform_state_key

        super().__init__(systems[0], options)
        seen: set = set()
        sources = []
        for circuit in circuits:
            for source in (list(circuit.voltage_sources)
                           + list(circuit.current_sources)):
                key = waveform_state_key(source.waveform)
                if key in seen:
                    continue
                seen.add(key)
                sources.append(source)
        self._sources = sources
        self._breakpoints = self._collect_breakpoints()
        caps: dict[int, np.ndarray] = {}
        rows = []
        for system in systems:
            if id(system) not in caps:
                caps[id(system)] = np.diag(
                    system.capacitance_matrix())[:system.num_nodes].copy()
            rows.append(caps[id(system)])
        self._node_capacitance_stack = np.stack(rows)
        # The capacitance stack is fixed for the march, so the
        # (instance, node) pairs with grounded capacitance — and their
        # eps * C_j numerators — are precomputed once; the per-step
        # bound is one gather, one divide and a min.
        c = self._node_capacitance_stack
        self._rc_instances, self._rc_nodes = np.nonzero(c > 0.0)
        self._rc_scaled = (self.options.epsilon
                           * c[self._rc_instances, self._rc_nodes])

    def node_rc_bound_stack(self, diagonal_stack) -> float:
        """``min_{k,j} eps C_j^k / G_jj^k`` over the whole ensemble.

        *diagonal_stack* is the ``(K, n)`` stamped-``G`` diagonal
        (only the leading ``num_nodes`` columns are consulted).
        """
        if self._rc_nodes.size == 0:
            return math.inf
        diag = np.asarray(diagonal_stack)[self._rc_instances,
                                          self._rc_nodes]
        mask = diag > 0.0
        if not mask.any():
            return math.inf
        return float(np.min(self._rc_scaled[mask] / diag[mask]))

    def next_step_from_diagonal(self, t: float, h_prev: float,
                                diagonal_stack, t_stop: float) -> float:
        """Eq.-12 next step from the stamped diagonals of all instances."""
        bound = min(self.slope_bound(t),
                    self.node_rc_bound_stack(diagonal_stack))
        return self._clamp(t, h_prev, bound, t_stop)
