"""Ensemble-vectorized SWEC transient: K circuit instances per solve.

SWEC replaces Newton iteration with exactly one linear solve per time
point, so every instance of a shared-topology circuit follows the *same*
computational recipe — ideal for lockstep batching.
:class:`SwecEnsembleTransient` is the batched face of the unified
:class:`~repro.core.stepper.LinearStepper` march: K instances of one
topology (differing in device parameters, source waveforms, element
values, initial states and/or noise realizations) march together on a
shared time grid, with every factor/solve delegated to a
:mod:`repro.core.backends` solver backend:

``stack`` (the default)
    One chunked batched ``np.linalg.solve`` per time point over the
    scatter-stamped ``(K, n, n)`` stack — the lockstep hot path.
``sparse``
    SuperLU on the cached CSR pattern, one O(nnz) factor per instance
    — grid-scale ensembles that would not fit (or crawl) as dense
    stacks.
``dense``
    One scipy LU per instance — the serial reference the stack path
    is benchmarked against.

Two marching modes:

adaptive (:meth:`LinearStepper.run`)
    The paper's eq.-10/12 step control, taken worst-case over the
    ensemble: shared waveforms are evaluated once for the slope bound
    and the node-RC bound is the minimum over all instances.  With
    K = 1 this *is* :class:`~repro.swec.engine.SwecTransient`'s march
    (the scalar engine is the same stepper).
fixed grid (:meth:`LinearStepper.run_grid`)
    An explicit shared grid — the mode behind bit-reproducible
    stochastic ensembles.  White-noise current injections (the paper's
    eq. 13 ``B dW`` term) enter the backward-Euler right-hand side as
    ``B dW_n / h_n``, i.e. an *implicit* Euler-Maruyama step that
    stays stable on stiff parasitic RC meshes where the explicit EM
    integrator needs tiny steps.  Each instance draws from its own
    seeded Generator, so results are bit-identical for any solve chunk
    size, worker count or ensemble split.

Memory on the ``stack``/``dense`` backends scales as a handful of
``(K, n, n)`` float stacks — about ``48 * K * n**2`` bytes — plus the
``(K, T, n)`` result; the ``sparse`` backend replaces the matrix
stacks with ``(K, nnz)`` data arrays.  Conductance tracing is opt-in
*per instance* (``trace_instances``), bounding the trace at
``8 * T * len(trace_instances) * n_devices`` bytes instead of a full
``device_g`` copy per instance per step.
"""

from __future__ import annotations

from repro.analysis.waveforms import EnsembleTransientResult
from repro.core.stepper import LinearStepper

__all__ = ["EnsembleTransientResult", "SwecEnsembleTransient"]


class SwecEnsembleTransient(LinearStepper):
    """Lockstep SWEC transient over K same-topology circuit instances.

    A :class:`~repro.core.stepper.LinearStepper` whose default solver
    backend is ``stack`` (chunked batched LAPACK); set
    ``options.backend`` to ``"sparse"`` for grid-scale ensembles or
    ``"auto"`` to select by size.  See the module docstring and
    :class:`~repro.core.stepper.LinearStepper` for the parameters
    (``circuits``, ``options``, ``n_instances``, ``noise``,
    ``trace_instances``, ``chunk_entries``) and the
    :meth:`~repro.core.stepper.LinearStepper.run` /
    :meth:`~repro.core.stepper.LinearStepper.run_grid` marching modes.
    """

    def __init__(self, circuits, options=None, **kwargs) -> None:
        kwargs.setdefault("default_backend", "stack")
        super().__init__(circuits, options, **kwargs)
