"""Ensemble-vectorized SWEC transient: K circuit instances per solve.

SWEC replaces Newton iteration with exactly one linear solve per time
point, so every instance of a shared-topology circuit follows the *same*
computational recipe — ideal for lockstep batching.
:class:`SwecEnsembleTransient` exploits that: K instances of one
topology (differing in device parameters, source waveforms, element
values, initial states and/or noise realizations) march together on a
shared time grid.  Per step it

1. evaluates the chord conductances of all K states at once through
   the vectorized device laws (grouping instances that share a device
   parameter record, so the common all-instances-alike case is one
   ``current_many`` call per device slot),
2. scatters them into a preallocated ``(K, n, n)`` matrix stack with
   the precomputed index arrays of
   :class:`~repro.mna.batch.ConductanceStamper`, and
3. hands the stack to one batched ``np.linalg.solve``
   (:func:`~repro.mna.batch.solve_stack`, chunked exactly like the AC
   sweeps so memory stays bounded)

instead of paying the Python interpreter, the per-device loops and K
separate LAPACK calls per step.

Two marching modes:

adaptive (:meth:`SwecEnsembleTransient.run`)
    The paper's eq.-10/12 step control, taken worst-case over the
    ensemble: shared waveforms are evaluated once for the slope bound
    and the node-RC bound is the minimum over all instances.  With
    K = 1 this reproduces :class:`~repro.swec.engine.SwecTransient`'s
    grid and states.
fixed grid (:meth:`SwecEnsembleTransient.run_grid`)
    An explicit shared grid — the mode behind bit-reproducible
    stochastic ensembles.  White-noise current injections (the paper's
    eq. 13 ``B dW`` term) enter the backward-Euler right-hand side as
    ``B dW_n / h_n``, i.e. an *implicit* Euler-Maruyama step that
    stays stable on stiff parasitic RC meshes where the explicit EM
    integrator needs tiny steps.  Each instance draws from its own
    seeded Generator, so results are bit-identical for any solve chunk
    size, worker count or ensemble split.

Memory scales as a handful of ``(K, n, n)`` float stacks (base G,
stamped G, system matrix A, C) — about ``32 * K * n**2`` bytes — plus
the ``(K, T, n)`` result; conductance tracing is therefore opt-in *per
instance* (``trace_instances``), bounding the trace at
``8 * T * len(trace_instances) * n_devices`` bytes instead of a full
``device_g`` copy per instance per step.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.waveforms import TransientResult
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, SingularMatrixError
from repro.mna.assembler import MnaSystem
from repro.mna.batch import solve_stack
from repro.perf.flops import FlopCounter
from repro.swec.conductance import SwecLinearization
from repro.swec.engine import SwecOptions
from repro.swec.timestep import AdaptiveStepController

__all__ = ["EnsembleTransientResult", "SwecEnsembleTransient"]


class EnsembleTransientResult:
    """Time-domain result of a lockstep ensemble march.

    Stores the shared accepted time grid and the ``(K, n)`` state
    stack per point.  Per-instance access mirrors
    :class:`~repro.analysis.waveforms.TransientResult`:
    :meth:`voltage` returns a ``(K, T)`` waveform block and
    :meth:`instance` materializes one instance as a plain
    ``TransientResult`` (with an *empty* flop counter — the
    ensemble-level :attr:`flops` counts the whole batch and does not
    split into integer per-instance shares).
    """

    def __init__(self, node_names, n_instances: int,
                 engine: str = "swec-ensemble") -> None:
        self.node_names = tuple(node_names)
        self.n_instances = int(n_instances)
        self.engine = engine
        self._times: list[float] = []
        self._states: list[np.ndarray] = []
        self.flops = FlopCounter()
        self.accepted_steps = 0
        self.rejected_steps = 0
        self.aborted = False
        self.abort_reason: str | None = None
        #: instance index -> ``[(t, device_g_row), ...]`` for the
        #: instances named in ``trace_instances``.
        self.conductance_trace: dict[int, list] = {}

    # ------------------------------------------------------------------

    def append(self, t: float, states: np.ndarray) -> None:
        """Record an accepted time point for all instances at once."""
        if self._times and t <= self._times[-1]:
            raise AnalysisError(
                f"non-monotonic time points: {t} after {self._times[-1]}")
        self._times.append(float(t))
        self._states.append(np.array(states, dtype=float, copy=True))

    # ------------------------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        """Shared accepted time points."""
        return np.array(self._times)

    @property
    def states(self) -> np.ndarray:
        """``(K, T, n)`` state stack over the shared grid."""
        if not self._states:
            return np.zeros((self.n_instances, 0, len(self.node_names)))
        return np.stack(self._states, axis=1)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def t_final(self) -> float:
        """Last accepted time."""
        if not self._times:
            raise AnalysisError("empty ensemble result")
        return self._times[-1]

    def _node_column(self, node: str) -> int:
        try:
            return self.node_names.index(node)
        except ValueError:
            raise AnalysisError(
                f"node {node!r} not in result (have {self.node_names})"
            ) from None

    def voltage(self, node: str) -> np.ndarray:
        """``(K, T)`` voltage waveforms of *node*, one row per instance."""
        column = self._node_column(node)
        return self.states[:, :, column]

    def final_voltages(self) -> dict[str, np.ndarray]:
        """Node name -> ``(K,)`` voltages at the last accepted point."""
        if not self._states:
            raise AnalysisError("empty ensemble result")
        last = self._states[-1]
        return {name: last[:, k].copy()
                for k, name in enumerate(self.node_names)}

    def instance(self, k: int) -> TransientResult:
        """Materialize instance *k* as a scalar ``TransientResult``."""
        if not 0 <= k < self.n_instances:
            raise AnalysisError(
                f"instance index {k} out of range [0, {self.n_instances})")
        result = TransientResult(self.node_names, engine=self.engine)
        for t, row in zip(self._times, self._states):
            result.append(t, row[k])
        result.accepted_steps = self.accepted_steps
        result.rejected_steps = self.rejected_steps
        result.aborted = self.aborted
        result.abort_reason = self.abort_reason
        if k in self.conductance_trace:
            result.conductance_trace = [  # type: ignore[attr-defined]
                (t, g.copy()) for t, g in self.conductance_trace[k]]
        return result

    def summary(self) -> str:
        """One-paragraph diagnostic summary."""
        lines = [
            f"engine={self.engine} instances={self.n_instances} "
            f"points={len(self)} "
            f"t_final={self._times[-1] if self._times else 0.0:.4g}",
            f"steps: accepted={self.accepted_steps} "
            f"rejected={self.rejected_steps}",
        ]
        if self.aborted:
            lines.append(f"ABORTED: {self.abort_reason}")
        lines.append(f"flops={self.flops.total:,}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"EnsembleTransientResult(instances={self.n_instances}, "
                f"points={len(self)}, nodes={len(self.node_names)})")


def _waveform_key(waveform):
    """Structural deduplication key for waveform evaluations.

    Instances built by independent builder calls carry distinct but
    value-identical waveform objects (K ``fet_rtd_inverter()`` calls
    make K equal ``Pulse``\\ s); keying on ``(type, attribute state)``
    lets them share one evaluation per time point.  Waveforms with
    unhashable state fall back to object identity — never wrong, just
    unshared.
    """
    try:
        state = tuple(sorted(vars(waveform).items()))
        hash(state)
    except TypeError:
        return ("id", id(waveform))
    return (type(waveform), state)


class _EnsembleStepController(AdaptiveStepController):
    """Worst-case eq.-10/12 step control over an instance ensemble.

    Value-identical waveforms are deduplicated so the slope and
    breakpoint bounds pay one evaluation per *distinct* source, and
    the node-RC bound is vectorized over the ``(K, n, n)``
    conductance stack.
    """

    def __init__(self, systems: Sequence[MnaSystem],
                 circuits: Sequence[Circuit], options) -> None:
        super().__init__(systems[0], options)
        seen: set = set()
        sources = []
        for circuit in circuits:
            for source in (list(circuit.voltage_sources)
                           + list(circuit.current_sources)):
                key = _waveform_key(source.waveform)
                if key in seen:
                    continue
                seen.add(key)
                sources.append(source)
        self._sources = sources
        self._breakpoints = self._collect_breakpoints()
        caps: dict[int, np.ndarray] = {}
        rows = []
        for system in systems:
            if id(system) not in caps:
                caps[id(system)] = np.diag(
                    system.capacitance_matrix())[:system.num_nodes].copy()
            rows.append(caps[id(system)])
        self._node_capacitance_stack = np.stack(rows)

    def node_rc_bound(self, conductance_stack) -> float:
        """``min_{k,j} eps C_j^k / G_jj^k`` over the whole ensemble."""
        eps = self.options.epsilon
        nn = self.system.num_nodes
        diag = np.diagonal(conductance_stack, axis1=-2, axis2=-1)[:, :nn]
        c = self._node_capacitance_stack
        mask = (c > 0.0) & (diag > 0.0)
        if not mask.any():
            return math.inf
        return float(np.min(eps * c[mask] / diag[mask]))


def _check_same_topology(reference: Circuit, circuit: Circuit,
                         index: int) -> None:
    """Raise unless *circuit* shares *reference*'s exact topology."""
    if circuit.nodes != reference.nodes:
        raise AnalysisError(
            f"ensemble instance {index} has different nodes "
            f"{circuit.nodes} vs {reference.nodes}")
    for category in ("resistors", "capacitors", "inductors",
                     "voltage_sources", "current_sources", "devices",
                     "mosfets"):
        ours = getattr(circuit, category)
        theirs = getattr(reference, category)
        if len(ours) != len(theirs):
            raise AnalysisError(
                f"ensemble instance {index} has {len(ours)} {category}, "
                f"instance 0 has {len(theirs)}")
        for a, b in zip(ours, theirs):
            if a.name != b.name or a.nodes != b.nodes:
                raise AnalysisError(
                    f"ensemble instance {index}: {category[:-1]} "
                    f"{a.name!r} on {a.nodes} does not match instance "
                    f"0's {b.name!r} on {b.nodes}")


class _SourceBank:
    """Vectorized ``b(t)`` assembly across instances.

    Per source slot, instances whose waveforms are value-identical
    (:func:`_waveform_key`) are grouped so each distinct waveform is
    evaluated once per time point.
    """

    def __init__(self, circuits: Sequence[Circuit],
                 system: MnaSystem) -> None:
        self.n_instances = len(circuits)
        self.size = system.size
        self._vsrc: list[tuple[int, list]] = []
        for slot, source in enumerate(circuits[0].voltage_sources):
            row = system.vsource_index(source.name)
            waveforms = [c.voltage_sources[slot].waveform for c in circuits]
            self._vsrc.append((row, self._group(waveforms)))
        self._isrc: list[tuple[int, int, list]] = []
        for slot, source in enumerate(circuits[0].current_sources):
            p = system.node_index(source.nodes[0])
            q = system.node_index(source.nodes[1])
            waveforms = [c.current_sources[slot].waveform for c in circuits]
            self._isrc.append((p, q, self._group(waveforms)))

    @staticmethod
    def _group(waveforms) -> list:
        groups: dict = {}
        order: list = []
        for k, waveform in enumerate(waveforms):
            key = _waveform_key(waveform)
            if key not in groups:
                groups[key] = (waveform, [])
                order.append(key)
            groups[key][1].append(k)
        return [(groups[key][0],
                 np.asarray(groups[key][1], dtype=np.intp))
                for key in order]

    def assemble(self, t: float, out: np.ndarray) -> np.ndarray:
        """Fill *out* (a ``(K, n)`` buffer) with ``b(t)`` per instance."""
        out.fill(0.0)
        for row, groups in self._vsrc:
            if len(groups) == 1:
                out[:, row] = groups[0][0].value(t)
            else:
                for waveform, idx in groups:
                    out[idx, row] = waveform.value(t)
        for p, q, groups in self._isrc:
            for waveform, idx in groups:
                value = waveform.value(t)
                if p >= 0:
                    out[idx, p] -= value
                if q >= 0:
                    out[idx, q] += value
        return out


class _DeviceSlot:
    """Chord evaluation for one two-terminal device slot across K
    instances, grouped by the models' ``batch_key`` so equal-parameter
    models share one vectorized call."""

    def __init__(self, elements) -> None:
        n = len(elements)
        self.multiplicity = np.array([e.multiplicity for e in elements])
        groups: dict = {}
        order = []
        for k, element in enumerate(elements):
            key = element.model.batch_key()
            if key not in groups:
                groups[key] = (element.model, [])
                order.append(key)
            groups[key][1].append(k)
        self.groups = [
            (groups[key][0], np.asarray(groups[key][1], dtype=np.intp))
            for key in order]
        self.single = len(self.groups) == 1 and \
            self.groups[0][1].size == n

    def chord(self, voltages: np.ndarray) -> np.ndarray:
        """``(K,)`` chord conductances (multiplicity applied)."""
        if self.single:
            model = self.groups[0][0]
            return self.multiplicity * model.chord_conductance_many(voltages)
        out = np.empty_like(voltages)
        for model, idx in self.groups:
            out[idx] = self.multiplicity[idx] * \
                model.chord_conductance_many(voltages[idx])
        return out

    def chord_derivative(self, voltages: np.ndarray) -> np.ndarray:
        """``(K,)`` chord derivatives for the eq.-5 predictor."""
        if self.single:
            model = self.groups[0][0]
            return self.multiplicity * \
                model.chord_conductance_derivative_many(voltages)
        out = np.empty_like(voltages)
        for model, idx in self.groups:
            out[idx] = self.multiplicity[idx] * \
                model.chord_conductance_derivative_many(voltages[idx])
        return out


class SwecEnsembleTransient:
    """Lockstep SWEC transient over K same-topology circuit instances.

    Parameters
    ----------
    circuits:
        A sequence of K :class:`~repro.circuit.Circuit` objects sharing
        one topology (same nodes and element names/connections; values,
        waveforms and device parameters are free), or a single circuit
        with ``n_instances=K`` for noise-/initial-state-only ensembles.
    options:
        :class:`~repro.swec.engine.SwecOptions`; only the dense
        backward-Euler path is batched (``method="trap"`` and
        ``matrix_format="sparse"`` raise).
    n_instances:
        Instance count when *circuits* is a single circuit.
    noise:
        Optional ``(node, amplitude)`` white-noise current injections
        (the paper's eq.-13 ``B dW`` term); amplitudes are scalars or
        length-K arrays.  Noise requires the fixed-grid mode.
    trace_instances:
        Instance indices whose per-step device chord conductances are
        recorded (requires ``options.trace_conductance``); tracing is
        per-instance opt-in so the trace memory stays at
        ``8 * T * len(trace_instances) * n_devices`` bytes.
    chunk_entries:
        Matrix entries per batched-solve chunk (default
        :data:`repro.mna.batch.CHUNK_ENTRIES`); results are
        bit-identical for any value.
    """

    def __init__(self, circuits, options: SwecOptions | None = None, *,
                 n_instances: int | None = None,
                 noise: Sequence[tuple[str, object]] | Mapping | None = None,
                 trace_instances: Sequence[int] = (),
                 chunk_entries: int | None = None) -> None:
        if isinstance(circuits, Circuit):
            if n_instances is None or n_instances < 1:
                raise AnalysisError(
                    "a single-circuit ensemble needs n_instances >= 1")
            circuits = [circuits] * int(n_instances)
        else:
            circuits = list(circuits)
            if not circuits:
                raise AnalysisError("ensemble needs at least one circuit")
            if n_instances is not None and n_instances != len(circuits):
                raise AnalysisError(
                    f"n_instances={n_instances} does not match the "
                    f"{len(circuits)} circuits given")
        self.circuits = circuits
        self.n_instances = len(circuits)
        self.options = options or SwecOptions()
        if self.options.method != "be":
            raise AnalysisError(
                "the ensemble engine batches the backward-Euler path only")
        if self.options.matrix_format != "dense":
            raise AnalysisError(
                "the ensemble engine is dense-only; use SwecTransient "
                "for the sparse path")
        for index, circuit in enumerate(circuits[1:], start=1):
            _check_same_topology(circuits[0], circuit, index)

        systems: dict[int, MnaSystem] = {}
        self.systems = []
        for circuit in circuits:
            if id(circuit) not in systems:
                systems[id(circuit)] = MnaSystem(circuit)
            self.systems.append(systems[id(circuit)])
        self.system = self.systems[0]
        self.size = self.system.size
        self.linearization = SwecLinearization(
            self.system, use_predictor=self.options.use_predictor)
        self.controller = _EnsembleStepController(
            self.systems, circuits, self.options.step)
        self._chunk_entries = chunk_entries

        K, n = self.n_instances, self.size
        bases: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._g_base = np.empty((K, n, n))
        self._c = np.empty((K, n, n))
        for k, system in enumerate(self.systems):
            if id(system) not in bases:
                bases[id(system)] = (system.conductance_base(),
                                     system.capacitance_matrix())
            self._g_base[k], self._c[k] = bases[id(system)]

        self._sources = _SourceBank(circuits, self.system)
        self._device_slots = [
            _DeviceSlot([c.devices[j] for c in circuits])
            for j in range(len(circuits[0].devices))]
        mosfets = circuits[0].mosfets
        if mosfets:
            models = [[c.mosfets[j].model for c in circuits]
                      for j in range(len(mosfets))]
            self._mosfet_params = {
                name: np.array([[getattr(m, name) for m in row]
                                for row in models]).T
                for name in ("kp", "w", "l", "vth", "polarity",
                             "channel_modulation")}
        else:
            self._mosfet_params = None

        self._noise_matrix = self._build_noise(noise)
        self.trace_instances = tuple(int(k) for k in trace_instances)
        for k in self.trace_instances:
            if not 0 <= k < K:
                raise AnalysisError(
                    f"trace instance {k} out of range [0, {K})")
        if self.options.trace_conductance and not self.trace_instances:
            raise AnalysisError(
                "trace_conductance on an ensemble needs explicit "
                "trace_instances=(...) — a full per-instance trace would "
                "hold K * T * n_devices floats")
        if self.trace_instances and not self.options.trace_conductance:
            raise AnalysisError(
                "trace_instances needs options.trace_conductance=True "
                "(tracing is gated on the same flag as the scalar engine)")

    # ------------------------------------------------------------------

    def _build_noise(self, noise) -> np.ndarray | None:
        if noise is None:
            return None
        if isinstance(noise, Mapping):
            noise = list(noise.items())
        noise = list(noise)
        if not noise:
            return None
        K, n = self.n_instances, self.size
        matrix = np.zeros((K, n, len(noise)))
        for column, entry in enumerate(noise):
            node, amplitude = entry[0], entry[1]
            index = self.system.node_index(node)
            if index < 0:
                raise AnalysisError("cannot inject noise at ground")
            amplitude = np.asarray(amplitude, dtype=float)
            if amplitude.ndim == 0:
                matrix[:, index, column] = float(amplitude)
            elif amplitude.shape == (K,):
                matrix[:, index, column] = amplitude
            else:
                raise AnalysisError(
                    f"noise amplitude for {node!r} must be a scalar or "
                    f"a length-{K} array, got shape {amplitude.shape}")
        return matrix

    @property
    def num_noises(self) -> int:
        """Number of independent white-noise injections."""
        return 0 if self._noise_matrix is None else \
            self._noise_matrix.shape[2]

    # ------------------------------------------------------------------
    # Chord conductances, all instances at once
    # ------------------------------------------------------------------

    def _device_conductances(self, states, prev_states, h_prev, h_next,
                             flops: FlopCounter | None) -> np.ndarray:
        """``(K, n_devices)`` chord conductances, Taylor-corrected."""
        voltages = self.linearization.device_voltages(states)
        K = self.n_instances
        if not self._device_slots:
            return voltages
        conductances = np.empty_like(voltages)
        predict = (self.options.use_predictor and prev_states is not None
                   and h_prev and h_next)
        if predict:
            prev_voltages = self.linearization.device_voltages(prev_states)
            dv_dt = (voltages - prev_voltages) / h_prev
        for j, slot in enumerate(self._device_slots):
            g = slot.chord(voltages[:, j])
            if predict:
                dg_dv = slot.chord_derivative(voltages[:, j])
                g = g + 0.5 * h_next * dg_dv * dv_dt[:, j]
            conductances[:, j] = g
        np.maximum(conductances, 0.0, out=conductances)
        if flops is not None:
            flops.count_device_eval(
                "rtd_current", count=K * len(self._device_slots))
            if predict:
                flops.count_device_eval(
                    "rtd_conductance", count=K * len(self._device_slots))
        return conductances

    def _mosfet_conductances(self, states,
                             flops: FlopCounter | None) -> np.ndarray:
        """``(K, n_mosfets)`` chord conductances ``Ids/Vds``."""
        if self._mosfet_params is None:
            return np.zeros((self.n_instances, 0))
        from repro.devices.mosfet import mosfet_chord_stack

        voltages = self.linearization.mosfet_voltages(states)
        p = self._mosfet_params
        conductances = mosfet_chord_stack(
            voltages[..., 0], voltages[..., 1], kp=p["kp"], w=p["w"],
            l=p["l"], vth=p["vth"], polarity=p["polarity"],
            channel_modulation=p["channel_modulation"])
        np.maximum(conductances, 0.0, out=conductances)
        if flops is not None:
            flops.count_device_eval(
                "mosfet", count=conductances.size)
        return conductances

    def _conductance_stack(self, states, prev_states, h_prev, h_next,
                           out: np.ndarray,
                           flops: FlopCounter | None) -> np.ndarray:
        """Stamp ``G`` for every instance into the *out* stack."""
        device_g = self._device_conductances(
            states, prev_states, h_prev, h_next, flops)
        mosfet_g = self._mosfet_conductances(states, flops)
        np.copyto(out, self._g_base)
        self.linearization.stamp(out, device_g, mosfet_g)
        return device_g

    # ------------------------------------------------------------------
    # Initial states
    # ------------------------------------------------------------------

    def _initial_state_stack(self, initial_states) -> np.ndarray:
        K, n = self.n_instances, self.size
        if initial_states is None:
            return np.stack([system.initial_state()
                             for system in self.systems])
        states = np.array(initial_states, dtype=float, copy=True)
        if states.shape == (n,):
            states = np.broadcast_to(states, (K, n)).copy()
        if states.shape != (K, n):
            raise AnalysisError(
                f"initial states must have shape ({n},) or ({K}, {n}), "
                f"got {states.shape}")
        return states

    def _dc_initialize(self, states: np.ndarray,
                       result: EnsembleTransientResult, t: float = 0.0,
                       max_iter: int = 200, tol: float = 1e-9) -> np.ndarray:
        """Batched chord fixed point at time *t* (DC operating points)."""
        K, n = self.n_instances, self.size
        b = self._sources.assemble(t, np.empty((K, n)))
        g_buf = np.empty_like(self._g_base)
        damping = np.ones(K)
        prev_delta = np.full(K, np.inf)
        flops = result.flops
        for _ in range(max_iter):
            self._conductance_stack(states, None, None, None, g_buf, flops)
            new_states = solve_stack(g_buf, b,
                                     chunk_entries=self._chunk_entries)
            flops.count_factorization(n, count=K)
            flops.count_solve(n, count=K)
            delta = (np.max(np.abs(new_states - states), axis=1)
                     if n else np.zeros(K))
            shrink = (delta > prev_delta) & (damping > 0.1)
            damping[shrink] *= 0.5
            prev_delta = delta
            states = states + damping[:, None] * (new_states - states)
            if np.all(delta < tol):
                break
        return states

    # ------------------------------------------------------------------
    # Marching
    # ------------------------------------------------------------------

    def _new_result(self) -> EnsembleTransientResult:
        return EnsembleTransientResult(
            self.system.circuit.nodes, self.n_instances)

    def _record_trace(self, result: EnsembleTransientResult, t: float,
                      device_g: np.ndarray) -> None:
        for k in self.trace_instances:
            result.conductance_trace.setdefault(k, []).append(
                (t, device_g[k].copy()))

    def run(self, t_stop: float,
            initial_states=None) -> EnsembleTransientResult:
        """Adaptive lockstep march from ``t = 0`` to *t_stop*.

        The shared grid takes the worst-case (smallest) eq.-10/12 step
        over the ensemble each point.  Noise injections need a fixed
        grid — use :meth:`run_grid`.
        """
        if t_stop <= 0.0:
            raise AnalysisError(f"t_stop must be positive, got {t_stop!r}")
        if self._noise_matrix is not None:
            raise AnalysisError(
                "noise ensembles need the fixed-grid mode (run_grid); "
                "an adaptive grid would couple every path's step sizes "
                "to the noise realizations")
        opts = self.options
        K, n = self.n_instances, self.size
        result = self._new_result()
        states = self._initial_state_stack(initial_states)
        if opts.initialize_dc and initial_states is None:
            states = self._dc_initialize(states, result)

        g_buf = np.empty_like(self._g_base)
        a_buf = np.empty_like(self._g_base)
        b_buf = np.empty((K, n))
        tmp_buf = np.empty((K, n, 1))

        t = 0.0
        result.append(t, states)
        h = self.controller.initial_step(t_stop)
        h_prev: float | None = None
        prev_states: np.ndarray | None = None

        while t < t_stop * (1.0 - 1e-12):
            if len(result) >= opts.max_points:
                result.aborted = True
                result.abort_reason = (
                    f"max_points={opts.max_points} reached at t={t:.4g}")
                break
            device_g = self._conductance_stack(
                states, prev_states, h_prev, h, g_buf, result.flops)
            h = self.controller.next_step(
                t, h if h_prev is None else h_prev, g_buf, t_stop)

            accepted = False
            while not accepted:
                new_states = self._solve_step(
                    t, h, states, g_buf, a_buf, b_buf, tmp_buf,
                    result.flops)
                if opts.dv_limit is not None:
                    nn = self.system.num_nodes
                    dv = float(np.max(np.abs(
                        new_states[:, :nn] - states[:, :nn])))
                    if dv > opts.dv_limit and h > opts.step.h_min * 1.001:
                        result.rejected_steps += 1
                        h = max(h * 0.5, opts.step.h_min)
                        continue
                accepted = True

            prev_states, h_prev = states, h
            states = new_states
            t += h
            result.append(t, states)
            result.accepted_steps += 1
            self._record_trace(result, t, device_g)
        return result

    def run_grid(self, times, initial_states=None, *, seeds=None,
                 rng=None) -> EnsembleTransientResult:
        """Lockstep march on an explicit shared grid.

        With noise injections configured, each step adds
        ``B dW_n / h_n`` to the right-hand side (implicit
        Euler-Maruyama).  *seeds* gives each instance its own RNG
        stream (a sequence of K ints or ``SeedSequence``s) — the
        bit-reproducible form that survives ensemble splitting; *rng*
        draws all increments from one shared Generator instead.
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise AnalysisError(
                f"need a 1-D grid with >= 2 points, got shape {times.shape}")
        if np.any(np.diff(times) <= 0.0):
            raise AnalysisError("grid times must be strictly increasing")
        opts = self.options
        K, n = self.n_instances, self.size
        result = self._new_result()
        states = self._initial_state_stack(initial_states)
        if opts.initialize_dc and initial_states is None:
            states = self._dc_initialize(states, result, t=float(times[0]))

        increments = self._draw_increments(times, seeds, rng)
        g_buf = np.empty_like(self._g_base)
        a_buf = np.empty_like(self._g_base)
        b_buf = np.empty((K, n))
        tmp_buf = np.empty((K, n, 1))

        result.append(float(times[0]), states)
        h_prev: float | None = None
        prev_states: np.ndarray | None = None
        for step in range(times.size - 1):
            t_next = float(times[step + 1])
            t = float(times[step])
            h = t_next - t
            device_g = self._conductance_stack(
                states, prev_states, h_prev, h, g_buf, result.flops)
            noise = None if increments is None else increments[:, step, :]
            new_states = self._solve_step(
                t, h, states, g_buf, a_buf, b_buf, tmp_buf, result.flops,
                t_next=t_next, noise_increments=noise)
            prev_states, h_prev = states, h
            states = new_states
            result.append(t_next, states)
            result.accepted_steps += 1
            self._record_trace(result, t_next, device_g)
        return result

    def _draw_increments(self, times, seeds, rng) -> np.ndarray | None:
        """``(K, T-1, m)`` Wiener increments, or None without noise."""
        if self._noise_matrix is None:
            return None
        K = self.n_instances
        m = self._noise_matrix.shape[2]
        steps = times.size - 1
        scale = np.sqrt(np.diff(times))[None, :, None]
        if seeds is not None:
            seeds = list(seeds)
            if len(seeds) != K:
                raise AnalysisError(
                    f"need one seed per instance ({K}), got {len(seeds)}")
            draws = np.stack([
                np.random.default_rng(seed).standard_normal((steps, m))
                for seed in seeds])
        else:
            generator = np.random.default_rng(rng)
            draws = generator.standard_normal((K, steps, m))
        return draws * scale

    def _solve_step(self, t, h, states, g_buf, a_buf, b_buf, tmp_buf,
                    flops, t_next=None, noise_increments=None) -> np.ndarray:
        """One backward-Euler solve for the whole stack."""
        K, n = self.n_instances, self.size
        np.multiply(self._c, 1.0 / h, out=a_buf)
        a_buf += g_buf
        rhs = self._sources.assemble(
            t + h if t_next is None else t_next, b_buf)
        np.matmul(self._c, states[:, :, None], out=tmp_buf)
        tmp = tmp_buf[:, :, 0]
        tmp /= h
        rhs += tmp
        if noise_increments is not None:
            rhs += np.einsum("knm,km->kn", self._noise_matrix,
                             noise_increments) / h
        solution = solve_stack(a_buf, rhs,
                               chunk_entries=self._chunk_entries)
        flops.count_factorization(n, count=K)
        flops.count_solve(n, count=K)
        if not np.all(np.isfinite(solution)):
            bad = np.flatnonzero(~np.all(np.isfinite(solution), axis=1))
            raise SingularMatrixError(
                f"non-finite solution at t={t:.4g} for instance(s) "
                f"{bad.tolist()[:8]}")
        return solution
