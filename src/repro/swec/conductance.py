"""Equivalent-conductance evaluation for the SWEC engines.

Given a state vector, :class:`SwecLinearization` computes the chord
conductance of every nonlinear device (two-terminal and MOSFET) and stamps
them into a conductance matrix.  It optionally applies the paper's eq. (5)
first-order Taylor predictor

.. math::  G_{eq}(n+1) = G_{eq}(n) + \\frac{h_n}{2} G'_{eq}(n),
           \\qquad G'_{eq} = \\frac{dG_{eq}}{dV} \\frac{dV}{dt}

where ``dV/dt`` is estimated from the last two accepted points (eq. 9).

The paper's central claim is encoded in :meth:`device_conductances`: the
returned values are chords through the origin, which are non-negative for
passive devices even inside an NDR region.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Circuit
from repro.mna.assembler import MnaSystem
from repro.perf.flops import FlopCounter


class SwecLinearization:
    """Computes and stamps step-wise equivalent conductances.

    Parameters
    ----------
    system:
        Assembled MNA view of the circuit.
    use_predictor:
        Apply the eq. (5) Taylor correction when a previous point is
        available.  On by default, matching the paper.
    """

    def __init__(self, system: MnaSystem, use_predictor: bool = True) -> None:
        self.system = system
        self.circuit: Circuit = system.circuit
        self.use_predictor = use_predictor
        self._device_terminals = system.device_terminals()
        self._mosfet_terminals = system.mosfet_terminals()

    # ------------------------------------------------------------------
    # Branch voltage extraction
    # ------------------------------------------------------------------

    def device_voltages(self, state: np.ndarray) -> np.ndarray:
        """Branch voltage of each two-terminal device."""
        voltages = np.zeros(len(self._device_terminals))
        for k, (anode, cathode) in enumerate(self._device_terminals):
            va = state[anode] if anode >= 0 else 0.0
            vc = state[cathode] if cathode >= 0 else 0.0
            voltages[k] = va - vc
        return voltages

    def mosfet_voltages(self, state: np.ndarray) -> np.ndarray:
        """``(vgs, vds)`` rows for each MOSFET."""
        voltages = np.zeros((len(self._mosfet_terminals), 2))
        for k, (drain, gate, source) in enumerate(self._mosfet_terminals):
            vd = state[drain] if drain >= 0 else 0.0
            vg = state[gate] if gate >= 0 else 0.0
            vs = state[source] if source >= 0 else 0.0
            voltages[k, 0] = vg - vs
            voltages[k, 1] = vd - vs
        return voltages

    # ------------------------------------------------------------------
    # Chord conductances (paper Section 3.2 / eq. 5)
    # ------------------------------------------------------------------

    def device_conductances(self, state: np.ndarray,
                            prev_state: np.ndarray | None = None,
                            h_prev: float | None = None,
                            h_next: float | None = None,
                            flops: FlopCounter | None = None) -> np.ndarray:
        """Chord conductance per two-terminal device, Taylor-corrected.

        ``prev_state``/``h_prev`` provide the finite-difference ``dV/dt``
        of eq. (9); ``h_next`` is the step the prediction targets.
        """
        voltages = self.device_voltages(state)
        conductances = np.zeros_like(voltages)
        predict = (self.use_predictor and prev_state is not None
                   and h_prev and h_next)
        prev_voltages = (self.device_voltages(prev_state)
                         if predict else None)
        for k, device in enumerate(self.circuit.devices):
            v = voltages[k]
            g = device.chord_conductance(v)
            if flops is not None:
                # The chord is one current evaluation plus a division —
                # cheaper than the Jacobian's current+derivative pair.
                flops.count_device_eval("rtd_current")
            if predict:
                dv_dt = (v - prev_voltages[k]) / h_prev
                dg_dv = device.chord_conductance_derivative(v)
                g = g + 0.5 * h_next * dg_dv * dv_dt
                if flops is not None:
                    flops.count_device_eval("rtd_conductance")
            # The chord of a passive device is mathematically >= 0; the
            # predictor extrapolation may overshoot slightly, so clamp.
            conductances[k] = max(g, 0.0)
        return conductances

    def mosfet_conductances(self, state: np.ndarray,
                            flops: FlopCounter | None = None) -> np.ndarray:
        """Chord conductance ``Ids/Vds`` per MOSFET (paper eq. 3)."""
        voltages = self.mosfet_voltages(state)
        conductances = np.zeros(len(self.circuit.mosfets))
        for k, mosfet in enumerate(self.circuit.mosfets):
            vgs, vds = voltages[k]
            conductances[k] = max(mosfet.chord_conductance(vgs, vds), 0.0)
            if flops is not None:
                flops.count_device_eval("mosfet")
        return conductances

    # ------------------------------------------------------------------
    # Stamping
    # ------------------------------------------------------------------

    def stamp(self, matrix: np.ndarray, device_g: np.ndarray,
              mosfet_g: np.ndarray) -> None:
        """Stamp all equivalent conductances into *matrix* in place."""
        for (anode, cathode), g in zip(self._device_terminals, device_g):
            self.system.stamp_two_terminal(matrix, anode, cathode, float(g))
        for (drain, _gate, source), g in zip(self._mosfet_terminals,
                                             mosfet_g):
            self.system.stamp_two_terminal(matrix, drain, source, float(g))

    def conductance_matrix(self, base: np.ndarray, state: np.ndarray,
                           prev_state: np.ndarray | None = None,
                           h_prev: float | None = None,
                           h_next: float | None = None,
                           flops: FlopCounter | None = None) -> np.ndarray:
        """Return ``G(t_n)``: the base stamps plus all equivalent
        conductances evaluated at *state*."""
        matrix = base.copy()
        device_g = self.device_conductances(
            state, prev_state, h_prev, h_next, flops)
        mosfet_g = self.mosfet_conductances(state, flops)
        self.stamp(matrix, device_g, mosfet_g)
        return matrix
