"""Equivalent-conductance evaluation for the SWEC engines.

Given a state vector, :class:`SwecLinearization` computes the chord
conductance of every nonlinear device (two-terminal and MOSFET) and stamps
them into a conductance matrix.  It optionally applies the paper's eq. (5)
first-order Taylor predictor

.. math::  G_{eq}(n+1) = G_{eq}(n) + \\frac{h_n}{2} G'_{eq}(n),
           \\qquad G'_{eq} = \\frac{dG_{eq}}{dV} \\frac{dV}{dt}

where ``dV/dt`` is estimated from the last two accepted points (eq. 9).

The paper's central claim is encoded in :meth:`device_conductances`: the
returned values are chords through the origin, which are non-negative for
passive devices even inside an NDR region.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Circuit
from repro.mna.assembler import MnaSystem
from repro.mna.batch import ConductanceStamper
from repro.perf.flops import FlopCounter


def _gather_arrays(indices) -> tuple[np.ndarray, np.ndarray]:
    """``(clipped indices, ground mask)`` for a vectorized gather.

    Ground terminals carry index ``-1``; clipping them to 0 keeps the
    fancy index legal and the 0.0 mask zeroes the gathered value, so
    ``state[..., idx] * mask`` reproduces the per-terminal
    ``state[k] if k >= 0 else 0.0`` lookup in one shot.
    """
    idx = np.asarray(indices, dtype=np.intp)
    mask = (idx >= 0).astype(float)
    return np.maximum(idx, 0), mask


class SwecLinearization:
    """Computes and stamps step-wise equivalent conductances.

    Parameters
    ----------
    system:
        Assembled MNA view of the circuit.
    use_predictor:
        Apply the eq. (5) Taylor correction when a previous point is
        available.  On by default, matching the paper.

    Branch-voltage extraction and stamping are index-based: terminal
    index arrays are precomputed once so :meth:`device_voltages`,
    :meth:`mosfet_voltages` and :meth:`stamp` run as numpy gathers and
    scatters with no per-device Python loop, and all three accept an
    optional leading batch axis (a ``(K, n)`` state stack or a
    ``(K, n, n)`` matrix stack) — the ensemble engine's hot path.
    """

    def __init__(self, system: MnaSystem, use_predictor: bool = True) -> None:
        self.system = system
        self.circuit: Circuit = system.circuit
        self.use_predictor = use_predictor
        self._device_terminals = system.device_terminals()
        self._mosfet_terminals = system.mosfet_terminals()
        terminals = np.asarray(self._device_terminals,
                               dtype=np.intp).reshape(-1, 2)
        self._anode_idx, self._anode_mask = _gather_arrays(terminals[:, 0])
        self._cathode_idx, self._cathode_mask = \
            _gather_arrays(terminals[:, 1])
        mosfets = np.asarray(self._mosfet_terminals,
                             dtype=np.intp).reshape(-1, 3)
        self._drain_idx, self._drain_mask = _gather_arrays(mosfets[:, 0])
        self._gate_idx, self._gate_mask = _gather_arrays(mosfets[:, 1])
        self._source_idx, self._source_mask = _gather_arrays(mosfets[:, 2])
        # MOSFETs stamp their chord across drain-source, exactly like a
        # two-terminal device (paper eq. 3).
        self._stamper = ConductanceStamper(
            list(self._device_terminals)
            + [(drain, source)
               for drain, _gate, source in self._mosfet_terminals],
            system.size)

    # ------------------------------------------------------------------
    # Branch voltage extraction
    # ------------------------------------------------------------------

    def device_voltages(self, state: np.ndarray) -> np.ndarray:
        """Branch voltage of each two-terminal device.

        *state* is ``(n,)`` or a ``(K, n)`` stack; the result matches
        with a trailing device axis.
        """
        state = np.asarray(state, dtype=float)
        va = state[..., self._anode_idx] * self._anode_mask
        vc = state[..., self._cathode_idx] * self._cathode_mask
        return va - vc

    def mosfet_voltages(self, state: np.ndarray) -> np.ndarray:
        """``(vgs, vds)`` rows for each MOSFET.

        *state* is ``(n,)`` or a ``(K, n)`` stack; the result is
        ``(..., n_mosfets, 2)``.
        """
        state = np.asarray(state, dtype=float)
        vd = state[..., self._drain_idx] * self._drain_mask
        vg = state[..., self._gate_idx] * self._gate_mask
        vs = state[..., self._source_idx] * self._source_mask
        return np.stack((vg - vs, vd - vs), axis=-1)

    # ------------------------------------------------------------------
    # Chord conductances (paper Section 3.2 / eq. 5)
    # ------------------------------------------------------------------

    def device_conductances(self, state: np.ndarray,
                            prev_state: np.ndarray | None = None,
                            h_prev: float | None = None,
                            h_next: float | None = None,
                            flops: FlopCounter | None = None) -> np.ndarray:
        """Chord conductance per two-terminal device, Taylor-corrected.

        ``prev_state``/``h_prev`` provide the finite-difference ``dV/dt``
        of eq. (9); ``h_next`` is the step the prediction targets.
        """
        voltages = self.device_voltages(state)
        conductances = np.zeros_like(voltages)
        predict = (self.use_predictor and prev_state is not None
                   and h_prev and h_next)
        prev_voltages = (self.device_voltages(prev_state)
                         if predict else None)
        for k, device in enumerate(self.circuit.devices):
            v = voltages[k]
            g = device.chord_conductance(v)
            if flops is not None:
                # The chord is one current evaluation plus a division —
                # cheaper than the Jacobian's current+derivative pair.
                flops.count_device_eval("rtd_current")
            if predict:
                dv_dt = (v - prev_voltages[k]) / h_prev
                dg_dv = device.chord_conductance_derivative(v)
                g = g + 0.5 * h_next * dg_dv * dv_dt
                if flops is not None:
                    flops.count_device_eval("rtd_conductance")
            # The chord of a passive device is mathematically >= 0; the
            # predictor extrapolation may overshoot slightly, so clamp.
            conductances[k] = max(g, 0.0)
        return conductances

    def mosfet_conductances(self, state: np.ndarray,
                            flops: FlopCounter | None = None) -> np.ndarray:
        """Chord conductance ``Ids/Vds`` per MOSFET (paper eq. 3)."""
        voltages = self.mosfet_voltages(state)
        conductances = np.zeros(len(self.circuit.mosfets))
        for k, mosfet in enumerate(self.circuit.mosfets):
            vgs, vds = voltages[k]
            conductances[k] = max(mosfet.chord_conductance(vgs, vds), 0.0)
            if flops is not None:
                flops.count_device_eval("mosfet")
        return conductances

    # ------------------------------------------------------------------
    # Stamping
    # ------------------------------------------------------------------

    def stamp(self, matrix: np.ndarray, device_g: np.ndarray,
              mosfet_g: np.ndarray) -> None:
        """Stamp all equivalent conductances into *matrix* in place.

        *matrix* is ``(n, n)`` or a C-contiguous ``(K, n, n)`` stack;
        the conductance arrays carry the matching leading batch axis.
        """
        device_g = np.asarray(device_g, dtype=float)
        mosfet_g = np.asarray(mosfet_g, dtype=float)
        if device_g.ndim != mosfet_g.ndim:
            # Align an empty column block with the batched one.
            if device_g.size == 0:
                device_g = np.zeros((*mosfet_g.shape[:-1], 0))
            elif mosfet_g.size == 0:
                mosfet_g = np.zeros((*device_g.shape[:-1], 0))
        self._stamper.stamp(
            matrix, np.concatenate((device_g, mosfet_g), axis=-1))

    def conductance_matrix(self, base: np.ndarray, state: np.ndarray,
                           prev_state: np.ndarray | None = None,
                           h_prev: float | None = None,
                           h_next: float | None = None,
                           flops: FlopCounter | None = None) -> np.ndarray:
        """Return ``G(t_n)``: the base stamps plus all equivalent
        conductances evaluated at *state*."""
        matrix = base.copy()
        device_g = self.device_conductances(
            state, prev_state, h_prev, h_next, flops)
        mosfet_g = self.mosfet_conductances(state, flops)
        self.stamp(matrix, device_g, mosfet_g)
        return matrix
