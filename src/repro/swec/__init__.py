"""Step-Wise Equivalent Conductance (SWEC) engines — the paper's core.

``SwecTransient`` marches the linearized system

.. math::  (G_{eq}(t_n) + C/h_n)\\, x_{n+1} = b(t_{n+1}) + (C/h_n)\\, x_n

with one linear solve per time point: no Newton iterations, hence no NDR
convergence failure.  ``SwecDC`` performs source-continuation sweeps using
the chord-conductance fixed point.  ``SwecLinearization`` computes the
equivalent conductances (with the eq.-5 Taylor predictor) and
``AdaptiveStepController`` implements the eq.-10/12 step bound.
``SwecEnsembleTransient`` marches K same-topology circuit instances in
lockstep, one batched LAPACK call per time point.  Both transients are
faces of the unified :class:`~repro.core.stepper.LinearStepper` march
(``SwecTransient`` is its K = 1 slice), with the per-point
factor/solve delegated to a :mod:`repro.core.backends` solver backend
(``backend="dense"/"sparse"/"stack"/"auto"``).
"""

from repro.swec.conductance import SwecLinearization
from repro.swec.dc import SwecDC
from repro.swec.engine import SwecOptions, SwecTransient
from repro.swec.ensemble import EnsembleTransientResult, SwecEnsembleTransient
from repro.swec.timestep import AdaptiveStepController, StepControlOptions

__all__ = [
    "AdaptiveStepController",
    "EnsembleTransientResult",
    "StepControlOptions",
    "SwecDC",
    "SwecEnsembleTransient",
    "SwecLinearization",
    "SwecOptions",
    "SwecTransient",
]
