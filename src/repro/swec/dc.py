"""SWEC DC analysis: chord-conductance fixed point with continuation.

The paper's Section 5.1 sweeps a voltage divider (resistor + RTD) and plots
the device I-V, including the NDR branch.  At each sweep value we iterate

.. math::  (G_0 + G_{eq}(x_k))\\, x_{k+1} = b

where ``G_eq`` holds the chord conductances evaluated at the previous
iterate.  Each iteration is one small linear solve; warm-starting from the
previous sweep point (source continuation) keeps the iteration count at a
handful.  An adaptive damping factor handles the mild oscillation the
fixed point can exhibit near the NDR knees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dcsweep import DCSweepResult
from repro.circuit.netlist import Circuit
from repro.core.backends import available_backends, create_backend
from repro.errors import AnalysisError, ConvergenceError
from repro.mna.assembler import MnaSystem
from repro.swec.conductance import SwecLinearization


@dataclass
class SwecDCOptions:
    """Fixed-point iteration tunables.

    ``mode`` selects between two sweep styles:

    ``"fixed_point"``
        Iterate the chord fixed point to ``tolerance`` at every sweep
        value (most accurate; a handful of solves per point).
    ``"stepwise"``
        The paper's step-wise philosophy applied to DC: treat the sweep as
        a quasi-static ramp and perform exactly ``stepwise_solves`` linear
        solves per value, with the chord conductances carried over from
        the previous point.  One solve per point — the Table I costing.

    ``backend`` names the :mod:`repro.core.backends` solver used for
    every chord solve — ``"dense"`` (default), ``"sparse"`` for
    grid-scale circuits, or ``"auto"`` to select by size.
    """

    max_iterations: int = 100
    tolerance: float = 1e-9
    initial_damping: float = 1.0
    min_damping: float = 0.05
    mode: str = "fixed_point"
    stepwise_solves: int = 1
    backend: str = "dense"

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if not 0.0 < self.min_damping <= self.initial_damping <= 1.0:
            raise ValueError("need 0 < min_damping <= initial_damping <= 1")
        if self.mode not in ("fixed_point", "stepwise"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.stepwise_solves < 1:
            raise ValueError("stepwise_solves must be >= 1")
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(available: {', '.join(available_backends())})")


class SwecDC:
    """Chord-conductance DC solver with source continuation.

    Every iteration stamps the chord conductances and solves
    ``G(x_k) x_{k+1} = b`` through the :mod:`repro.core.backends`
    solver named by :attr:`SwecDCOptions.backend` — the same registry
    the transient engines resolve against.
    """

    def __init__(self, circuit: Circuit,
                 options: SwecDCOptions | None = None) -> None:
        self.circuit = circuit
        self.options = options or SwecDCOptions()
        self.system = MnaSystem(circuit)
        self.linearization = SwecLinearization(self.system,
                                               use_predictor=False)
        self._backend = create_backend(
            self.options.backend, [self.system], default="dense")

    @property
    def backend_name(self) -> str:
        """Registry name of the resolved solver backend."""
        return self._backend.name

    def _chord_solve(self, b: np.ndarray, x: np.ndarray,
                     result: DCSweepResult) -> np.ndarray:
        """Stamp ``G(x)`` and solve ``G x_new = b`` via the backend."""
        device_g = self.linearization.device_conductances(
            x, flops=result.flops)
        mosfet_g = self.linearization.mosfet_conductances(
            x, flops=result.flops)
        self._backend.stamp(device_g[None, :], mosfet_g[None, :])
        return self._backend.solve_conductance(b[None, :])[0]

    # ------------------------------------------------------------------

    def _locate_source(self, name: str):
        """Return ``("v", row)`` or ``("i", (p, n, source))`` for the
        swept source."""
        for source in self.circuit.voltage_sources:
            if source.name == name:
                return "v", self.system.vsource_index(name)
        for source in self.circuit.current_sources:
            if source.name == name:
                p = self.system.node_index(source.nodes[0])
                n = self.system.node_index(source.nodes[1])
                return "i", (p, n, source)
        raise AnalysisError(f"no independent source named {name!r}")

    def _force_source(self, b: np.ndarray, kind, location,
                      value: float) -> None:
        """Overwrite one source's contribution to *b* with *value*."""
        if kind == "v":
            b[location] = value
        else:
            p, n, source = location
            # Remove this source's own t=0 value, then inject ours
            # (identified by element, so parallel current sources on
            # the same node pair cannot be confused).
            self.system.stamp_current(b, p, n, -source.value(0.0))
            self.system.stamp_current(b, p, n, value)

    def _rhs_for(self, kind, location, value: float) -> np.ndarray:
        """Source vector at t=0 with the swept source forced to *value*."""
        b = self.system.source_vector(0.0)
        self._force_source(b, kind, location, value)
        return b

    # ------------------------------------------------------------------

    def solve_point(self, b: np.ndarray, x: np.ndarray,
                    result: DCSweepResult) -> tuple[np.ndarray, int, bool]:
        """Damped chord fixed point for one source value."""
        opts = self.options
        self._backend.begin_run(result.flops)
        damping = opts.initial_damping
        prev_delta = np.inf
        for iteration in range(1, opts.max_iterations + 1):
            x_new = self._chord_solve(b, x, result)
            delta = float(np.max(np.abs(x_new - x)))
            if delta < opts.tolerance:
                return x_new, iteration, True
            if delta >= prev_delta and damping > opts.min_damping:
                damping = max(damping * 0.5, opts.min_damping)
            prev_delta = delta
            x = x + damping * (x_new - x)
        return x, opts.max_iterations, False

    def solve_point_stepwise(self, b: np.ndarray, x: np.ndarray,
                             result: DCSweepResult):
        """Fixed number of chord solves (quasi-static ramp step)."""
        self._backend.begin_run(result.flops)
        solves = self.options.stepwise_solves
        for _ in range(solves):
            x = self._chord_solve(b, x, result)
        return x, solves, True

    def sweep(self, source_name: str, values) -> DCSweepResult:
        """Sweep *source_name* through *values* with continuation.

        Returns a :class:`DCSweepResult`; warm starts mean later points
        typically converge in 2-4 chord iterations (``fixed_point`` mode)
        or exactly ``stepwise_solves`` solves (``stepwise`` mode).
        """
        values = [float(v) for v in values]
        if not values:
            raise AnalysisError("sweep needs at least one value")
        kind, location = self._locate_source(source_name)
        result = DCSweepResult(self.circuit.nodes, source_name, engine="swec")
        x = self.system.initial_state()
        stepwise = self.options.mode == "stepwise"
        for value in values:
            b = self._rhs_for(kind, location, value)
            if stepwise:
                x, iterations, converged = self.solve_point_stepwise(
                    b, x, result)
            else:
                x, iterations, converged = self.solve_point(b, x, result)
            result.append(value, x, iterations, converged)
        return result

    def operating_point(self, overrides=None) -> np.ndarray:
        """Solve the DC bias point with every source at its ``t=0`` value.

        *overrides* maps independent-source names to forced DC values,
        applied on top of the ``t=0`` source vector — the small-signal
        (AC) analysis uses this to bias a circuit away from its stimulus
        waveform's initial value.  Returns the solved MNA state vector;
        raises :class:`~repro.errors.ConvergenceError` when the chord
        fixed point does not reach tolerance.
        """
        b = self.system.source_vector(0.0)
        for name, value in dict(overrides or {}).items():
            kind, location = self._locate_source(name)
            self._force_source(b, kind, location, float(value))
        result = DCSweepResult(self.circuit.nodes, source_name="(bias)",
                               engine="swec")
        x, iterations, converged = self.solve_point(
            b, self.system.initial_state(), result)
        if not converged:
            raise ConvergenceError(
                f"DC operating point of {self.circuit.name!r} did not "
                f"converge", iterations=iterations)
        return x

    # ------------------------------------------------------------------

    def device_currents(self, result: DCSweepResult,
                        device_name: str) -> np.ndarray:
        """Current through a named device at every sweep point."""
        for k, device in enumerate(self.circuit.devices):
            if device.name == device_name:
                anode, cathode = self.system.device_terminals()[k]
                states = result.states
                va = states[:, anode] if anode >= 0 else np.zeros(len(result))
                vc = states[:, cathode] if cathode >= 0 else np.zeros(len(result))
                return np.array([device.current(v) for v in (va - vc)])
        raise AnalysisError(f"no device named {device_name!r}")

    def device_voltages(self, result: DCSweepResult,
                        device_name: str) -> np.ndarray:
        """Branch voltage of a named device at every sweep point."""
        for k, device in enumerate(self.circuit.devices):
            if device.name == device_name:
                anode, cathode = self.system.device_terminals()[k]
                states = result.states
                va = states[:, anode] if anode >= 0 else np.zeros(len(result))
                vc = states[:, cathode] if cathode >= 0 else np.zeros(len(result))
                return np.asarray(va - vc)
        raise AnalysisError(f"no device named {device_name!r}")
