"""Nano-Sim: step-wise equivalent conductance statistical circuit simulator.

Reproduction of Sukhwani, Padmanabhan & Wang, *Nano-Sim: A Step Wise
Equivalent Conductance based Statistical Simulator for Nanotechnology
Circuit Design*, DATE 2005.

Quick start::

    from repro import Circuit, SchulmanRTD, SwecDC
    import numpy as np

    circuit = Circuit("divider")
    circuit.add_voltage_source("Vs", "in", "0", 0.0)
    circuit.add_resistor("R1", "in", "out", 10.0)
    circuit.add_device("X1", "out", "0", SchulmanRTD())
    result = SwecDC(circuit).sweep("Vs", np.linspace(0.0, 5.0, 251))

Package map (every subpackage):

- :mod:`repro.circuit` — netlists, elements, waveforms, parser
- :mod:`repro.devices` — RTD / RTT / nanowire / MOSFET / diode models
- :mod:`repro.mna` — modified nodal analysis assembly and solves
- :mod:`repro.core` — the unified solver-backend registry
  (dense/sparse/stack/auto) and the shared stamp-factor-solve-advance
  marching loop every transient path runs on
- :mod:`repro.swec` — the paper's SWEC transient and DC engines, plus
  the lockstep ensemble transient (K instances per batched solve)
- :mod:`repro.baselines` — SPICE-like NR, MLA and ACES-PWL comparators
- :mod:`repro.stochastic` — Wiener/EM statistical simulation (Section 4)
- :mod:`repro.ac` — small-signal AC sweeps, Bode measures, Johnson noise
- :mod:`repro.analysis` — result containers and measurements
- :mod:`repro.circuits_lib` — experiment circuits + sweepable templates
- :mod:`repro.perf` — flop accounting behind Table I
- :mod:`repro.runtime` — batched simulation runtime (process fan-out)
- :mod:`repro.sweep` — parametric design-space sweeps over the runtime
- :mod:`repro.lint` — static netlist/topology analysis (pre-flight
  checks for sweeps, jobs and the service)
- :mod:`repro.service` — job daemon + content-addressed result cache

The full package map and data flow are documented in
``docs/architecture.md``; ``docs/paper_map.md`` locates every paper
figure/table/equation in the code.
"""

from repro.ac import (
    ACAnalysis,
    ACResult,
    NoiseResult,
    frequency_grid,
    johnson_noise,
)
from repro.circuit import (
    Circuit,
    Clock,
    DC,
    PiecewiseLinear,
    Pulse,
    Sine,
    Step,
)
from repro.circuit.parser import parse_netlist
from repro.devices import (
    Diode,
    MosfetModel,
    MultiPeakRTT,
    NANO_SIM_DATE05,
    QuantizedNanowire,
    RTD_LOGIC,
    SCHULMAN_INGAAS,
    SchulmanParameters,
    SchulmanRTD,
    nmos,
    pmos,
)
from repro.errors import (
    AnalysisError,
    AssemblyError,
    CircuitError,
    ConvergenceError,
    LintError,
    NanoSimError,
    NetlistParseError,
    SingularMatrixError,
)
from repro.lint import (
    Diagnostic,
    LintReport,
    lint_circuit,
    lint_netlist,
)
from repro.swec import (
    SwecDC,
    SwecEnsembleTransient,
    SwecOptions,
    SwecTransient,
)
from repro.baselines import (
    AcesTransient,
    MlaDC,
    MlaTransient,
    SpiceDC,
    SpiceTransient,
)
from repro.stochastic import (
    CircuitSDE,
    LinearSDE,
    OrnsteinUhlenbeck,
    WienerProcess,
    euler_maruyama,
)
from repro.runtime import (
    ACJob,
    BatchReport,
    BatchRunner,
    EnsembleJob,
    EnsembleTransientJob,
    JobResult,
    TransientJob,
)

__version__ = "1.8.0"

__all__ = [
    "ACAnalysis",
    "ACJob",
    "ACResult",
    "AcesTransient",
    "AnalysisError",
    "AssemblyError",
    "BatchReport",
    "BatchRunner",
    "Circuit",
    "CircuitError",
    "CircuitSDE",
    "Clock",
    "ConvergenceError",
    "DC",
    "Diagnostic",
    "Diode",
    "EnsembleJob",
    "EnsembleTransientJob",
    "JobResult",
    "LinearSDE",
    "LintError",
    "LintReport",
    "MlaDC",
    "MlaTransient",
    "MosfetModel",
    "MultiPeakRTT",
    "NANO_SIM_DATE05",
    "NanoSimError",
    "NetlistParseError",
    "NoiseResult",
    "OrnsteinUhlenbeck",
    "PiecewiseLinear",
    "Pulse",
    "QuantizedNanowire",
    "RTD_LOGIC",
    "SCHULMAN_INGAAS",
    "SchulmanParameters",
    "SchulmanRTD",
    "Sine",
    "SingularMatrixError",
    "SpiceDC",
    "SpiceTransient",
    "Step",
    "SwecDC",
    "SwecEnsembleTransient",
    "SwecOptions",
    "SwecTransient",
    "TransientJob",
    "WienerProcess",
    "euler_maruyama",
    "frequency_grid",
    "johnson_noise",
    "lint_circuit",
    "lint_netlist",
    "nmos",
    "parse_netlist",
    "pmos",
    "__version__",
]
