"""Performance accounting: FLOP counters and engine comparisons.

Table I of the paper compares SWEC and MLA by *floating point operation
counts* rather than wall-clock time, because both were research prototypes.
We reproduce that: every engine threads a :class:`FlopCounter` through its
linear solves and device evaluations.
"""

from repro.perf.flops import (
    FlopCounter,
    device_eval_flops,
    lu_factor_flops,
    lu_solve_flops,
)

__all__ = [
    "FlopCounter",
    "device_eval_flops",
    "lu_factor_flops",
    "lu_solve_flops",
]
