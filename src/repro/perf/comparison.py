"""Engine-versus-engine cost comparison (Table I machinery).

The paper's Table I compares the floating-point operation counts of DC
simulations under SWEC and under its re-implementation of MLA, and the
headline claims a 20-30x speedup over SPICE-like simulation.  These
helpers run the same workload through any pair of engines and produce a
comparison row: flops, linear solves, iterations, wall-clock, speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class ComparisonRow:
    """One Table-I-style row comparing two engines on one workload."""

    workload: str
    swec_flops: int
    baseline_flops: int
    swec_solves: int
    baseline_solves: int
    swec_iterations: int
    baseline_iterations: int
    swec_seconds: float
    baseline_seconds: float
    baseline_name: str = "mla"

    @property
    def flop_speedup(self) -> float:
        """Baseline flops divided by SWEC flops."""
        return self.baseline_flops / max(self.swec_flops, 1)

    @property
    def wall_speedup(self) -> float:
        """Baseline wall-clock divided by SWEC wall-clock."""
        return self.baseline_seconds / max(self.swec_seconds, 1e-12)

    def as_table_line(self) -> str:
        """Fixed-width line for the Table I report."""
        return (f"{self.workload:<28} {self.swec_flops:>12,} "
                f"{self.baseline_flops:>12,} {self.flop_speedup:>7.1f}x "
                f"{self.swec_iterations:>6} {self.baseline_iterations:>6}")

    @staticmethod
    def header() -> str:
        """Column header matching :meth:`as_table_line`."""
        return (f"{'workload':<28} {'SWEC flops':>12} {'base flops':>12} "
                f"{'speedup':>8} {'SWECit':>6} {'baseit':>6}")


def compare_dc_sweep(workload_name: str, swec_engine, baseline_engine,
                     source_name: str, values,
                     baseline_name: str = "mla") -> ComparisonRow:
    """Run the same DC sweep through both engines and tally costs.

    Engines must expose ``sweep(source_name, values)`` returning a
    :class:`~repro.analysis.dcsweep.DCSweepResult`.
    """
    start = time.perf_counter()
    swec_result = swec_engine.sweep(source_name, values)
    swec_seconds = time.perf_counter() - start

    start = time.perf_counter()
    baseline_result = baseline_engine.sweep(source_name, values)
    baseline_seconds = time.perf_counter() - start

    return ComparisonRow(
        workload=workload_name,
        swec_flops=swec_result.flops.total,
        baseline_flops=baseline_result.flops.total,
        swec_solves=swec_result.flops.linear_solves,
        baseline_solves=baseline_result.flops.linear_solves,
        swec_iterations=swec_result.total_iterations,
        baseline_iterations=baseline_result.total_iterations,
        swec_seconds=swec_seconds,
        baseline_seconds=baseline_seconds,
        baseline_name=baseline_name,
    )


def compare_transient(workload_name: str, swec_engine, baseline_engine,
                      t_stop: float, baseline_h: float | None = None,
                      baseline_name: str = "spice") -> ComparisonRow:
    """Run the same transient through both engines and tally costs."""
    start = time.perf_counter()
    swec_result = swec_engine.run(t_stop)
    swec_seconds = time.perf_counter() - start

    start = time.perf_counter()
    baseline_result = baseline_engine.run(t_stop, h=baseline_h)
    baseline_seconds = time.perf_counter() - start

    return ComparisonRow(
        workload=workload_name,
        swec_flops=swec_result.flops.total,
        baseline_flops=baseline_result.flops.total,
        swec_solves=swec_result.flops.linear_solves,
        baseline_solves=baseline_result.flops.linear_solves,
        swec_iterations=0,
        baseline_iterations=sum(baseline_result.iteration_counts),
        swec_seconds=swec_seconds,
        baseline_seconds=baseline_seconds,
        baseline_name=baseline_name,
    )


def format_table(rows) -> str:
    """Render comparison rows as the Table I report."""
    lines = [ComparisonRow.header(), "-" * len(ComparisonRow.header())]
    lines.extend(row.as_table_line() for row in rows)
    return "\n".join(lines)
