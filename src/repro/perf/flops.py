"""Analytic floating-point operation accounting.

The counts are standard dense-linear-algebra formulas (Golub & Van Loan):

* LU factorization of an ``n x n`` matrix: ``2/3 n^3`` flops (leading term,
  plus the ``n^2`` lower-order terms we keep for small ``n`` honesty).
* Triangular solve pair: ``2 n^2`` flops.
* Device model evaluations are charged a per-model constant (an ``exp`` or
  ``atan`` is counted as one "elementary function" worth ``EF_COST``
  flops, the convention used by flop-count comparisons of simulators).

A :class:`FlopCounter` accumulates counts per category so reports can show
*where* an engine spends its operations (factorization vs device evals),
which is exactly the SWEC-vs-MLA story: MLA pays for repeated Newton
factorizations, SWEC pays one factorization per time point.
"""

from __future__ import annotations

from collections import Counter

#: Flops charged per elementary function call (exp, log, atan...).
EF_COST = 20

#: Flops charged per call for each device model family.
_DEVICE_EVAL_COSTS = {
    "rtd_current": 4 * EF_COST + 20,        # 2 softplus + atan + exp
    "rtd_conductance": 5 * EF_COST + 30,    # logistic pair + atan + exp
    "mosfet": 12,                            # polynomial only
    "diode": EF_COST + 4,
    "nanowire": 0,                           # filled in per-channel below
    "generic": 2 * EF_COST,
}


def lu_factor_flops(n: int) -> int:
    """Flops for LU factorization of an ``n x n`` dense matrix."""
    return (2 * n**3) // 3 + n**2


def lu_solve_flops(n: int) -> int:
    """Flops for the forward/back substitution pair."""
    return 2 * n**2


def device_eval_flops(kind: str, channels: int = 0) -> int:
    """Flops charged for one device-model evaluation of *kind*.

    ``channels`` scales the nanowire cost (one softplus per channel).
    """
    if kind == "nanowire":
        return (channels or 4) * (EF_COST + 4)
    try:
        return _DEVICE_EVAL_COSTS[kind]
    except KeyError:
        return _DEVICE_EVAL_COSTS["generic"]


class FlopCounter:
    """Accumulates flop counts per category.

    Categories used by the engines:

    - ``factor`` — LU factorizations
    - ``solve`` — triangular substitutions
    - ``device`` — nonlinear device model evaluations
    - ``assembly`` — matrix stamping and vector updates
    - ``overhead`` — step control, predictor arithmetic

    >>> flops = FlopCounter()
    >>> flops.add("factor", lu_factor_flops(3))
    >>> flops.total > 0
    True
    """

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()
        self.linear_solves = 0
        self.factorizations = 0
        self.device_evaluations = 0

    def add(self, category: str, count: int) -> None:
        """Add *count* flops to *category*."""
        if count < 0:
            raise ValueError(f"flop count must be non-negative, got {count}")
        self._counts[category] += int(count)

    def count_factorization(self, n: int, count: int = 1) -> None:
        """Record *count* ``n x n`` LU factorizations.

        The batched engines factor whole instance stacks per step; the
        bulk form records them in one call instead of K Python calls.
        """
        self.add("factor", count * lu_factor_flops(n))
        self.factorizations += count

    def count_solve(self, n: int, count: int = 1) -> None:
        """Record *count* forward/back substitution pairs."""
        self.add("solve", count * lu_solve_flops(n))
        self.linear_solves += count

    def count_device_eval(self, kind: str, channels: int = 0,
                          count: int = 1) -> None:
        """Record *count* device model evaluations."""
        self.add("device", count * device_eval_flops(kind, channels))
        self.device_evaluations += count

    @property
    def total(self) -> int:
        """Total flops across all categories."""
        return sum(self._counts.values())

    def by_category(self) -> dict[str, int]:
        """Return a copy of the per-category counts."""
        return dict(self._counts)

    def merge(self, other: "FlopCounter") -> None:
        """Fold *other*'s counts into this counter."""
        self._counts.update(other._counts)
        self.linear_solves += other.linear_solves
        self.factorizations += other.factorizations
        self.device_evaluations += other.device_evaluations

    def report(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"total flops: {self.total:,}"]
        for category in sorted(self._counts):
            lines.append(f"  {category:<10} {self._counts[category]:,}")
        lines.append(f"  linear solves: {self.linear_solves}, "
                     f"factorizations: {self.factorizations}, "
                     f"device evals: {self.device_evaluations}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"FlopCounter(total={self.total})"
