"""Sweepable circuit/SDE template registry.

The sweep subsystem addresses :mod:`repro.circuits_lib` builders by
name; this registry records, per builder, which keyword arguments are
*numerically sweepable* (a parameter axis can range over them) and what
the template measures by default.  Registering here is what makes a
factory show up in ``python -m repro.sweep --list-templates`` and lets
:mod:`repro.sweep.spec` reject typo'd axis names before any job runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import SweepSpecError

__all__ = [
    "CircuitTemplate",
    "TEMPLATES",
    "get_template",
    "register_template",
]


@dataclass(frozen=True)
class CircuitTemplate:
    """Metadata for one sweepable builder.

    Attributes
    ----------
    name:
        Registry key; matches the builder's importable name.
    kind:
        ``"circuit"`` (deterministic transient) or ``"sde"``
        (stochastic ensemble).
    description:
        One line for ``--list-templates``.
    sweepable:
        Keyword arguments a parameter axis may range over.  Every entry
        accepts a float (integer-valued floats are cast for ``int``
        parameters such as grid sizes).
    integer_params:
        The subset of ``sweepable`` that must be integral.
    default_node:
        Node whose waveform measures act on when a measure omits
        ``node=`` (circuit templates only).
    ac_source:
        Independent source an ``analysis = "ac"`` sweep excites when
        the spec omits ``source=`` (circuit templates only).
    """

    name: str
    kind: str
    description: str
    sweepable: tuple[str, ...]
    integer_params: tuple[str, ...] = ()
    default_node: str | None = None
    ac_source: str | None = None

    def coerce(self, params: dict) -> dict:
        """Cast integer-valued parameters; reject non-sweepable names."""
        coerced = {}
        for key, value in params.items():
            if key not in self.sweepable:
                raise SweepSpecError(
                    f"template {self.name!r} has no sweepable parameter "
                    f"{key!r} (has: {', '.join(self.sweepable)})")
            coerced[key] = int(value) if key in self.integer_params \
                else value
        return coerced


#: Registered templates, by name.
TEMPLATES: dict[str, CircuitTemplate] = {}


def register_template(template: CircuitTemplate) -> CircuitTemplate:
    """Add *template* to the registry (duplicate names are an error)."""
    if template.name in TEMPLATES:
        raise SweepSpecError(
            f"template {template.name!r} is already registered")
    if template.kind not in ("circuit", "sde"):
        raise SweepSpecError(
            f"template kind must be 'circuit' or 'sde', "
            f"got {template.kind!r}")
    TEMPLATES[template.name] = template
    return template


def get_template(name: str) -> CircuitTemplate:
    """Look up a template; raises :class:`SweepSpecError` when unknown."""
    template = TEMPLATES.get(name)
    if template is None:
        raise SweepSpecError(
            f"unknown template {name!r} "
            f"(available: {', '.join(sorted(TEMPLATES))})")
    return template


def _register_builtins() -> None:
    for template in (
        CircuitTemplate(
            name="rtd_divider", kind="circuit",
            description="series resistor + RTD divider (Fig. 7a)",
            sweepable=("resistance",), default_node="out",
            ac_source="Vs"),
        CircuitTemplate(
            name="nanowire_divider", kind="circuit",
            description="series resistor + quantized nanowire (Fig. 7b)",
            sweepable=("resistance",), default_node="out",
            ac_source="Vs"),
        CircuitTemplate(
            name="rtd_chain", kind="circuit",
            description="ladder of R-RTD sections (Table I scaling)",
            sweepable=("stages", "resistance"),
            integer_params=("stages",), default_node="n1",
            ac_source="Vs"),
        CircuitTemplate(
            name="fet_rtd_inverter", kind="circuit",
            description="MOBILE FET-RTD inverter (Fig. 8a)",
            sweepable=("vdd", "load_area", "drive_area", "fet_beta",
                       "fet_vth", "load_capacitance"),
            default_node="out", ac_source="Vin"),
        CircuitTemplate(
            name="mobile_dflipflop", kind="circuit",
            description="RTD-D flip-flop (Fig. 9a)",
            sweepable=("load_area", "drive_area", "fet_beta", "fet_vth",
                       "output_capacitance"),
            default_node="q", ac_source="Vd"),
        CircuitTemplate(
            name="rtd_mesh", kind="circuit",
            description="rows x cols RTD/RC mesh (sparse-path workload)",
            sweepable=("rows", "cols", "mesh_resistance",
                       "node_capacitance", "rtd_area", "drive"),
            integer_params=("rows", "cols"), default_node="n0_0",
            ac_source="Vs"),
        CircuitTemplate(
            name="rc_mesh", kind="circuit",
            description="linear RC interconnect mesh",
            sweepable=("rows", "cols", "mesh_resistance",
                       "node_capacitance", "drive"),
            integer_params=("rows", "cols"), default_node="n0_0",
            ac_source="Vs"),
        CircuitTemplate(
            name="rtd_relaxation_oscillator", kind="circuit",
            description="free-running RTD-LC relaxation oscillator "
                        "(autonomous PSS target)",
            sweepable=("inductance", "capacitance", "bias", "rtd_area"),
            default_node="out", ac_source="Vb"),
        CircuitTemplate(
            name="coupled_oscillator_bank", kind="circuit",
            description="resistively coupled, detuned RTD oscillators",
            sweepable=("count", "coupling_resistance", "detune",
                       "inductance", "capacitance", "bias", "rtd_area"),
            integer_params=("count",), default_node="out0",
            ac_source="Vb"),
        CircuitTemplate(
            name="rtd_memory_array", kind="circuit",
            description="rows x cols RTD memory cells with staggered "
                        "word-line clocks",
            sweepable=("rows", "cols", "access_resistance",
                       "column_resistance", "cell_capacitance",
                       "rtd_area", "word_period", "word_high"),
            integer_params=("rows", "cols"), default_node="m0_0",
            ac_source="Vw0"),
        CircuitTemplate(
            name="power_grid_mesh", kind="circuit",
            description="N x N supply mesh with distributed load and "
                        "sinusoidal ripple",
            sweepable=("rows", "cols", "grid_resistance",
                       "load_resistance", "decap", "vdd", "ripple",
                       "ripple_frequency"),
            integer_params=("rows", "cols"), default_node="n0_0",
            ac_source="Vdd"),
        CircuitTemplate(
            name="noisy_rc_node", kind="sde",
            description="single RC node with white-noise current (Sec. 4)",
            sweepable=("resistance", "capacitance", "drive",
                       "noise_amplitude")),
        CircuitTemplate(
            name="noisy_rc_ladder", kind="sde",
            description="RC ladder with noise injection at the far end",
            sweepable=("stages", "resistance", "capacitance", "drive",
                       "noise_amplitude"),
            integer_params=("stages",)),
        CircuitTemplate(
            name="ornstein_uhlenbeck", kind="sde",
            description="scalar OU process dX = (a - l X)dt + s dW",
            sweepable=("decay_rate", "noise_amplitude", "drift_level")),
    ):
        register_template(template)


_register_builtins()


def builder_for(template: CircuitTemplate) -> Callable:
    """Resolve the callable a template names.

    Circuit templates resolve against :mod:`repro.circuits_lib`; SDE
    templates against :data:`repro.runtime.jobs.SDE_BUILDERS`.
    """
    if template.kind == "circuit":
        import repro.circuits_lib as lib

        return getattr(lib, template.name)
    from repro.runtime.jobs import SDE_BUILDERS

    return SDE_BUILDERS[template.name]
