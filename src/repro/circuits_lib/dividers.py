"""Voltage-divider test circuits (paper Section 5.1, Fig. 7, Table I).

The paper's DC experiments sweep a source across a series combination of
a resistor and a nanodevice and plot the device I-V.  A small series
resistance keeps the load line single-valued (the curve tracks the full
NDR region); a large one makes the load line bistable — the stress case
for Newton-based solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit import Circuit
from repro.devices import (
    QuantizedNanowire,
    SCHULMAN_INGAAS,
    SchulmanParameters,
    SchulmanRTD,
)


@dataclass(frozen=True)
class DividerInfo:
    """Node and element names of a divider circuit."""

    source: str = "Vs"
    input_node: str = "in"
    device_node: str = "out"
    device: str = "X1"
    resistor: str = "R1"


def rtd_divider(resistance: float = 10.0,
                parameters: SchulmanParameters = SCHULMAN_INGAAS,
                ) -> tuple[Circuit, DividerInfo]:
    """Series resistor + RTD across a voltage source (Fig. 7(a)).

    The default 10-ohm series resistance keeps the load line unique at
    every bias so the sweep can trace the NDR branch; pass a few hundred
    ohms to create the bistable case.
    """
    info = DividerInfo()
    circuit = Circuit("rtd-divider")
    circuit.add_voltage_source(info.source, info.input_node, "0", 0.0)
    circuit.add_resistor(info.resistor, info.input_node, info.device_node,
                         resistance)
    circuit.add_device(info.device, info.device_node, "0",
                       SchulmanRTD(parameters))
    return circuit, info


def nanowire_divider(resistance: float = 1e4,
                     nanowire: QuantizedNanowire | None = None,
                     ) -> tuple[Circuit, DividerInfo]:
    """Series resistor + quantized nanowire (Fig. 7(b)).

    The default series resistance is comparable to the conductance-quantum
    scale (``1/G0 ~ 12.9 kOhm``) so the divider actually divides.
    """
    info = DividerInfo()
    circuit = Circuit("nanowire-divider")
    circuit.add_voltage_source(info.source, info.input_node, "0", 0.0)
    circuit.add_resistor(info.resistor, info.input_node, info.device_node,
                         resistance)
    circuit.add_device(info.device, info.device_node, "0",
                       nanowire or QuantizedNanowire())
    return circuit, info


def rtd_chain(stages: int,
              resistance: float = 50.0,
              parameters: SchulmanParameters = SCHULMAN_INGAAS,
              ) -> tuple[Circuit, DividerInfo]:
    """A ladder of ``stages`` R-RTD sections — the scaling workload.

    Node ``n<k>`` carries the k-th RTD; the Table I ablation uses chains
    of increasing length to show how the SWEC/MLA flop ratio scales with
    matrix size.
    """
    if stages < 1:
        raise ValueError(f"need at least one stage, got {stages!r}")
    info = DividerInfo(device_node="n1", device="X1")
    circuit = Circuit(f"rtd-chain-{stages}")
    circuit.add_voltage_source(info.source, info.input_node, "0", 0.0)
    previous = info.input_node
    for k in range(1, stages + 1):
        node = f"n{k}"
        circuit.add_resistor(f"R{k}", previous, node, resistance)
        circuit.add_device(f"X{k}", node, "0", SchulmanRTD(parameters))
        previous = node
    return circuit, info
