"""Ready-made circuits used by the paper's experiments.

Each builder returns a fully wired :class:`~repro.circuit.Circuit` plus a
small info record documenting node names and design values, so examples,
tests and benches all simulate exactly the same topologies.
"""

from repro.circuits_lib.dividers import (
    nanowire_divider,
    rtd_chain,
    rtd_divider,
)
from repro.circuits_lib.flipflop import mobile_dflipflop
from repro.circuits_lib.grids import rc_mesh, rtd_mesh
from repro.circuits_lib.inverter import fet_rtd_inverter
from repro.circuits_lib.noisy_rc import noisy_rc_node, noisy_rc_ladder

__all__ = [
    "fet_rtd_inverter",
    "mobile_dflipflop",
    "nanowire_divider",
    "noisy_rc_ladder",
    "noisy_rc_node",
    "rc_mesh",
    "rtd_chain",
    "rtd_divider",
    "rtd_mesh",
]
