"""Ready-made circuits used by the paper's experiments.

Each builder returns a fully wired :class:`~repro.circuit.Circuit` plus a
small info record documenting node names and design values, so examples,
tests and benches all simulate exactly the same topologies.  Builders
are registered as sweepable templates in
:mod:`repro.circuits_lib.templates`, which is how the
:mod:`repro.sweep` subsystem addresses them by name and validates
which keyword arguments a parameter axis may range over.
"""

from repro.circuits_lib.arrays import (
    coupled_oscillator_bank,
    power_grid_mesh,
    rtd_memory_array,
    rtd_relaxation_oscillator,
)
from repro.circuits_lib.dividers import (
    nanowire_divider,
    rtd_chain,
    rtd_divider,
)
from repro.circuits_lib.flipflop import mobile_dflipflop
from repro.circuits_lib.grids import rc_mesh, rtd_mesh
from repro.circuits_lib.inverter import fet_rtd_inverter
from repro.circuits_lib.noisy_rc import noisy_rc_node, noisy_rc_ladder
from repro.circuits_lib.templates import (
    TEMPLATES,
    CircuitTemplate,
    get_template,
    register_template,
)

__all__ = [
    "CircuitTemplate",
    "TEMPLATES",
    "coupled_oscillator_bank",
    "fet_rtd_inverter",
    "get_template",
    "mobile_dflipflop",
    "nanowire_divider",
    "noisy_rc_ladder",
    "noisy_rc_node",
    "power_grid_mesh",
    "rc_mesh",
    "register_template",
    "rtd_chain",
    "rtd_divider",
    "rtd_memory_array",
    "rtd_mesh",
    "rtd_relaxation_oscillator",
]
