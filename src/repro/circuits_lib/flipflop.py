"""RTD-D flip-flop (MOBILE latch) of paper Fig. 9.

The monostable-bistable transition logic element (MOBILE, Mazumder et al.,
Proc. IEEE 1998 — the paper's ref. [6]) stacks two RTDs between a clocked
bias and ground.  While the clock is low the circuit is monostable (output
near zero).  As the clock rises past roughly twice the RTD peak voltage
the series pair turns bistable, and the RTD with the *smaller* peak
current switches into its high-voltage state:

* data low  -> load peak < driver peak  -> the **load** RTD switches,
  the output stays low;
* data high -> the data FET (in parallel with the load) adds drive, so
  the **driver** RTD switches and the output latches high.

The latched value holds until the clock falls — a clocked D latch whose
output changes only on rising clock edges, exactly the Fig. 9 behaviour
(data toggles at 300 ns, output follows at the 350 ns rising edge).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit import Circuit, Pulse, Waveform
from repro.circuit.sources import as_waveform
from repro.devices import RTD_LOGIC, SchulmanParameters, SchulmanRTD, nmos


@dataclass(frozen=True)
class FlipFlopInfo:
    """Node names, clocking and logic levels of the MOBILE latch."""

    clock_node: str = "clk"
    data_node: str = "d"
    output_node: str = "q"
    clock_high: float = 1.15
    data_high: float = 1.2
    clock_period: float = 100e-9
    #: First rising clock edge (edges repeat every ``clock_period``).
    first_rising_edge: float = 50e-9
    v_q_high: float = 1.12
    v_q_low: float = 0.03


def default_clock(info: FlipFlopInfo | None = None) -> Pulse:
    """Fig. 9(b)-style clock: rising edges at 50, 150, 250, 350 ns."""
    info = info or FlipFlopInfo()
    return Pulse(0.0, info.clock_high,
                 delay=info.first_rising_edge,
                 rise=2e-9, fall=2e-9,
                 width=info.clock_period / 2.0 - 2e-9,
                 period=info.clock_period)


def default_data(info: FlipFlopInfo | None = None) -> Pulse:
    """Fig. 9(c) data: low, switching high at t = 300 ns."""
    info = info or FlipFlopInfo()
    return Pulse(0.0, info.data_high, delay=300e-9, rise=2e-9,
                 fall=2e-9, width=1.0, period=float("inf"))


def mobile_dflipflop(clock: Waveform | float | None = None,
                     data: Waveform | float | None = None,
                     load_area: float = 0.10,
                     drive_area: float = 0.12,
                     fet_beta: float = 0.1,
                     fet_vth: float = 0.2,
                     output_capacitance: float = 0.5e-12,
                     parameters: SchulmanParameters = RTD_LOGIC,
                     ) -> tuple[Circuit, FlipFlopInfo]:
    """Build the Fig. 9(a) RTD-D flip-flop.

    ``load_area < drive_area`` makes the load RTD switch (output low) by
    default; the data FET sits in parallel with the load RTD so a high
    data input reverses the peak-current comparison and the output
    latches high.
    """
    info = FlipFlopInfo()
    circuit = Circuit("rtd-d-flipflop")
    circuit.add_voltage_source("Vclk", info.clock_node, "0",
                               default_clock(info) if clock is None
                               else as_waveform(clock))
    circuit.add_voltage_source("Vd", info.data_node, "0",
                               default_data(info) if data is None
                               else as_waveform(data))
    rtd = SchulmanRTD(parameters)
    circuit.add_device("Xload", info.clock_node, info.output_node, rtd,
                       multiplicity=load_area)
    circuit.add_device("Xdrive", info.output_node, "0", rtd,
                       multiplicity=drive_area)
    # Data FET in parallel with the load RTD: drain at the clock rail,
    # source at the output, gate at the data input.
    circuit.add_mosfet("M1", info.clock_node, info.data_node,
                       info.output_node,
                       nmos(kp=fet_beta, w=1.0, l=1.0, vth=fet_vth))
    circuit.add_capacitor("Cq", info.output_node, "0", output_capacitance)
    circuit.add_capacitor("Cd", info.data_node, "0",
                          output_capacitance / 10.0)
    return circuit, info
