"""Regular-array workloads: oscillators, RTD memory, power meshes.

The paper's target applications are exactly these shapes — free-running
RTD oscillators, clocked RTD logic arrays, and the large regular
interconnect fabrics that make per-step cost matter.  The builders here
give the periodic-steady-state engine (:mod:`repro.pss`) its natural
workloads and feed the backend selector, sweep and service layers
genuinely different size/sparsity profiles:

* :func:`rtd_relaxation_oscillator` — the canonical autonomous PSS
  target: an NDR device across an LC tank relaxation-oscillates with
  no drive at all;
* :func:`coupled_oscillator_bank` — N detuned oscillators coupled
  through resistors, the injection-locking testbed;
* :func:`rtd_memory_array` — a rows x cols RTD cell array clocked by
  staggered word-line pulses (driven PSS, one shared period);
* :func:`power_grid_mesh` — an N x N supply mesh with distributed
  load and decap plus a sinusoidal supply ripple; purely linear, so it
  scales past 30x30 for the sparse/stack backend ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit import Circuit
from repro.circuit.sources import Pulse, Sine
from repro.devices import SCHULMAN_INGAAS, SchulmanParameters, SchulmanRTD

__all__ = [
    "CoupledBankInfo",
    "MemoryArrayInfo",
    "OscillatorInfo",
    "PowerGridInfo",
    "coupled_oscillator_bank",
    "power_grid_mesh",
    "rtd_memory_array",
    "rtd_relaxation_oscillator",
]


@dataclass(frozen=True)
class OscillatorInfo:
    """Design record of one RTD relaxation oscillator."""

    output: str
    period_guess: float
    bias: float


def rtd_relaxation_oscillator(
        inductance: float = 10e-9,
        capacitance: float = 1e-12,
        bias: float = 1.1,
        rtd_area: float = 1.0,
        parameters: SchulmanParameters = SCHULMAN_INGAAS,
) -> tuple[Circuit, OscillatorInfo]:
    """Free-running RTD relaxation oscillator (autonomous PSS target).

    A DC bias feeds an LC tank whose capacitor is shunted by an RTD
    biased into its negative-differential-resistance region; the NDR
    pumps the tank and the orbit relaxes between the two positive-
    resistance branches.  The DC operating point is an unstable
    equilibrium, so a transient from the capacitor's zero initial
    voltage spirals out to the limit cycle.

    ``info.period_guess`` is the LC scale ``2 pi sqrt(L C)`` — the
    right order of magnitude for :class:`~repro.pss.PSSOptions`'
    ``period_guess`` (the settle horizon tolerates factor-of-two
    error).
    """
    if inductance <= 0.0 or capacitance <= 0.0:
        raise ValueError(
            f"need positive L and C, got {inductance!r}, {capacitance!r}")
    circuit = Circuit("rtd-relaxation-oscillator")
    circuit.add_voltage_source("Vb", "vdd", "0", bias)
    circuit.add_inductor("L1", "vdd", "out", inductance)
    circuit.add_capacitor("C1", "out", "0", capacitance,
                          initial_voltage=0.0)
    circuit.add_device("X1", "out", "0", SchulmanRTD(parameters),
                       multiplicity=rtd_area)
    period_guess = 2.0 * math.pi * math.sqrt(inductance * capacitance)
    return circuit, OscillatorInfo(output="out",
                                   period_guess=period_guess, bias=bias)


@dataclass(frozen=True)
class CoupledBankInfo:
    """Design record of a coupled oscillator bank."""

    outputs: tuple[str, ...]
    period_guess: float
    bias: float


def coupled_oscillator_bank(
        count: int = 3,
        coupling_resistance: float = 2e3,
        detune: float = 0.05,
        inductance: float = 10e-9,
        capacitance: float = 1e-12,
        bias: float = 1.1,
        rtd_area: float = 1.0,
        parameters: SchulmanParameters = SCHULMAN_INGAAS,
) -> tuple[Circuit, CoupledBankInfo]:
    """Chain of *count* RTD oscillators coupled through resistors.

    Cell ``k`` is an :func:`rtd_relaxation_oscillator` with its tank
    capacitor scaled by ``1 + detune * k`` (so the uncoupled cells
    would free-run at distinct frequencies); neighbouring outputs are
    tied through ``coupling_resistance``.  Strong coupling locks the
    bank to one shared orbit — an autonomous PSS problem whose state
    dimension grows as ``2 * count + 2``.
    """
    if count < 1:
        raise ValueError(f"need at least one oscillator, got {count!r}")
    if detune < 0.0:
        raise ValueError(f"detune must be >= 0, got {detune!r}")
    circuit = Circuit(f"coupled-oscillator-bank-{count}")
    circuit.add_voltage_source("Vb", "vdd", "0", bias)
    rtd = SchulmanRTD(parameters)
    outputs = []
    for k in range(count):
        node = f"out{k}"
        outputs.append(node)
        circuit.add_inductor(f"L{k}", "vdd", node, inductance)
        circuit.add_capacitor(f"C{k}", node, "0",
                              capacitance * (1.0 + detune * k),
                              initial_voltage=0.0)
        circuit.add_device(f"X{k}", node, "0", rtd, multiplicity=rtd_area)
        if k > 0:
            circuit.add_resistor(f"Rc{k}", outputs[k - 1], node,
                                 coupling_resistance)
    period_guess = 2.0 * math.pi * math.sqrt(
        inductance * capacitance * (1.0 + 0.5 * detune * (count - 1)))
    return circuit, CoupledBankInfo(outputs=tuple(outputs),
                                    period_guess=period_guess, bias=bias)


@dataclass(frozen=True)
class MemoryArrayInfo:
    """Design record of an RTD memory array."""

    rows: int
    cols: int
    cell_nodes: tuple[str, ...]
    word_lines: tuple[str, ...]
    word_period: float


def rtd_memory_array(
        rows: int = 4,
        cols: int = 4,
        access_resistance: float = 1e3,
        column_resistance: float = 5e3,
        cell_capacitance: float = 0.1e-12,
        rtd_area: float = 0.05,
        word_period: float = 4e-9,
        word_high: float = 1.0,
        parameters: SchulmanParameters = SCHULMAN_INGAAS,
) -> tuple[Circuit, MemoryArrayInfo]:
    """``rows x cols`` RTD cell array with staggered word-line clocks.

    Each cell is the classic one-RTD-one-capacitor store (the RTD's
    bistable load line holds the state); row ``r``'s word line is a
    pulse of the shared ``word_period`` delayed by ``r / rows`` of a
    period, feeding every cell in the row through
    ``access_resistance``, and vertically adjacent cells couple
    through ``column_resistance``.  All sources share one period, so
    driven PSS auto-detects it; cell nodes are ``m<r>_<c>``.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"need a positive array, got {rows}x{cols}")
    if word_period <= 0.0:
        raise ValueError(
            f"word_period must be positive, got {word_period!r}")
    circuit = Circuit(f"rtd-memory-{rows}x{cols}")
    rtd = SchulmanRTD(parameters)
    cell_nodes = []
    word_lines = []
    edge = 0.02 * word_period
    width = 0.5 * word_period - edge
    for r in range(rows):
        word = f"w{r}"
        word_lines.append(word)
        circuit.add_voltage_source(
            f"Vw{r}", word, "0",
            Pulse(0.0, word_high, delay=r * word_period / rows,
                  rise=edge, fall=edge, width=width, period=word_period))
    for r in range(rows):
        for c in range(cols):
            node = f"m{r}_{c}"
            cell_nodes.append(node)
            circuit.add_resistor(f"Ra{r}_{c}", f"w{r}", node,
                                 access_resistance)
            circuit.add_capacitor(f"C{r}_{c}", node, "0",
                                  cell_capacitance)
            circuit.add_device(f"X{r}_{c}", node, "0", rtd,
                               multiplicity=rtd_area)
            if r + 1 < rows:
                circuit.add_resistor(f"Rc{r}_{c}", node, f"m{r + 1}_{c}",
                                     column_resistance)
    return circuit, MemoryArrayInfo(
        rows=rows, cols=cols, cell_nodes=tuple(cell_nodes),
        word_lines=tuple(word_lines), word_period=word_period)


@dataclass(frozen=True)
class PowerGridInfo:
    """Design record of a power-grid mesh."""

    rows: int
    cols: int
    corner: str
    far_corner: str
    ripple_period: float


def power_grid_mesh(
        rows: int = 32,
        cols: int = 32,
        grid_resistance: float = 0.5,
        load_resistance: float = 200.0,
        decap: float = 1e-12,
        vdd: float = 1.0,
        ripple: float = 0.05,
        ripple_frequency: float = 1e8,
) -> tuple[Circuit, PowerGridInfo]:
    """``rows x cols`` supply mesh with distributed load and ripple.

    A supply with a sinusoidal ripple (``vdd + ripple * sin``) drives
    the corner of a resistive mesh; every node carries a decoupling
    capacitor and a resistive load to ground.  Purely linear, so at
    the default 32x32 (1025 MNA unknowns) it exercises the sparse and
    stack backends well past the 30x30 mark; driven PSS on smaller
    instances converges in one Newton iteration.  Node names are
    ``n<r>_<c>``; the IR-drop observable is the far corner.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"need a positive grid, got {rows}x{cols}")
    if ripple_frequency <= 0.0:
        raise ValueError(
            f"ripple_frequency must be positive, got {ripple_frequency!r}")
    circuit = Circuit(f"power-grid-{rows}x{cols}")
    circuit.add_voltage_source(
        "Vdd", "supply", "0", Sine(vdd, ripple, ripple_frequency))
    circuit.add_resistor("Rpkg", "supply", "n0_0", grid_resistance)
    for r in range(rows):
        for c in range(cols):
            node = f"n{r}_{c}"
            if c + 1 < cols:
                circuit.add_resistor(f"Rh{r}_{c}", node, f"n{r}_{c + 1}",
                                     grid_resistance)
            if r + 1 < rows:
                circuit.add_resistor(f"Rv{r}_{c}", node, f"n{r + 1}_{c}",
                                     grid_resistance)
            circuit.add_resistor(f"Rl{r}_{c}", node, "0", load_resistance)
            circuit.add_capacitor(f"Cd{r}_{c}", node, "0", decap)
    return circuit, PowerGridInfo(
        rows=rows, cols=cols, corner="n0_0",
        far_corner=f"n{rows - 1}_{cols - 1}",
        ripple_period=1.0 / ripple_frequency)
