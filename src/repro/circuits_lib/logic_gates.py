"""MOBILE RTD-FET logic gates (Mazumder et al., the paper's ref. [6]).

The RTD-D flip-flop of Fig. 9 is one member of the MOBILE family: two
stacked RTDs under a clocked bias latch according to which side's peak
current is larger at the rising edge.  Input FETs in parallel with the
load RTD *add* to the load side (latch high when on); FETs in parallel
with the driver RTD add to the driver side (keep low when on).  Wiring
several input FETs gives the full gate family:

* ``mobile_buffer``  — one FET on the load side (q follows the input);
* ``mobile_inverter`` — one FET on the driver side (q inverts);
* ``mobile_nor``     — two driver-side FETs (either input holds q low)
  on a load-biased latch that otherwise latches high;
* ``mobile_nand``    — two *series* driver-side FETs (both inputs must
  conduct to hold q low).

All gates reuse the flip-flop's verified design values (RTD_LOGIC
devices, 1.15 V clock, 1.2 V logic-high inputs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit import Circuit, Pulse, Waveform
from repro.circuit.sources import as_waveform
from repro.devices import RTD_LOGIC, SchulmanParameters, SchulmanRTD, nmos


@dataclass(frozen=True)
class GateInfo:
    """Node names and logic levels of a MOBILE gate."""

    clock_node: str = "clk"
    output_node: str = "q"
    input_nodes: tuple[str, ...] = ("a",)
    clock_high: float = 1.15
    input_high: float = 1.2
    v_q_high: float = 1.12
    v_q_low: float = 0.03


def gate_clock(period: float = 20e-9, delay: float = 1e-9,
               rise: float = 1e-9) -> Pulse:
    """Default gate clock with *slow* (1 ns) edges.

    The default-high gates rely on the monostable-to-bistable fold: the
    output must track the quasi-static branch during the clock ramp, so
    the edge has to be slow against the latch RC (~0.1 ns).  A too-fast
    edge drives the *load* RTD past its peak while the output still
    lags, latching the wrong state — a physical MOBILE constraint, not a
    simulator artifact.
    """
    return Pulse(0.0, GateInfo().clock_high, delay=delay, rise=rise,
                 fall=rise, width=period / 2.0 - rise, period=period)


def _latch_core(circuit: Circuit, info: GateInfo, clock,
                load_area: float, drive_area: float,
                parameters: SchulmanParameters,
                output_capacitance: float) -> None:
    """Clock source + stacked RTD pair + output capacitor."""
    circuit.add_voltage_source("Vclk", info.clock_node, "0",
                               gate_clock()
                               if clock is None else as_waveform(clock))
    rtd = SchulmanRTD(parameters)
    circuit.add_device("Xload", info.clock_node, info.output_node, rtd,
                       multiplicity=load_area)
    circuit.add_device("Xdrive", info.output_node, "0", rtd,
                       multiplicity=drive_area)
    circuit.add_capacitor("Cq", info.output_node, "0", output_capacitance)


def mobile_buffer(input_a: "Waveform | float",
                  clock: "Waveform | float | None" = None,
                  parameters: SchulmanParameters = RTD_LOGIC,
                  output_capacitance: float = 2e-12,
                  ) -> tuple[Circuit, GateInfo]:
    """Clocked buffer: q latches to the input value at rising edges.

    Identical topology to the Fig. 9 flip-flop (load-side input FET,
    ``load < drive`` so the default latch state is low).
    """
    info = GateInfo(input_nodes=("a",))
    circuit = Circuit("mobile-buffer")
    _latch_core(circuit, info, clock, 0.10, 0.12, parameters,
                output_capacitance)
    circuit.add_voltage_source("Va", "a", "0", as_waveform(input_a))
    circuit.add_mosfet("M1", info.clock_node, "a", info.output_node,
                       nmos(kp=0.1, w=1.0, l=1.0, vth=0.2))
    circuit.add_capacitor("Ca", "a", "0", output_capacitance / 10.0)
    return circuit, info


def mobile_inverter(input_a: "Waveform | float",
                    clock: "Waveform | float | None" = None,
                    parameters: SchulmanParameters = RTD_LOGIC,
                    output_capacitance: float = 2e-12,
                    ) -> tuple[Circuit, GateInfo]:
    """Clocked inverter: driver-side input FET on a high-biased latch.

    ``load > drive`` makes the default state high; a conducting input
    FET strengthens the driver side and forces the latch low.
    """
    info = GateInfo(input_nodes=("a",))
    circuit = Circuit("mobile-inverter")
    _latch_core(circuit, info, clock, 0.12, 0.10, parameters,
                output_capacitance)
    circuit.add_voltage_source("Va", "a", "0", as_waveform(input_a))
    # FET in parallel with the DRIVER RTD: drain at q, source at ground.
    circuit.add_mosfet("M1", info.output_node, "a", "0",
                       nmos(kp=0.1, w=1.0, l=1.0, vth=0.2))
    circuit.add_capacitor("Ca", "a", "0", output_capacitance / 10.0)
    return circuit, info


def mobile_nor(input_a: "Waveform | float", input_b: "Waveform | float",
               clock: "Waveform | float | None" = None,
               parameters: SchulmanParameters = RTD_LOGIC,
               output_capacitance: float = 2e-12,
               ) -> tuple[Circuit, GateInfo]:
    """NOR: two parallel driver-side FETs — either input forces q low."""
    info = GateInfo(input_nodes=("a", "b"))
    circuit = Circuit("mobile-nor")
    _latch_core(circuit, info, clock, 0.12, 0.10, parameters,
                output_capacitance)
    for node, waveform in (("a", input_a), ("b", input_b)):
        circuit.add_voltage_source(f"V{node}", node, "0",
                                   as_waveform(waveform))
        circuit.add_mosfet(f"M{node}", info.output_node, node, "0",
                           nmos(kp=0.1, w=1.0, l=1.0, vth=0.2))
        circuit.add_capacitor(f"C{node}", node, "0",
                              output_capacitance / 10.0)
    return circuit, info


def mobile_nand(input_a: "Waveform | float", input_b: "Waveform | float",
                clock: "Waveform | float | None" = None,
                parameters: SchulmanParameters = RTD_LOGIC,
                output_capacitance: float = 2e-12,
                ) -> tuple[Circuit, GateInfo]:
    """NAND: two series driver-side FETs — both inputs must conduct to
    force q low (the series pair halves the drive, sized up 2x)."""
    info = GateInfo(input_nodes=("a", "b"))
    circuit = Circuit("mobile-nand")
    _latch_core(circuit, info, clock, 0.12, 0.10, parameters,
                output_capacitance)
    for node, waveform in (("a", input_a), ("b", input_b)):
        circuit.add_voltage_source(f"V{node}", node, "0",
                                   as_waveform(waveform))
        circuit.add_capacitor(f"C{node}", node, "0",
                              output_capacitance / 10.0)
    # series stack: q -> mid -> ground
    circuit.add_mosfet("Ma", info.output_node, "a", "mid",
                       nmos(kp=0.2, w=1.0, l=1.0, vth=0.2))
    circuit.add_mosfet("Mb", "mid", "b", "0",
                       nmos(kp=0.2, w=1.0, l=1.0, vth=0.2))
    # keep the internal node weakly defined when the stack is off
    circuit.add_resistor("Rmid", "mid", "0", 1e6)
    circuit.add_capacitor("Cmid", "mid", "0", output_capacitance / 20.0)
    return circuit, info


@dataclass(frozen=True)
class PipelineInfo:
    """Node names and clocking of a MOBILE nanopipeline."""

    data_node: str = "d"
    stage_outputs: tuple[str, ...] = ("q1", "q2")
    clock_nodes: tuple[str, ...] = ("clk1", "clk2")
    clock_period: float = 20e-9
    clock_high: float = 1.15
    input_high: float = 1.2
    v_q_high: float = 1.12
    v_q_low: float = 0.03


def mobile_pipeline(data: "Waveform | float",
                    stages: int = 2,
                    clock_period: float = 20e-9,
                    parameters: SchulmanParameters = RTD_LOGIC,
                    output_capacitance: float = 2e-12,
                    ) -> tuple[Circuit, PipelineInfo]:
    """MOBILE nanopipeline (shift register): cascaded buffer latches
    under overlapping phase-shifted clocks.

    Stage ``k`` is clocked with a 50%-duty clock delayed by
    ``(k + 1) * T/4``; consecutive clocks overlap for a quarter period,
    during which the downstream latch samples the (still-held) upstream
    output.  Because MOBILE latches are self-latching, the bit then
    survives the upstream stage's reset — data shifts one stage per
    clock phase, the gate-level pipelining the MOBILE literature
    (paper ref. [6]) highlights.
    """
    if stages < 1:
        raise ValueError(f"need at least one stage, got {stages!r}")
    info = PipelineInfo(
        stage_outputs=tuple(f"q{k + 1}" for k in range(stages)),
        clock_nodes=tuple(f"clk{k + 1}" for k in range(stages)),
        clock_period=clock_period)
    edge = clock_period / 20.0
    circuit = Circuit(f"mobile-pipeline-{stages}")
    circuit.add_voltage_source("Vd", info.data_node, "0",
                               as_waveform(data))
    circuit.add_capacitor("Cd", info.data_node, "0",
                          output_capacitance / 10.0)
    rtd = SchulmanRTD(parameters)
    previous = info.data_node
    for k in range(stages):
        clock_node = info.clock_nodes[k]
        output = info.stage_outputs[k]
        clock = Pulse(0.0, info.clock_high,
                      delay=(k + 1) * clock_period / 4.0,
                      rise=edge, fall=edge,
                      width=clock_period / 2.0 - edge,
                      period=clock_period)
        circuit.add_voltage_source(f"Vclk{k + 1}", clock_node, "0", clock)
        circuit.add_device(f"Xload{k}", clock_node, output, rtd,
                           multiplicity=0.10)
        circuit.add_device(f"Xdrive{k}", output, "0", rtd,
                           multiplicity=0.12)
        # Later stages are driven by the previous latch's 1.12 V output
        # rather than a full 1.2 V swing; a stronger FET compensates.
        beta = 0.1 if k == 0 else 0.2
        circuit.add_mosfet(f"M{k}", clock_node, previous, output,
                           nmos(kp=beta, w=1.0, l=1.0, vth=0.2))
        circuit.add_capacitor(f"Cq{k}", output, "0", output_capacitance)
        previous = output
    return circuit, info
