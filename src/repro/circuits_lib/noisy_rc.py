"""Noisy RC circuits for the stochastic experiments (paper Fig. 10).

The paper's Fig. 10 circuit is "a time-variant nanoscale transistor with
some parasitic RCs" driven by an uncertain input.  The well-posed core of
that experiment is a current-driven RC node with white-noise injection —
an exact Ornstein-Uhlenbeck process, which is what makes the EM-versus-
analytic comparison possible.  ``noisy_rc_node`` builds the single-node
version; ``noisy_rc_ladder`` the multi-node parasitic ladder used in the
vector-OU validation and the power-grid-style example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit import Circuit, Waveform
from repro.stochastic.analytic import OrnsteinUhlenbeck
from repro.stochastic.sde import CircuitSDE


@dataclass(frozen=True)
class NoisyRcInfo:
    """Design record of the noisy RC node."""

    node: str = "n1"
    resistance: float = 1e3
    capacitance: float = 1e-12
    drive_current: float = 0.0
    noise_amplitude: float = 0.0


def noisy_rc_node(resistance: float = 1e3,
                  capacitance: float = 1e-12,
                  drive: "Waveform | float" = 0.0,
                  noise_amplitude: float = 1e-8,
                  ) -> tuple[CircuitSDE, NoisyRcInfo]:
    """Single RC node with deterministic drive + white-noise current.

    Returns the assembled :class:`CircuitSDE` and an info record.  When
    the drive is a constant, the exact solution is the OU process from
    :meth:`~repro.stochastic.analytic.OrnsteinUhlenbeck.from_rc`.
    """
    info = NoisyRcInfo(resistance=resistance, capacitance=capacitance,
                       noise_amplitude=noise_amplitude)
    circuit = Circuit("noisy-rc-node")
    circuit.add_resistor("R1", info.node, "0", resistance)
    circuit.add_capacitor("C1", info.node, "0", capacitance)
    circuit.add_current_source("Idrive", "0", info.node, drive)
    sde = CircuitSDE(circuit, [(info.node, noise_amplitude)])
    return sde, info


def exact_reference(info: NoisyRcInfo,
                    drive_current: float) -> OrnsteinUhlenbeck:
    """Closed-form OU process matching a :func:`noisy_rc_node` build."""
    return OrnsteinUhlenbeck.from_rc(info.resistance, info.capacitance,
                                     info.noise_amplitude, drive_current)


def noisy_rc_ladder(stages: int = 4,
                    resistance: float = 500.0,
                    capacitance: float = 0.5e-12,
                    drive: "Waveform | float" = 1e-4,
                    noise_amplitude: float = 1e-8,
                    noise_at_every_node: bool = False,
                    ) -> tuple[CircuitSDE, tuple[str, ...]]:
    """RC ladder (parasitic interconnect) with noise at the far end.

    Node names are ``n1 ... n<stages>``; the drive enters at ``n1`` and
    noise at the last node (or everywhere with
    ``noise_at_every_node=True``).  Returns ``(sde, node_names)``.
    """
    if stages < 1:
        raise ValueError(f"need at least one stage, got {stages!r}")
    circuit = Circuit(f"noisy-rc-ladder-{stages}")
    previous = "0"
    nodes = []
    for k in range(1, stages + 1):
        node = f"n{k}"
        nodes.append(node)
        circuit.add_resistor(f"R{k}", previous, node, resistance)
        circuit.add_capacitor(f"C{k}", node, "0", capacitance)
        previous = node
    circuit.add_current_source("Idrive", "0", "n1", drive)
    if noise_at_every_node:
        injections = [(node, noise_amplitude) for node in nodes]
    else:
        injections = [(nodes[-1], noise_amplitude)]
    sde = CircuitSDE(circuit, injections)
    return sde, tuple(nodes)
