"""Grid-scale synthetic circuits for the scaling ablations.

Section 1 of the paper argues traditional simulators are "unable to
analyze practical circuits" because of the per-time-step cost.  These
generators produce practical-sized workloads: resistive meshes with an
RTD + capacitor at every node (a nano-crossbar-style fabric) and RC
interconnect meshes for the sparse-path benchmarks.
"""

from __future__ import annotations

from repro.circuit import Circuit, Waveform
from repro.devices import SCHULMAN_INGAAS, SchulmanParameters, SchulmanRTD


def rtd_mesh(rows: int, cols: int,
             mesh_resistance: float = 100.0,
             node_capacitance: float = 0.1e-12,
             rtd_area: float = 0.05,
             drive: "Waveform | float" = 1.0,
             parameters: SchulmanParameters = SCHULMAN_INGAAS,
             ) -> tuple[Circuit, list[str]]:
    """``rows x cols`` resistive mesh, RTD + capacitor at every node.

    The source drives the top-left corner; node names are ``n<r>_<c>``.
    Returns ``(circuit, node_names)``.  System size grows as
    ``rows * cols``, which is what the sparse-path ablation sweeps.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"need a positive grid, got {rows}x{cols}")
    circuit = Circuit(f"rtd-mesh-{rows}x{cols}")
    names = []
    rtd = SchulmanRTD(parameters)
    for r in range(rows):
        for c in range(cols):
            names.append(f"n{r}_{c}")
    circuit.add_voltage_source("Vs", "drive", "0", drive)
    circuit.add_resistor("Rdrive", "drive", "n0_0", mesh_resistance)
    for r in range(rows):
        for c in range(cols):
            node = f"n{r}_{c}"
            if c + 1 < cols:
                circuit.add_resistor(f"Rh{r}_{c}", node, f"n{r}_{c + 1}",
                                     mesh_resistance)
            if r + 1 < rows:
                circuit.add_resistor(f"Rv{r}_{c}", node, f"n{r + 1}_{c}",
                                     mesh_resistance)
            circuit.add_capacitor(f"C{r}_{c}", node, "0", node_capacitance)
            circuit.add_device(f"X{r}_{c}", node, "0", rtd,
                               multiplicity=rtd_area)
    return circuit, names


def rc_mesh(rows: int, cols: int,
            mesh_resistance: float = 50.0,
            node_capacitance: float = 0.2e-12,
            drive: "Waveform | float" = 1.0,
            ) -> tuple[Circuit, list[str]]:
    """Linear RC interconnect mesh (no devices) — solver-path testbed."""
    if rows < 1 or cols < 1:
        raise ValueError(f"need a positive grid, got {rows}x{cols}")
    circuit = Circuit(f"rc-mesh-{rows}x{cols}")
    names = [f"n{r}_{c}" for r in range(rows) for c in range(cols)]
    circuit.add_voltage_source("Vs", "drive", "0", drive)
    circuit.add_resistor("Rdrive", "drive", "n0_0", mesh_resistance)
    for r in range(rows):
        for c in range(cols):
            node = f"n{r}_{c}"
            if c + 1 < cols:
                circuit.add_resistor(f"Rh{r}_{c}", node, f"n{r}_{c + 1}",
                                     mesh_resistance)
            if r + 1 < rows:
                circuit.add_resistor(f"Rv{r}_{c}", node, f"n{r + 1}_{c}",
                                     mesh_resistance)
            circuit.add_capacitor(f"C{r}_{c}", node, "0", node_capacitance)
    return circuit, names
