"""The FET-RTD inverter of paper Fig. 8.

Topology (MOBILE-style static inverter):

* load RTD from ``vdd`` to ``out`` (area factor ``load_area``),
* drive RTD from ``out`` to ground,
* NMOS driver in parallel with the drive RTD, gate at ``in``,
* load capacitor at ``out``.

The output sits at the junction of the two RTDs, matching the paper's
"output obtained at the junction of two RTDs".  Design values were chosen
by load-line analysis so each input level leaves exactly one stable
operating point: with the paper's RTD parameters and ``Vdd = 5 V``,
input low gives ``V_out ~ 4.2 V`` and input high gives ``V_out ~ 0.6 V``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit import Circuit, Pulse, Waveform
from repro.circuit.sources import as_waveform
from repro.devices import NANO_SIM_DATE05, SchulmanParameters, SchulmanRTD, nmos


@dataclass(frozen=True)
class InverterInfo:
    """Node/element names and design levels of the inverter."""

    input_node: str = "in"
    output_node: str = "out"
    supply_node: str = "vdd"
    vdd: float = 5.0
    v_out_high: float = 4.18
    v_out_low: float = 0.61


def default_input(vdd: float = 5.0) -> Pulse:
    """The paper's stimulus: input switching between 0 and 5 V."""
    return Pulse(0.0, vdd, delay=5e-9, rise=0.5e-9, fall=0.5e-9,
                 width=15e-9, period=40e-9)


def fet_rtd_inverter(vin: Waveform | float | None = None,
                     vdd: float = 5.0,
                     load_area: float = 2.0,
                     drive_area: float = 1.0,
                     fet_beta: float = 8e-3,
                     fet_vth: float = 1.0,
                     load_capacitance: float = 1e-12,
                     parameters: SchulmanParameters = NANO_SIM_DATE05,
                     ) -> tuple[Circuit, InverterInfo]:
    """Build the Fig. 8(a) FET-RTD inverter.

    Parameters default to the load-line-verified design; ``vin`` defaults
    to the paper's 0-to-5-V switching pulse.
    """
    info = InverterInfo(vdd=vdd)
    waveform = default_input(vdd) if vin is None else as_waveform(vin)
    circuit = Circuit("fet-rtd-inverter")
    circuit.add_voltage_source("Vdd", info.supply_node, "0", vdd)
    circuit.add_voltage_source("Vin", info.input_node, "0", waveform)
    rtd = SchulmanRTD(parameters)
    circuit.add_device("Xload", info.supply_node, info.output_node, rtd,
                       multiplicity=load_area)
    circuit.add_device("Xdrive", info.output_node, "0", rtd,
                       multiplicity=drive_area)
    circuit.add_mosfet("M1", info.output_node, info.input_node, "0",
                       nmos(kp=fet_beta, w=1.0, l=1.0, vth=fet_vth))
    circuit.add_capacitor("Cout", info.output_node, "0", load_capacitance)
    # Small gate load keeps the input node capacitive (and realistic).
    circuit.add_capacitor("Cg", info.input_node, "0",
                          load_capacitance / 10.0)
    return circuit, info
