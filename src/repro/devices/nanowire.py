"""Quantized-conductance nanowire / carbon-nanotube model.

Paper Fig. 1(b) shows the staircase conductance of an individual carbon
nanotube: conductance climbs in steps of (roughly) the conductance quantum
``G0 = 2 e^2 / h`` as successive 1-D sub-bands start conducting.  We model
the conductance as a sum of thermally-smeared steps

.. math::

    G(V) = G_c + G_0 \\sum_k s_k \\,\\sigma\\!\\left(\\frac{|V| - V_k}{w}\\right)

with :math:`\\sigma` the logistic function, and integrate it analytically
to obtain an odd-symmetric current (the integral of a logistic step is a
softplus), so current, conductance and conductance derivative are all
closed-form and mutually consistent.
"""

from __future__ import annotations

import math

from repro.constants import CONDUCTANCE_QUANTUM
from repro.devices.base import TwoTerminalDevice
from repro.devices.rtd import _logistic, _softplus


class QuantizedNanowire(TwoTerminalDevice):
    """Nanowire with staircase conductance (quantum-wire behaviour).

    Parameters
    ----------
    step_voltages:
        Onset voltages ``V_k > 0`` of successive conduction channels.
    smearing:
        Thermal smearing width ``w`` of each step, in volts.
    quantum:
        Conductance added per step; defaults to ``2 e^2 / h``.
    step_weights:
        Per-step multipliers ``s_k`` (degenerate sub-bands); default 1.
    contact_conductance:
        Background ohmic conductance ``G_c`` (always-on channel), so the
        device conducts below the first step like a real measured tube.
    """

    def __init__(self, step_voltages=(0.2, 0.5, 0.8, 1.1),
                 smearing: float = 0.02,
                 quantum: float = CONDUCTANCE_QUANTUM,
                 step_weights=None,
                 contact_conductance: float = 0.25 * CONDUCTANCE_QUANTUM,
                 ) -> None:
        steps = tuple(float(v) for v in step_voltages)
        if not steps:
            raise ValueError("need at least one conduction step")
        if any(v <= 0.0 for v in steps):
            raise ValueError("step voltages must be positive")
        if any(b <= a for a, b in zip(steps, steps[1:])):
            raise ValueError("step voltages must be strictly increasing")
        if smearing <= 0.0:
            raise ValueError(f"smearing must be positive, got {smearing!r}")
        self.step_voltages = steps
        self.smearing = float(smearing)
        self.quantum = float(quantum)
        if step_weights is None:
            self.step_weights = (1.0,) * len(steps)
        else:
            self.step_weights = tuple(float(s) for s in step_weights)
            if len(self.step_weights) != len(steps):
                raise ValueError("one weight per step required")
        if contact_conductance < 0.0:
            raise ValueError("contact conductance must be non-negative")
        self.contact_conductance = float(contact_conductance)

    # ------------------------------------------------------------------

    def conductance_staircase(self, voltage: float) -> float:
        """Smeared staircase conductance ``G(|V|)`` (paper Fig. 1(b))."""
        v = abs(voltage)
        total = self.contact_conductance
        for vk, sk in zip(self.step_voltages, self.step_weights):
            total += self.quantum * sk * _logistic((v - vk) / self.smearing)
        return total

    def current(self, voltage: float) -> float:
        """Odd-symmetric current: analytic integral of the staircase."""
        v = abs(voltage)
        w = self.smearing
        total = self.contact_conductance * v
        for vk, sk in zip(self.step_voltages, self.step_weights):
            integral = w * (_softplus((v - vk) / w) - _softplus(-vk / w))
            total += self.quantum * sk * integral
        return math.copysign(total, voltage) if voltage != 0.0 else 0.0

    def differential_conductance(self, voltage: float) -> float:
        """Exactly the staircase — the model is built from it."""
        return self.conductance_staircase(voltage)

    def num_channels(self) -> int:
        """Number of modelled conduction channels."""
        return len(self.step_voltages)

    def __repr__(self) -> str:
        return (f"QuantizedNanowire(steps={self.step_voltages!r}, "
                f"smearing={self.smearing!r})")
