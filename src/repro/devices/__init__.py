"""Nonlinear device models for nanotechnology circuit simulation.

Models are pure I-V descriptions: given a branch voltage they return the
current, the differential (small-signal) conductance ``dI/dV`` and the SWEC
chord conductance ``I(V)/V``.  Engines decide which of those to use; the
paper's point is that the chord is positive where the differential
conductance goes negative (NDR).
"""

from repro.devices.base import TwoTerminalDevice, TabulatedDevice
from repro.devices.diode import Diode
from repro.devices.mosfet import MosfetModel, nmos, pmos
from repro.devices.nanowire import QuantizedNanowire
from repro.devices.rtd import (
    NANO_SIM_DATE05,
    RTD_LOGIC,
    SCHULMAN_INGAAS,
    SchulmanParameters,
    SchulmanRTD,
)
from repro.devices.rtt import MultiPeakRTT

__all__ = [
    "Diode",
    "MosfetModel",
    "MultiPeakRTT",
    "NANO_SIM_DATE05",
    "QuantizedNanowire",
    "RTD_LOGIC",
    "SCHULMAN_INGAAS",
    "SchulmanParameters",
    "SchulmanRTD",
    "TabulatedDevice",
    "TwoTerminalDevice",
    "nmos",
    "pmos",
]
