"""Multi-peak resonant tunneling transistor (RTT) collector model.

Paper Fig. 1(a) shows the collector current of an RTT versus collector-
emitter voltage: *multiple* resonance peaks with a staircase contour, each
followed by an NDR region.  We model the two-terminal collector
characteristic as a superposition of Schulman-style resonances with
shifted alignment voltages plus one shared thermionic background:

.. math::

    J(V) = \\sum_m J_1^{(m)}(V) + J_2(V)

Each resonance reuses the :class:`~repro.devices.rtd.SchulmanRTD`
machinery, so derivatives stay analytic.  The base terminal is modelled as
a pure multiplier on the resonance amplitudes (``base_drive``), which is
how the staircase shifts with base bias in the source literature.
"""

from __future__ import annotations

from dataclasses import replace

from repro.devices.base import TwoTerminalDevice
from repro.devices.rtd import RTD_LOGIC, SchulmanParameters, SchulmanRTD


class MultiPeakRTT(TwoTerminalDevice):
    """RTT collector I-V with several resonance peaks.

    Parameters
    ----------
    base:
        Template :class:`SchulmanParameters`; each peak is a copy with its
        ``c`` parameter shifted so the alignment voltage ``c/n1`` lands on
        the requested peak position.
    peak_voltages:
        Target positions of the resonance peaks, in volts.
    peak_scales:
        Relative amplitude of each resonance (defaults to equal).
    base_drive:
        Multiplier applied to every resonance amplitude — a stand-in for
        the base-emitter drive level.
    """

    def __init__(self, base: SchulmanParameters = RTD_LOGIC,
                 peak_voltages=(0.5, 1.2, 1.9),
                 peak_scales=None, base_drive: float = 1.0) -> None:
        peaks = tuple(float(v) for v in peak_voltages)
        if not peaks:
            raise ValueError("need at least one peak")
        if any(b <= a for a, b in zip(peaks, peaks[1:])):
            raise ValueError("peak voltages must be strictly increasing")
        if base_drive <= 0.0:
            raise ValueError(f"base_drive must be positive, got {base_drive!r}")
        if peak_scales is None:
            peak_scales = (1.0,) * len(peaks)
        scales = tuple(float(s) for s in peak_scales)
        if len(scales) != len(peaks):
            raise ValueError("one scale per peak required")

        self.peak_voltages = peaks
        self.base_drive = float(base_drive)
        self._resonances: list[SchulmanRTD] = []
        for v_peak, scale in zip(peaks, scales):
            params = replace(base,
                             c=base.n1 * v_peak,
                             a=base.a * scale * base_drive,
                             h=0.0)
            self._resonances.append(SchulmanRTD(params))
        # One shared thermionic term keeps the tail monotone at high bias.
        self._background = SchulmanRTD(replace(base, a=0.0))

    def current(self, voltage: float) -> float:
        total = self._background.thermionic_current(voltage)
        for resonance in self._resonances:
            total += resonance.resonance_current(voltage)
        return total

    def differential_conductance(self, voltage: float) -> float:
        total = self._background.differential_conductance(voltage)
        for resonance in self._resonances:
            total += resonance.differential_conductance(voltage)
        # Background object includes a zero-amplitude resonance term whose
        # derivative is zero, so no double counting occurs.
        return total

    def num_peaks(self) -> int:
        """Number of modelled resonance peaks."""
        return len(self._resonances)

    def __repr__(self) -> str:
        return (f"MultiPeakRTT(peaks={self.peak_voltages!r}, "
                f"base_drive={self.base_drive!r})")
