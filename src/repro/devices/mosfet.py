"""Level-1 (Shichman-Hodges) MOSFET model.

The paper uses this model (its eq. 2) to illustrate SWEC's equivalent
conductance (its eq. 3): the device is treated as a gate-controlled
drain-source conductance ``G_eq = Ids/Vds`` that is re-evaluated at every
accepted time point and held constant within the step.

Both polarities are supported; a PMOS is modelled as an NMOS in mirrored
coordinates.  Negative ``Vds`` on an NMOS swaps the roles of drain and
source (the level-1 device is symmetric).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MosfetModel:
    """Level-1 MOSFET parameter record plus evaluation methods.

    Attributes
    ----------
    kp:
        Transconductance parameter ``k`` in A/V^2 (``k = mu Cox``).
    w, l:
        Effective channel width and length (any consistent unit).
    vth:
        Threshold voltage in volts (positive for NMOS, negative for PMOS).
    polarity:
        ``+1`` for NMOS, ``-1`` for PMOS.
    channel_modulation:
        Channel-length modulation ``lambda`` in 1/V; the paper sets it to
        zero, we keep it configurable for the ablation benches.
    """

    kp: float = 2e-5
    w: float = 10e-6
    l: float = 1e-6
    vth: float = 1.0
    polarity: int = 1
    channel_modulation: float = 0.0

    def __post_init__(self) -> None:
        if self.kp <= 0.0:
            raise ValueError(f"kp must be positive, got {self.kp!r}")
        if self.w <= 0.0 or self.l <= 0.0:
            raise ValueError("channel dimensions must be positive")
        if self.polarity not in (1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {self.polarity!r}")

    @property
    def beta(self) -> float:
        """Gain factor ``k W / L`` in A/V^2."""
        return self.kp * self.w / self.l

    # ------------------------------------------------------------------
    # Core evaluation in NMOS coordinates
    # ------------------------------------------------------------------

    def _ids_nmos(self, vgs: float, vds: float) -> float:
        """NMOS-coordinate drain current for ``vds >= 0`` (paper eq. 2)."""
        vov = vgs - abs(self.vth)
        if vov <= 0.0:
            return 0.0
        clm = 1.0 + self.channel_modulation * vds
        if vds < vov:
            return self.beta * (vov - vds / 2.0) * vds * clm
        return 0.5 * self.beta * vov * vov * clm

    def _partials_nmos(self, vgs: float, vds: float) -> tuple[float, float]:
        """``(gm, gds)`` in NMOS coordinates for ``vds >= 0``."""
        vov = vgs - abs(self.vth)
        if vov <= 0.0:
            return 0.0, 0.0
        clm = 1.0 + self.channel_modulation * vds
        lam = self.channel_modulation
        if vds < vov:
            gm = self.beta * vds * clm
            gds = (self.beta * (vov - vds) * clm
                   + self.beta * (vov - vds / 2.0) * vds * lam)
            return gm, gds
        gm = self.beta * vov * clm
        gds = 0.5 * self.beta * vov * vov * lam
        return gm, gds

    # ------------------------------------------------------------------
    # Public API in true terminal coordinates
    # ------------------------------------------------------------------

    def current(self, vgs: float, vds: float) -> float:
        """Drain-source current, handling polarity and ``Vds`` sign."""
        s = self.polarity
        vgs_eff, vds_eff = s * vgs, s * vds
        if vds_eff >= 0.0:
            return s * self._ids_nmos(vgs_eff, vds_eff)
        # Swap drain and source: Vgd becomes the controlling voltage.
        return -s * self._ids_nmos(vgs_eff - vds_eff, -vds_eff)

    def partials(self, vgs: float, vds: float) -> tuple[float, float]:
        """Return ``(gm, gds) = (dIds/dVgs, dIds/dVds)``."""
        s = self.polarity
        vgs_eff, vds_eff = s * vgs, s * vds
        if vds_eff >= 0.0:
            return self._partials_nmos(vgs_eff, vds_eff)
        gm_sw, gds_sw = self._partials_nmos(vgs_eff - vds_eff, -vds_eff)
        # Ids = -Ids_sw(vgs-vds, -vds):
        #   dIds/dVgs = -gm_sw ; dIds/dVds = gm_sw + gds_sw
        return -gm_sw, gm_sw + gds_sw

    def chord_conductance(self, vgs: float, vds: float) -> float:
        """SWEC equivalent conductance ``Ids/Vds`` (paper eq. 3).

        At ``Vds -> 0`` the limit is the triode channel conductance
        ``beta * (Vgs - Vth)``; zero below threshold.
        """
        s = self.polarity
        vgs_eff, vds_eff = s * vgs, s * vds
        if abs(vds_eff) < 1e-12:
            vov = vgs_eff - abs(self.vth)
            return self.beta * vov if vov > 0.0 else 0.0
        return self.current(vgs, vds) / vds

    def is_on(self, vgs: float) -> bool:
        """True when the channel conducts (``|Vov| > 0``)."""
        return self.polarity * vgs - abs(self.vth) > 0.0

    def current_many(self, vgs, vds) -> np.ndarray:
        """Vectorized :meth:`current` over terminal-voltage arrays."""
        return mosfet_current_stack(
            vgs, vds, kp=self.kp, w=self.w, l=self.l, vth=self.vth,
            polarity=self.polarity,
            channel_modulation=self.channel_modulation)

    def chord_conductance_many(self, vgs, vds) -> np.ndarray:
        """Vectorized :meth:`chord_conductance`."""
        return mosfet_chord_stack(
            vgs, vds, kp=self.kp, w=self.w, l=self.l, vth=self.vth,
            polarity=self.polarity,
            channel_modulation=self.channel_modulation)


# ----------------------------------------------------------------------
# Parameter-stacked evaluation (ensemble hot path)
# ----------------------------------------------------------------------
#
# The lockstep transient engine marches K circuit instances whose
# MOSFETs may each carry different parameters.  Because the level-1
# model is a handful of polynomial branches, the parameters themselves
# vectorize: every argument below may be a scalar or an array
# broadcastable against the voltage arrays, and the arithmetic mirrors
# the scalar methods branch for branch so results match bitwise.


def _ids_nmos_stack(vgs, vds, beta, vth_abs, lam) -> np.ndarray:
    """NMOS-coordinate drain current for ``vds >= 0``, vectorized."""
    vov = vgs - vth_abs
    clm = 1.0 + lam * vds
    triode = beta * (vov - vds / 2.0) * vds * clm
    saturated = 0.5 * beta * vov * vov * clm
    ids = np.where(vds < vov, triode, saturated)
    return np.where(vov > 0.0, ids, 0.0)


def mosfet_current_stack(vgs, vds, *, kp, w, l, vth, polarity,
                         channel_modulation) -> np.ndarray:
    """Vectorized level-1 drain current with stacked parameters."""
    vgs = np.asarray(vgs, dtype=float)
    vds = np.asarray(vds, dtype=float)
    s = np.asarray(polarity, dtype=float)
    beta = np.asarray(kp, dtype=float) * np.asarray(w, dtype=float) \
        / np.asarray(l, dtype=float)
    vth_abs = np.abs(np.asarray(vth, dtype=float))
    lam = np.asarray(channel_modulation, dtype=float)
    vgs_eff, vds_eff = s * vgs, s * vds
    forward = s * _ids_nmos_stack(vgs_eff, vds_eff, beta, vth_abs, lam)
    # Negative Vds swaps drain and source (the device is symmetric).
    swapped = -s * _ids_nmos_stack(vgs_eff - vds_eff, -vds_eff, beta,
                                   vth_abs, lam)
    return np.where(vds_eff >= 0.0, forward, swapped)


def mosfet_chord_stack(vgs, vds, *, kp, w, l, vth, polarity,
                       channel_modulation) -> np.ndarray:
    """Vectorized SWEC equivalent conductance ``Ids/Vds`` (paper eq. 3)."""
    vgs = np.asarray(vgs, dtype=float)
    vds = np.asarray(vds, dtype=float)
    s = np.asarray(polarity, dtype=float)
    beta = np.asarray(kp, dtype=float) * np.asarray(w, dtype=float) \
        / np.asarray(l, dtype=float)
    vth_abs = np.abs(np.asarray(vth, dtype=float))
    vds_eff = s * vds
    small = np.abs(vds_eff) < 1e-12
    vov = s * vgs - vth_abs
    limit = np.where(vov > 0.0, beta * vov, 0.0)
    current = mosfet_current_stack(
        vgs, vds, kp=kp, w=w, l=l, vth=vth, polarity=polarity,
        channel_modulation=channel_modulation)
    safe_vds = np.where(small, 1.0, vds)
    return np.where(small, limit, current / safe_vds)


def nmos(kp: float = 2e-5, w: float = 10e-6, l: float = 1e-6,
         vth: float = 1.0, channel_modulation: float = 0.0) -> MosfetModel:
    """Build an NMOS level-1 model."""
    return MosfetModel(kp=kp, w=w, l=l, vth=abs(vth), polarity=1,
                       channel_modulation=channel_modulation)


def pmos(kp: float = 1e-5, w: float = 20e-6, l: float = 1e-6,
         vth: float = -1.0, channel_modulation: float = 0.0) -> MosfetModel:
    """Build a PMOS level-1 model (``vth`` may be given as +/-)."""
    return MosfetModel(kp=kp, w=w, l=l, vth=-abs(vth), polarity=-1,
                       channel_modulation=channel_modulation)
