"""Base protocol for two-terminal nonlinear devices.

Subclasses must implement :meth:`current`; analytic derivatives are strongly
preferred but a careful central-difference fallback is provided so that
tabulated or experimental devices work out of the box.

Conductance vocabulary (paper Section 3.2, Fig. 3):

differential conductance
    ``g(V) = dI/dV`` — the slope SPICE linearizes around.  Negative inside
    an NDR region, which is what breaks Newton-Raphson.
chord conductance
    ``G_eq(V) = I(V)/V`` — the SWEC equivalent conductance: the slope of the
    chord from the origin to the operating point.  For any device whose
    current has the sign of its voltage (passive device), the chord is
    positive for ``V != 0``.
"""

from __future__ import annotations

import math

import numpy as np


class TwoTerminalDevice:
    """Abstract two-terminal nonlinear device model."""

    #: Voltage magnitude below which the chord conductance switches to its
    #: analytic limit ``dI/dV(0)`` to avoid 0/0.
    chord_epsilon: float = 1e-9

    #: Step used by the finite-difference fallbacks.
    fd_step: float = 1e-6

    def current(self, voltage: float) -> float:
        """Return device current (amperes) at *voltage* (volts)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Derivatives — override with analytic forms where possible.
    # ------------------------------------------------------------------

    def differential_conductance(self, voltage: float) -> float:
        """Return ``dI/dV`` at *voltage*; finite-difference fallback."""
        h = self.fd_step * max(1.0, abs(voltage))
        return (self.current(voltage + h) - self.current(voltage - h)) / (2.0 * h)

    def chord_conductance(self, voltage: float) -> float:
        """Return the SWEC equivalent conductance ``I(V)/V``.

        At ``V -> 0`` the chord tends to the differential conductance at the
        origin, which is the value returned inside ``chord_epsilon``.
        """
        if abs(voltage) < self.chord_epsilon:
            return self.differential_conductance(0.0)
        return self.current(voltage) / voltage

    def chord_conductance_derivative(self, voltage: float) -> float:
        """Return ``dG_eq/dV = (V dI/dV - I) / V^2`` (paper eq. 8).

        Used by the first-order Taylor predictor of eq. (5).  Near the
        origin the quotient rule degenerates; L'Hopital gives
        ``I''(0) / 2``, estimated by finite differences.
        """
        if abs(voltage) < self.chord_epsilon:
            h = self.fd_step
            second = (self.current(h) - 2.0 * self.current(0.0)
                      + self.current(-h)) / (h * h)
            return 0.5 * second
        i = self.current(voltage)
        g = self.differential_conductance(voltage)
        return (voltage * g - i) / (voltage * voltage)

    def current_many(self, voltages) -> np.ndarray:
        """Vectorized :meth:`current` over an array of branch voltages.

        Waveform post-processing and the ensemble transient engine
        evaluate whole voltage arrays at once.  Models with closed-form
        numpy implementations override this; the fallback loops over
        the scalar method.
        """
        v = np.asarray(voltages, dtype=float)
        flat = np.fromiter((self.current(float(x)) for x in v.ravel()),
                           dtype=float, count=v.size)
        return flat.reshape(v.shape)

    def differential_conductance_many(self, voltages) -> np.ndarray:
        """Vectorized :meth:`differential_conductance`.

        The fallback loops over the scalar method, so models that only
        override the scalar derivative stay exactly consistent with it;
        models with closed-form numpy derivatives override this too.
        """
        v = np.asarray(voltages, dtype=float)
        flat = np.fromiter(
            (self.differential_conductance(float(x)) for x in v.ravel()),
            dtype=float, count=v.size)
        return flat.reshape(v.shape)

    def chord_conductance_many(self, voltages) -> np.ndarray:
        """Vectorized :meth:`chord_conductance` over branch voltages.

        Mirrors the scalar definition exactly: ``I(V)/V`` away from the
        origin, the differential conductance at ``V = 0`` inside
        ``chord_epsilon``.
        """
        v = np.asarray(voltages, dtype=float)
        small = np.abs(v) < self.chord_epsilon
        safe = np.where(small, 1.0, v)
        g = self.current_many(safe) / safe
        if small.any():
            g = np.where(small, self.differential_conductance(0.0), g)
        return g

    def chord_conductance_derivative_many(self, voltages) -> np.ndarray:
        """Vectorized :meth:`chord_conductance_derivative`."""
        v = np.asarray(voltages, dtype=float)
        small = np.abs(v) < self.chord_epsilon
        safe = np.where(small, 1.0, v)
        i = self.current_many(safe)
        g = self.differential_conductance_many(safe)
        derivative = (safe * g - i) / (safe * safe)
        if small.any():
            h = self.fd_step
            second = (self.current(h) - 2.0 * self.current(0.0)
                      + self.current(-h)) / (h * h)
            derivative = np.where(small, 0.5 * second, derivative)
        return derivative

    # ------------------------------------------------------------------
    # Conveniences shared by every model
    # ------------------------------------------------------------------

    def batch_key(self):
        """Hashable key under which ensemble instances may be grouped.

        The lockstep transient engine evaluates all circuit instances
        whose device shares a key through one vectorized call.  The
        safe default is object identity; models whose behaviour is
        fully determined by a hashable parameter record (e.g.
        :class:`~repro.devices.rtd.SchulmanRTD`) override this so
        per-instance model objects with equal parameters still batch.
        """
        return id(self)

    def is_passive_at(self, voltage: float) -> bool:
        """True when current has the sign of voltage (chord >= 0) there."""
        i = self.current(voltage)
        return i == 0.0 or math.copysign(1.0, i) == math.copysign(1.0, voltage)

    def sample_iv(self, v_start: float, v_stop: float, points: int):
        """Return ``(voltages, currents)`` tuples sampling the I-V curve.

        Plain lists, not arrays — device models are scalar by design so the
        engines can call them one operating point at a time.
        """
        if points < 2:
            raise ValueError(f"need at least 2 points, got {points}")
        step = (v_stop - v_start) / (points - 1)
        voltages = [v_start + k * step for k in range(points)]
        currents = [self.current(v) for v in voltages]
        return voltages, currents


class TabulatedDevice(TwoTerminalDevice):
    """Device defined by measured ``(V, I)`` samples, linearly interpolated.

    Useful for importing experimental nanodevice curves.  Outside the table
    the end segments are extrapolated.
    """

    def __init__(self, voltages, currents) -> None:
        voltages = [float(v) for v in voltages]
        currents = [float(i) for i in currents]
        if len(voltages) != len(currents):
            raise ValueError("voltages and currents must have equal length")
        if len(voltages) < 2:
            raise ValueError("need at least two table points")
        if any(b <= a for a, b in zip(voltages, voltages[1:])):
            raise ValueError("table voltages must be strictly increasing")
        self.voltages = voltages
        self.currents = currents

    def _segment(self, voltage: float) -> int:
        lo, hi = 0, len(self.voltages) - 2
        if voltage <= self.voltages[0]:
            return 0
        if voltage >= self.voltages[-1]:
            return hi
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.voltages[mid] <= voltage:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def current(self, voltage: float) -> float:
        k = self._segment(voltage)
        v0, v1 = self.voltages[k], self.voltages[k + 1]
        i0, i1 = self.currents[k], self.currents[k + 1]
        return i0 + (i1 - i0) * (voltage - v0) / (v1 - v0)

    def differential_conductance(self, voltage: float) -> float:
        k = self._segment(voltage)
        v0, v1 = self.voltages[k], self.voltages[k + 1]
        i0, i1 = self.currents[k], self.currents[k + 1]
        return (i1 - i0) / (v1 - v0)
