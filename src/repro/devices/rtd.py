"""Schulman physics-based resonant tunneling diode model.

Implements the I-V equation of Schulman, De Los Santos and Chow (IEEE EDL
1996), which the paper adopts as eq. (4):

.. math::

    J_1(V) = A \\,
        \\ln\\!\\frac{1 + e^{(B - C + n_1 V) q / kT}}
                    {1 + e^{(B - C - n_1 V) q / kT}}
        \\left[ \\frac{\\pi}{2} + \\tan^{-1}\\frac{C - n_1 V}{D} \\right]

    J_2(V) = H \\left( e^{n_2 q V / kT} - 1 \\right)

    J(V) = J_1(V) + J_2(V)

``J_1`` produces the resonance peak and the NDR region, ``J_2`` the
thermionic valley-to-second-rise current.  The curve has three regions
(paper Fig. 4): PDR1, NDR, PDR2.

Three parameter sets ship with the model:

``NANO_SIM_DATE05``
    The exact values printed in the paper's Section 5.2 (FET-RTD inverter
    experiment).  Peak sits near ``V = C/n1 ~ 4.3 V``.
``SCHULMAN_INGAAS``
    Representative InGaAs/AlAs values in the spirit of the original
    Schulman paper — sub-volt peak, realistic peak-to-valley ratio.
``RTD_LOGIC``
    A set tuned for the MOBILE latch experiments: sub-volt peak and a
    pronounced valley, so two stacked RTDs latch at practical bias.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.constants import thermal_voltage
from repro.devices.base import TwoTerminalDevice

#: Largest exponent fed to math.exp; larger arguments use asymptotics.
_EXP_CLIP = 700.0


def _softplus(x: float) -> float:
    """Numerically stable ``ln(1 + e^x)``."""
    if x > _EXP_CLIP:
        return x
    if x < -_EXP_CLIP:
        return 0.0
    if x > 0.0:
        return x + math.log1p(math.exp(-x))
    return math.log1p(math.exp(x))


def _logistic(x: float) -> float:
    """Numerically stable ``e^x / (1 + e^x)``."""
    if x >= 0.0:
        return 1.0 / (1.0 + math.exp(-min(x, _EXP_CLIP)))
    ex = math.exp(max(x, -_EXP_CLIP))
    return ex / (1.0 + ex)


def _exp_clipped(x: float) -> float:
    return math.exp(min(x, _EXP_CLIP))


def _softplus_array(x: np.ndarray) -> np.ndarray:
    """Vectorized stable softplus: ``log1p(exp(-|x|)) + max(x, 0)``."""
    return np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0.0)


def _logistic_array(x: np.ndarray) -> np.ndarray:
    """Vectorized stable logistic, mirroring the scalar ``_logistic``."""
    out = np.empty_like(x)
    positive = x >= 0.0
    out[positive] = 1.0 / (
        1.0 + np.exp(-np.minimum(x[positive], _EXP_CLIP)))
    ex = np.exp(np.maximum(x[~positive], -_EXP_CLIP))
    out[~positive] = ex / (1.0 + ex)
    return out


@dataclass(frozen=True)
class SchulmanParameters:
    """Parameter record for the Schulman RTD equations.

    Attributes use the paper's symbols.  ``a`` (amperes), ``b``, ``c``, ``d``
    (volts), ``n1``, ``n2`` (dimensionless level factors), ``h`` (amperes),
    ``temperature`` (kelvin).
    """

    a: float
    b: float
    c: float
    d: float
    n1: float
    n2: float
    h: float
    temperature: float = 300.0

    def scaled(self, area_factor: float) -> "SchulmanParameters":
        """Return a copy with currents scaled by *area_factor*.

        Scaling ``A`` and ``H`` models a device of different junction area;
        the voltage landmarks (peak/valley positions) are unchanged.  The
        MOBILE flip-flop relies on unequal areas between its two RTDs.
        """
        if area_factor <= 0.0:
            raise ValueError(
                f"area_factor must be positive, got {area_factor!r}")
        return replace(self, a=self.a * area_factor, h=self.h * area_factor)


#: Exact parameter values printed in the paper (Section 5.2).
NANO_SIM_DATE05 = SchulmanParameters(
    a=1e-4, b=2.0, c=1.5, d=0.3, n1=0.35, n2=0.0172, h=1.43e-8)

#: Representative sub-volt InGaAs/AlAs-style device (cf. Schulman 1996).
SCHULMAN_INGAAS = SchulmanParameters(
    a=1.2e-3, b=0.068, c=0.1035, d=0.0088, n1=0.1862, n2=0.0466, h=2.4e-6)

#: Tuned for MOBILE latch experiments: peak ~0.48 V, valley ~0.89 V,
#: peak-to-valley ratio ~16, strong second rise before 1.5 V.
RTD_LOGIC = SchulmanParameters(
    a=2.5e-3, b=0.30, c=0.22, d=0.01, n1=0.40, n2=0.10, h=5.0e-5)


class SchulmanRTD(TwoTerminalDevice):
    """Resonant tunneling diode with the Schulman I-V law.

    Parameters
    ----------
    parameters:
        A :class:`SchulmanParameters` record; defaults to the paper's set.

    >>> rtd = SchulmanRTD()
    >>> rtd.current(0.0)
    0.0
    """

    def __init__(self,
                 parameters: SchulmanParameters = NANO_SIM_DATE05) -> None:
        self.parameters = parameters
        self._vt = thermal_voltage(parameters.temperature)

    # ------------------------------------------------------------------
    # I-V law (paper eq. 4)
    # ------------------------------------------------------------------

    def resonance_current(self, voltage: float) -> float:
        """Resonant component ``J_1(V)``."""
        p = self.parameters
        upper = (p.b - p.c + p.n1 * voltage) / self._vt
        lower = (p.b - p.c - p.n1 * voltage) / self._vt
        log_term = _softplus(upper) - _softplus(lower)
        angle = math.pi / 2.0 + math.atan((p.c - p.n1 * voltage) / p.d)
        return p.a * log_term * angle

    def thermionic_current(self, voltage: float) -> float:
        """Valley/second-rise component ``J_2(V)``."""
        p = self.parameters
        return p.h * (_exp_clipped(p.n2 * voltage / self._vt) - 1.0)

    def current(self, voltage: float) -> float:
        """Total current ``J(V) = J_1(V) + J_2(V)``."""
        return self.resonance_current(voltage) + self.thermionic_current(voltage)

    def current_many(self, voltages) -> np.ndarray:
        """Vectorized I-V law: eq. (4) over an array of voltages.

        One numpy pass instead of a Python loop per point; mirrors the
        scalar clipping behaviour (``exp`` arguments capped at
        ``_EXP_CLIP``, softplus evaluated in its stable form).
        """
        p = self.parameters
        v = np.asarray(voltages, dtype=float)
        upper = (p.b - p.c + p.n1 * v) / self._vt
        lower = (p.b - p.c - p.n1 * v) / self._vt
        log_term = _softplus_array(upper) - _softplus_array(lower)
        angle = math.pi / 2.0 + np.arctan((p.c - p.n1 * v) / p.d)
        resonance = p.a * log_term * angle
        thermionic = p.h * (
            np.exp(np.minimum(p.n2 * v / self._vt, _EXP_CLIP)) - 1.0)
        return resonance + thermionic

    def batch_key(self):
        """Hashable key under which ensemble instances may be grouped.

        Two ``SchulmanRTD`` objects with equal (frozen) parameter
        records evaluate identically, so the lockstep engine batches
        them through one ``current_many`` call even when each circuit
        instance was built with its own model object.
        """
        return (SchulmanRTD, self.parameters)

    # ------------------------------------------------------------------
    # Analytic derivatives (paper eq. 8, re-derived)
    # ------------------------------------------------------------------

    def differential_conductance_many(self, voltages) -> np.ndarray:
        """Vectorized analytic ``dJ/dV``, mirroring the scalar form."""
        p = self.parameters
        v = np.asarray(voltages, dtype=float)
        upper = (p.b - p.c + p.n1 * v) / self._vt
        lower = (p.b - p.c - p.n1 * v) / self._vt
        log_term = _softplus_array(upper) - _softplus_array(lower)
        dlog = (p.n1 / self._vt) * (_logistic_array(upper)
                                    + _logistic_array(lower))
        u = (p.c - p.n1 * v) / p.d
        angle = math.pi / 2.0 + np.arctan(u)
        dangle = -(p.n1 / p.d) / (1.0 + u * u)
        dj1 = p.a * (dlog * angle + log_term * dangle)
        dj2 = (p.h * p.n2 / self._vt) * np.exp(
            np.minimum(p.n2 * v / self._vt, _EXP_CLIP))
        return dj1 + dj2

    def differential_conductance(self, voltage: float) -> float:
        """Analytic ``dJ/dV`` — negative inside the NDR region."""
        p = self.parameters
        upper = (p.b - p.c + p.n1 * voltage) / self._vt
        lower = (p.b - p.c - p.n1 * voltage) / self._vt
        log_term = _softplus(upper) - _softplus(lower)
        dlog = (p.n1 / self._vt) * (_logistic(upper) + _logistic(lower))
        u = (p.c - p.n1 * voltage) / p.d
        angle = math.pi / 2.0 + math.atan(u)
        dangle = -(p.n1 / p.d) / (1.0 + u * u)
        dj1 = p.a * (dlog * angle + log_term * dangle)
        dj2 = (p.h * p.n2 / self._vt) * _exp_clipped(p.n2 * voltage / self._vt)
        return dj1 + dj2

    # ------------------------------------------------------------------
    # Landmark extraction (used by Fig. 4 / Fig. 5 experiments)
    # ------------------------------------------------------------------

    def peak(self, v_max: float = None, points: int = 4001):
        """Locate the (first) current peak as ``(V_peak, I_peak)``.

        Scans ``[0, v_max]`` for the first sign change of ``dJ/dV`` and
        refines it by bisection.  ``v_max`` defaults to just past the
        resonance alignment voltage ``C/n1``.
        """
        p = self.parameters
        if v_max is None:
            v_max = 1.5 * p.c / p.n1
        return self._first_conductance_zero(1e-6, v_max, points, falling=True)

    def valley(self, v_max: float = None, points: int = 4001):
        """Locate the valley (current minimum past the peak)."""
        p = self.parameters
        if v_max is None:
            v_max = 8.0 * p.c / p.n1
        v_peak, _ = self.peak()
        return self._first_conductance_zero(
            v_peak * 1.0001, v_max, points, falling=False)

    def _first_conductance_zero(self, v_lo: float, v_hi: float, points: int,
                                falling: bool):
        step = (v_hi - v_lo) / (points - 1)
        prev_v = v_lo
        prev_g = self.differential_conductance(prev_v)
        for k in range(1, points):
            v = v_lo + k * step
            g = self.differential_conductance(v)
            crossed = (prev_g > 0.0 >= g) if falling else (prev_g < 0.0 <= g)
            if crossed:
                lo, hi = prev_v, v
                for _ in range(60):
                    mid = 0.5 * (lo + hi)
                    gm = self.differential_conductance(mid)
                    if (gm > 0.0) == falling:
                        lo = mid
                    else:
                        hi = mid
                v_star = 0.5 * (lo + hi)
                return v_star, self.current(v_star)
            prev_v, prev_g = v, g
        raise ValueError(
            f"no {'peak' if falling else 'valley'} found in "
            f"[{v_lo:.3g}, {v_hi:.3g}]")

    def peak_to_valley_ratio(self) -> float:
        """Peak current divided by valley current."""
        _, i_peak = self.peak()
        _, i_valley = self.valley()
        return i_peak / i_valley

    def ndr_region(self) -> tuple[float, float]:
        """Return ``(V_peak, V_valley)`` — the NDR region boundaries."""
        v_peak, _ = self.peak()
        v_valley, _ = self.valley()
        return v_peak, v_valley

    def __repr__(self) -> str:
        return f"SchulmanRTD({self.parameters!r})"
