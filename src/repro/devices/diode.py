"""Exponential junction diode.

Not a nanodevice, but the standard monotonic nonlinearity: the Newton
baselines are validated against it (they must converge easily), and it
serves as the control case showing that SWEC matches Newton when no NDR is
present.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import thermal_voltage
from repro.devices.base import TwoTerminalDevice


class Diode(TwoTerminalDevice):
    """Shockley diode ``I = Is (e^{V / (n VT)} - 1)`` with linear overflow
    continuation above *v_linear* (mirrors SPICE's junction limiting).

    Parameters
    ----------
    saturation_current:
        ``Is`` in amperes.
    ideality:
        Emission coefficient ``n``.
    temperature:
        Junction temperature in kelvin.
    v_linear:
        Voltage beyond which the exponential is continued linearly to keep
        Newton iterations finite.  Defaults to 40 thermal voltages.
    """

    def __init__(self, saturation_current: float = 1e-14,
                 ideality: float = 1.0, temperature: float = 300.0,
                 v_linear: float | None = None) -> None:
        if saturation_current <= 0.0:
            raise ValueError("saturation current must be positive")
        if ideality <= 0.0:
            raise ValueError("ideality must be positive")
        self.saturation_current = saturation_current
        self.ideality = ideality
        self.n_vt = ideality * thermal_voltage(temperature)
        self.v_linear = 40.0 * self.n_vt if v_linear is None else v_linear

    def current(self, voltage: float) -> float:
        if voltage <= self.v_linear:
            return self.saturation_current * math.expm1(voltage / self.n_vt)
        # Linear continuation, C1-continuous at v_linear.
        i0 = self.saturation_current * math.expm1(self.v_linear / self.n_vt)
        g0 = (self.saturation_current / self.n_vt
              * math.exp(self.v_linear / self.n_vt))
        return i0 + g0 * (voltage - self.v_linear)

    def current_many(self, voltages) -> np.ndarray:
        """Vectorized Shockley law with the same linear continuation."""
        v = np.asarray(voltages, dtype=float)
        clipped = np.minimum(v, self.v_linear)
        exponential = self.saturation_current * np.expm1(clipped / self.n_vt)
        g0 = (self.saturation_current / self.n_vt
              * math.exp(self.v_linear / self.n_vt))
        return exponential + g0 * np.maximum(v - self.v_linear, 0.0)

    def differential_conductance(self, voltage: float) -> float:
        v = min(voltage, self.v_linear)
        return self.saturation_current / self.n_vt * math.exp(v / self.n_vt)

    def __repr__(self) -> str:
        return (f"Diode(Is={self.saturation_current!r}, "
                f"n={self.ideality!r})")
