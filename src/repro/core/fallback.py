"""Graceful degradation: a backend that falls back instead of failing.

:class:`FallbackBackend` wraps a concrete
:class:`~repro.core.backends.SolverBackend` and, when a factorization
or solve raises :class:`~repro.errors.SingularMatrixError`, rebuilds
the same system stack on the next backend in a degradation chain —
``sparse`` → ``dense`` and ``stack`` → ``dense`` by default (``dense``
is terminal: scipy LU with partial pivoting is the most robust engine
in the registry, so a failure there is a genuinely singular system and
re-raises).  The replacement is re-stamped with the cached chord
conductances and the solve is repeated, so the caller never sees the
failure — it sees a slower answer plus an entry in
:attr:`FallbackBackend.events` that the stepper copies into result
metadata (``result.fallback_events``, ``result.backend``).

The degradation is *sticky*: once a backend has failed, every later
solve of the run uses the replacement rather than re-failing first.

Deterministic chaos hooks: when a
:class:`~repro.resilience.FaultPlan` is ambiently active
(:func:`repro.resilience.fault_context`), the wrapper consults
``plan.decide("backend", <active backend name>)`` before each solve and
injects a synthetic factorization failure on a positive decision — the
way the chaos suite exercises the chain on systems that are perfectly
well-conditioned.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import SolverBackend, create_backend
from repro.errors import SingularMatrixError
from repro.resilience.faults import active_plan

__all__ = ["FALLBACK_CHAIN", "FallbackBackend"]

#: Default degradation chain: who replaces whom on a solver failure.
#: ``dense`` is absent on purpose — it is the terminal backend.
FALLBACK_CHAIN: dict[str, str] = {"sparse": "dense", "stack": "dense"}


class FallbackBackend:
    """Wrap a solver backend with a sticky degradation chain.

    Parameters
    ----------
    primary:
        The already-constructed backend to try first.
    chain:
        ``{failing_name: replacement_name}`` overriding
        :data:`FALLBACK_CHAIN`.  A name missing from the chain is
        terminal: its failures propagate.

    The wrapper satisfies the :class:`~repro.core.backends.SolverBackend`
    contract by delegation, so the steppers use it exactly like a
    concrete backend; ``name`` reports the *currently active* engine.
    """

    def __init__(
        self, primary: SolverBackend, chain: dict[str, str] | None = None
    ) -> None:
        self._active = primary
        self._chain = dict(FALLBACK_CHAIN if chain is None else chain)
        self.events: list[dict] = []
        self._stamp_args = None
        self._retired_reuses = 0

    # -- delegated contract ---------------------------------------------

    @property
    def name(self) -> str:
        return self._active.name

    @property
    def reuses(self) -> int:
        return self._retired_reuses + self._active.reuses

    def begin_run(self, flops) -> None:
        self.events = []
        self._retired_reuses = 0
        self._active.begin_run(flops)

    def invalidate(self) -> None:
        self._active.invalidate()

    def stamp(self, device_g, mosfet_g) -> None:
        # Cache copies so a degraded replacement can be stamped into the
        # same state the failing backend was in.
        self._stamp_args = (
            np.array(device_g, dtype=float, copy=True),
            np.array(mosfet_g, dtype=float, copy=True),
        )
        self._active.stamp(device_g, mosfet_g)

    def g_diagonal(self):
        return self._active.g_diagonal()

    def c_matvec(self, states):
        return self._active.c_matvec(states)

    def g_matvec(self, states):
        return self._active.g_matvec(states)

    def solve_transient(self, h, rhs, trapezoidal: bool = False):
        return self._solve(
            "solve_transient", h, rhs, trapezoidal=trapezoidal
        )

    def solve_conductance(self, rhs):
        return self._solve("solve_conductance", rhs)

    def __getattr__(self, item):
        # Everything else (systems, size, flops...) reads through to the
        # active backend.
        return getattr(self._active, item)

    # -- degradation ----------------------------------------------------

    def _solve(self, op: str, *args, **kwargs):
        while True:
            try:
                self._maybe_inject(op)
                return getattr(self._active, op)(*args, **kwargs)
            except SingularMatrixError as exc:
                if not self._degrade(op, exc):
                    raise

    def _maybe_inject(self, op: str) -> None:
        plan = active_plan()
        if plan is not None and plan.decide("backend", self._active.name):
            raise SingularMatrixError(
                f"injected factorization failure on backend "
                f"{self._active.name!r} ({op})"
            )

    def _degrade(self, op: str, exc: Exception) -> bool:
        next_name = self._chain.get(self._active.name)
        if next_name is None:
            return False
        replacement = create_backend(
            next_name,
            self._active.systems,
            flops=self._active.flops,
            factor_rtol=self._active.factor_rtol,
            chunk_entries=self._active.chunk_entries,
        )
        if self._stamp_args is not None:
            replacement.stamp(*self._stamp_args)
        self.events.append(
            {
                "from": self._active.name,
                "to": next_name,
                "op": op,
                "error": f"{type(exc).__name__}: {exc}",
            }
        )
        self._retired_reuses += self._active.reuses
        self._active = replacement
        return True
