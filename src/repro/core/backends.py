"""Pluggable solver backends: one factor/solve contract, four engines.

Every analysis in this repo reduces to the same recipe — stamp a linear
system, solve it, advance — but until this module each engine hard-wired
its own solver: the scalar transient called dense LAPACK, the ensemble
march batched ``np.linalg.solve``, and the scipy-sparse path was only
reachable from one engine.  A :class:`SolverBackend` owns the
backend-specific half of that recipe for a stack of K same-topology
:class:`~repro.mna.assembler.MnaSystem` instances:

``dense``
    Per-instance dense assembly with scipy LU
    (:class:`~repro.mna.linsolve.LinearSolver`), optionally wrapped in
    the :class:`~repro.mna.linsolve.CachedFactorization` reuse cache.
    The classic K = 1 SWEC path.
``sparse``
    CSR assembly on the cached symbolic pattern of
    :class:`~repro.mna.sparse.SparseOperators` with SuperLU solves
    (:class:`~repro.mna.sparse.SparseSolver`), vectorized over the
    batch axis — grid-scale circuits, now for every analysis (the
    sparse *ensemble* march did not exist before this layer).
``stack``
    The chunked batched-LAPACK path of
    :func:`~repro.mna.batch.solve_stack`: one ``np.linalg.solve`` call
    per ``(K, n, n)`` chunk.  The lockstep-ensemble hot path.
``auto``
    Not a backend but a selector: :func:`select_backend` picks by
    system size, batch width and fill ratio.

Backends are addressed by name through a registry
(:func:`get_backend` / :func:`register_backend`), which is what the
``backend=`` knob threaded through :class:`~repro.swec.SwecOptions`,
the runtime jobs, the sweep specs and the CLIs resolves against.

Flop accounting lives *inside* the backends so the
:class:`~repro.perf.flops.FlopCounter` event counters (factorizations,
linear solves) are comparable across them: one transient march records
the same number of factor/solve events whichever backend executes it
(the flop totals still reflect each algorithm's own cost model — dense
``2/3 n^3`` versus the SuperLU fill-in estimate).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError, SingularMatrixError
from repro.mna.batch import ConductanceStamper, solve_stack
from repro.mna.linsolve import CachedFactorization, LinearSolver
from repro.perf.flops import FlopCounter

__all__ = [
    "AUTO_SPARSE_MAX_DENSITY",
    "AUTO_SPARSE_MIN_SIZE",
    "BACKENDS",
    "DenseBackend",
    "SolverBackend",
    "SparseBackend",
    "StackBackend",
    "available_backends",
    "create_backend",
    "get_backend",
    "register_backend",
    "select_backend",
    "system_density",
]

#: Smallest system size for which ``auto`` considers the sparse path.
AUTO_SPARSE_MIN_SIZE = 192

#: Largest fill ratio for which ``auto`` considers the sparse path.
AUTO_SPARSE_MAX_DENSITY = 0.05


def _conductance_pairs(system) -> list[tuple[int, int]]:
    """Two-terminal stamp pairs: devices, then MOSFET drain-source."""
    return list(system.device_terminals()) + [
        (drain, source) for drain, _gate, source in system.mosfet_terminals()
    ]


class SolverBackend:
    """Assembly + factor/solve engine for K same-topology systems.

    Subclasses own the matrix representation; callers see one
    batch-first contract (every array carries a leading instance axis,
    K = 1 included):

    ``stamp(device_g, mosfet_g)``
        Assemble ``G = G_base + stamps`` for all K instances from the
        ``(K, n_devices)`` / ``(K, n_mosfets)`` chord conductances.
    ``g_diagonal()``
        ``(K, n)`` diagonal of the stamped ``G`` (the eq.-12 node-RC
        step bound needs nothing else).
    ``c_matvec(states)`` / ``g_matvec(states)``
        ``(K, n)`` products ``C x`` and ``G x`` per instance.
    ``solve_transient(h, rhs, trapezoidal=False)``
        Factor and solve ``(G + C/h) x = rhs`` (or the trapezoidal
        ``G/2 + C/h``) for all K right-hand sides.
    ``solve_conductance(rhs)``
        Factor and solve ``G x = rhs`` — the DC / chord-fixed-point
        form.

    ``begin_run(flops)`` rebinds the flop counter and drops any cached
    factorization so consecutive runs start cold; ``invalidate()``
    drops the caches without touching the counter.  ``reuses`` reports
    factorizations skipped by the ``factor_rtol`` cache since the last
    ``begin_run``.
    """

    #: Registry key; subclasses override.
    name = "?"

    def __init__(
        self,
        systems,
        *,
        flops: FlopCounter | None = None,
        factor_rtol: float | None = None,
        chunk_entries: int | None = None,
    ) -> None:
        systems = list(systems)
        if not systems:
            raise AnalysisError("a solver backend needs >= 1 system")
        self.systems = systems
        self.system = systems[0]
        self.n_instances = len(systems)
        self.size = self.system.size
        self.flops = flops
        self.factor_rtol = factor_rtol
        self.chunk_entries = chunk_entries

    # -- interface ------------------------------------------------------

    def stamp(self, device_g: np.ndarray, mosfet_g: np.ndarray) -> None:
        """Assemble ``G`` for every instance from chord conductances."""
        raise NotImplementedError

    def g_diagonal(self) -> np.ndarray:
        """``(K, n)`` diagonal of the stamped conductance matrices."""
        raise NotImplementedError

    def c_matvec(self, states: np.ndarray) -> np.ndarray:
        """``(K, n)`` products ``C x`` per instance."""
        raise NotImplementedError

    def g_matvec(self, states: np.ndarray) -> np.ndarray:
        """``(K, n)`` products ``G x`` per instance (stamped ``G``)."""
        raise NotImplementedError

    def solve_transient(
        self, h: float, rhs: np.ndarray, trapezoidal: bool = False
    ) -> np.ndarray:
        """Solve ``(scale G + C/h) x = rhs`` for the whole stack."""
        raise NotImplementedError

    def solve_conductance(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``G x = rhs`` for the whole stack (DC form)."""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------

    def begin_run(self, flops: FlopCounter | None) -> None:
        """Point flop accounting at *flops* and start from a cold cache."""
        self.flops = flops
        self._rebind_flops()
        self.invalidate()
        self._reset_reuses()

    def invalidate(self) -> None:
        """Drop cached factorizations; the next solve refactors."""

    @property
    def reuses(self) -> int:
        """Factorizations skipped by the reuse cache this run."""
        return 0

    def _rebind_flops(self) -> None:
        """Hook for subclasses holding per-instance solver objects."""

    def _reset_reuses(self) -> None:
        """Hook: zero the reuse counters at run start."""


class _DenseStorageBackend(SolverBackend):
    """Shared ``(K, n, n)`` dense storage for the dense/stack backends."""

    def __init__(self, systems, **kwargs) -> None:
        super().__init__(systems, **kwargs)
        K, n = self.n_instances, self.size
        self._g_base = np.empty((K, n, n))
        self._c = np.empty((K, n, n))
        bases: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for k, system in enumerate(self.systems):
            if id(system) not in bases:
                bases[id(system)] = (
                    system.conductance_base(),
                    system.capacitance_matrix(),
                )
            self._g_base[k], self._c[k] = bases[id(system)]
        self._g = np.empty((K, n, n))
        self._a = np.empty((K, n, n))
        self._stamper = ConductanceStamper(_conductance_pairs(self.system), n)

    def stamp(self, device_g: np.ndarray, mosfet_g: np.ndarray) -> None:
        np.copyto(self._g, self._g_base)
        values = np.concatenate(
            (np.asarray(device_g, dtype=float), np.asarray(mosfet_g, dtype=float)),
            axis=-1,
        )
        if values.shape[-1]:
            self._stamper.stamp(self._g, values)

    def g_diagonal(self) -> np.ndarray:
        return np.diagonal(self._g, axis1=-2, axis2=-1)

    def c_matvec(self, states: np.ndarray) -> np.ndarray:
        return np.matmul(self._c, states[:, :, None])[:, :, 0]

    def g_matvec(self, states: np.ndarray) -> np.ndarray:
        return np.matmul(self._g, states[:, :, None])[:, :, 0]

    def _system_matrix(self, h: float, trapezoidal: bool) -> np.ndarray:
        np.multiply(self._c, 1.0 / h, out=self._a)
        if trapezoidal:
            # One transient temporary on the rare trapezoidal path; the
            # backward-Euler hot path is allocation-free.
            self._a += 0.5 * self._g
        else:
            self._a += self._g
        return self._a


class _PerInstanceSolvers:
    """Cache lifecycle shared by backends holding one factor/solve
    object per instance (dense LU, SuperLU), each optionally wrapped
    in the :class:`~repro.mna.linsolve.CachedFactorization` reuse
    cache when ``factor_rtol`` is given."""

    def _make_solvers(self, factory) -> None:
        self._solvers = []
        for _ in range(self.n_instances):
            solver = factory(self.flops)
            if self.factor_rtol is not None:
                solver = CachedFactorization(solver, self.factor_rtol)
            self._solvers.append(solver)

    def _rebind_flops(self) -> None:
        for solver in self._solvers:
            if isinstance(solver, CachedFactorization):
                solver.solver.flops = self.flops
            else:
                solver.flops = self.flops

    def _reset_reuses(self) -> None:
        for solver in self._solvers:
            if isinstance(solver, CachedFactorization):
                solver.reuses = 0

    def invalidate(self) -> None:
        for solver in self._solvers:
            if isinstance(solver, CachedFactorization):
                solver.invalidate()

    @property
    def reuses(self) -> int:
        return sum(
            solver.reuses
            for solver in self._solvers
            if isinstance(solver, CachedFactorization)
        )


class DenseBackend(_PerInstanceSolvers, _DenseStorageBackend):
    """Per-instance dense LU (scipy LAPACK) with optional factor reuse.

    This is the classic single-instance SWEC path: one
    :class:`~repro.mna.linsolve.LinearSolver` per instance, wrapped in
    :class:`~repro.mna.linsolve.CachedFactorization` when
    ``factor_rtol`` is given.  For K > 1 it is the serial reference
    the ``stack`` backend is benchmarked against.
    """

    name = "dense"

    def __init__(self, systems, **kwargs) -> None:
        super().__init__(systems, **kwargs)
        self._make_solvers(LinearSolver)

    def _factor_solve(self, matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        out = np.empty((self.n_instances, self.size))
        for k, solver in enumerate(self._solvers):
            solver.factor(matrices[k])
            out[k] = solver.solve(rhs[k])
        return out

    def solve_transient(
        self, h: float, rhs: np.ndarray, trapezoidal: bool = False
    ) -> np.ndarray:
        return self._factor_solve(self._system_matrix(h, trapezoidal), rhs)

    def solve_conductance(self, rhs: np.ndarray) -> np.ndarray:
        return self._factor_solve(self._g, rhs)


class StackBackend(_DenseStorageBackend):
    """Chunked batched ``np.linalg.solve`` over the ``(K, n, n)`` stack.

    One LAPACK batch call per chunk (:func:`~repro.mna.batch.solve_stack`
    bounds chunk memory); every solve refactors, so ``factor_rtol`` has
    no effect here.  The lockstep-ensemble hot path, and a correct
    (if caching-free) K = 1 backend.
    """

    name = "stack"

    def _solve(self, matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        solution = solve_stack(matrices, rhs, chunk_entries=self.chunk_entries)
        if self.flops is not None:
            self.flops.count_factorization(self.size, count=self.n_instances)
            self.flops.count_solve(self.size, count=self.n_instances)
        if not np.all(np.isfinite(solution)):
            bad = np.flatnonzero(~np.all(np.isfinite(solution), axis=1))
            raise SingularMatrixError(
                f"non-finite solution for instance(s) {bad.tolist()[:8]}"
            )
        return solution

    def solve_transient(
        self, h: float, rhs: np.ndarray, trapezoidal: bool = False
    ) -> np.ndarray:
        return self._solve(self._system_matrix(h, trapezoidal), rhs)

    def solve_conductance(self, rhs: np.ndarray) -> np.ndarray:
        return self._solve(self._g, rhs)


class SparseBackend(_PerInstanceSolvers, SolverBackend):
    """SuperLU factor/solve on the cached CSR pattern, batch-first.

    Assembly is data-array arithmetic on the one-time symbolic pattern
    of :class:`~repro.mna.sparse.SparseOperators` — the conductance
    stamps of all K instances scatter into a ``(K, nnz)`` stack in one
    ``np.add.at`` call — and each instance pays an O(nnz) SuperLU
    factor instead of the dense O(n^3).  With ``factor_rtol`` the
    per-instance :class:`~repro.mna.linsolve.CachedFactorization`
    reuse cache applies exactly as on the dense path.
    """

    name = "sparse"

    def __init__(self, systems, **kwargs) -> None:
        super().__init__(systems, **kwargs)
        from repro.mna.sparse import SparseOperators, SparseSolver

        operators: dict[int, SparseOperators] = {}
        self._ops = []
        for system in self.systems:
            if id(system) not in operators:
                operators[id(system)] = SparseOperators(system)
            self._ops.append(operators[id(system)])
        pattern = self._ops[0]
        self._nnz = pattern.nnz
        for ops in self._ops:
            if ops.nnz != self._nnz:
                raise AnalysisError(
                    "sparse backend needs one shared sparsity pattern "
                    "across the instance stack"
                )
        K = self.n_instances
        self._base_data = np.stack([ops.base_data for ops in self._ops])
        self._c_data = np.stack([ops.c_data for ops in self._ops])
        self._g_data = np.empty((K, self._nnz))
        positions, columns, signs = pattern.stamp_indices()
        self._positions = positions
        self._columns = columns
        self._signs = signs
        self._diag_positions, self._diag_mask = pattern.diagonal_positions()
        self._make_solvers(SparseSolver)

    def stamp(self, device_g: np.ndarray, mosfet_g: np.ndarray) -> None:
        np.copyto(self._g_data, self._base_data)
        values = np.concatenate(
            (np.asarray(device_g, dtype=float), np.asarray(mosfet_g, dtype=float)),
            axis=-1,
        )
        if self._positions.size == 0 or not values.shape[-1]:
            return
        contributions = values[:, self._columns] * self._signs
        rows = np.arange(self.n_instances, dtype=np.intp)[:, None]
        np.add.at(self._g_data, (rows, self._positions[None, :]), contributions)

    def g_diagonal(self) -> np.ndarray:
        return self._g_data[:, self._diag_positions] * self._diag_mask

    def c_matvec(self, states: np.ndarray) -> np.ndarray:
        out = np.empty((self.n_instances, self.size))
        for k, ops in enumerate(self._ops):
            out[k] = ops.c_matrix @ states[k]
        return out

    def g_matvec(self, states: np.ndarray) -> np.ndarray:
        out = np.empty((self.n_instances, self.size))
        for k, ops in enumerate(self._ops):
            out[k] = ops.matrix_from_data(self._g_data[k]) @ states[k]
        return out

    def _factor_solve(self, data: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        out = np.empty((self.n_instances, self.size))
        for k, solver in enumerate(self._solvers):
            matrix = self._ops[k].matrix_from_data(data[k]).tocsc()
            solver.factor(matrix)
            out[k] = solver.solve(rhs[k])
        return out

    def solve_transient(
        self, h: float, rhs: np.ndarray, trapezoidal: bool = False
    ) -> np.ndarray:
        scale = 0.5 if trapezoidal else 1.0
        data = scale * self._g_data + self._c_data / h
        return self._factor_solve(data, rhs)

    def solve_conductance(self, rhs: np.ndarray) -> np.ndarray:
        return self._factor_solve(self._g_data, rhs)


#: Name -> backend class.  ``auto`` is resolved by :func:`select_backend`
#: before this registry is consulted.
BACKENDS: dict[str, type] = {
    DenseBackend.name: DenseBackend,
    SparseBackend.name: SparseBackend,
    StackBackend.name: StackBackend,
}


def register_backend(cls: type) -> type:
    """Register a :class:`SolverBackend` subclass under ``cls.name``.

    Returns the class, so it can be used as a decorator.  Registered
    names immediately become legal ``backend=`` values for the
    transient/DC engines and everywhere their knob is threaded
    (SwecOptions, SwecDCOptions, jobs, sweep specs, CLIs).  The AC
    sweeps are the exception: they need a complex-dtype solve per
    strategy and accept only :data:`repro.ac.analysis.AC_BACKENDS`.
    """
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == "?":
        raise ValueError(f"backend class {cls!r} needs a name attribute")
    if name == "auto":
        raise ValueError('"auto" is reserved for the selector')
    BACKENDS[name] = cls
    return cls


def available_backends() -> tuple[str, ...]:
    """Legal ``backend=`` names (registered backends plus ``auto``)."""
    return tuple(sorted(BACKENDS)) + ("auto",)


def get_backend(name: str) -> type:
    """Look up a registered backend class by name."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise AnalysisError(
            f"unknown solver backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        ) from None


def system_density(system) -> float:
    """Estimated fill ratio of the transient system matrix.

    Counts the union pattern the march can produce — the nonzeros of
    ``G_base`` and ``C`` plus up to four entries per two-terminal
    stamp — without building the sparse operators.
    """
    n = system.size
    if n == 0:
        return 1.0
    pattern = (system.conductance_base() != 0.0) | (system.capacitance_matrix() != 0.0)
    nnz = int(np.count_nonzero(pattern))
    nnz += 4 * len(_conductance_pairs(system))
    return min(1.0, nnz / float(n * n))


def select_backend(systems, n_instances: int | None = None) -> str:
    """Resolve ``auto`` to a concrete backend name.

    Large, sparse systems (size >= :data:`AUTO_SPARSE_MIN_SIZE`, fill
    ratio <= :data:`AUTO_SPARSE_MAX_DENSITY`) take the sparse path;
    otherwise batches take ``stack`` and single instances ``dense``.
    """
    systems = list(systems)
    k = len(systems) if n_instances is None else int(n_instances)
    system = systems[0]
    if (
        system.size >= AUTO_SPARSE_MIN_SIZE
        and system_density(system) <= AUTO_SPARSE_MAX_DENSITY
    ):
        return "sparse"
    return "stack" if k > 1 else "dense"


def create_backend(
    name: str | None,
    systems,
    *,
    default: str = "dense",
    flops: FlopCounter | None = None,
    factor_rtol: float | None = None,
    chunk_entries: int | None = None,
) -> SolverBackend:
    """Instantiate the backend *name* (or *default*) for *systems*.

    ``"auto"`` (and ``None`` with ``default="auto"``) resolves through
    :func:`select_backend` first.
    """
    systems = list(systems)
    resolved = default if name is None else name
    if resolved == "auto":
        resolved = select_backend(systems)
    cls = get_backend(resolved)
    return cls(
        systems,
        flops=flops,
        factor_rtol=factor_rtol,
        chunk_entries=chunk_entries,
    )
