"""Unified solver-backend core: one assembly/solve pipeline.

Nano-Sim's pitch is that SWEC chord linearization turns *every*
analysis into "stamp a linear system, solve, advance".  This package
makes that literal:

- :mod:`repro.core.backends` defines the :class:`SolverBackend`
  contract and the registry of implementations — ``dense`` (scipy
  LAPACK + the ``factor_rtol`` reuse cache), ``sparse`` (SuperLU on
  the cached CSR pattern), ``stack`` (chunked batched
  ``np.linalg.solve``) and the ``auto`` selector.
- :mod:`repro.core.stepper` owns the shared transient marching loop
  (:class:`LinearStepper`): chord evaluation, stamping, adaptive or
  fixed-grid advance, noise injection — with every factor/solve
  delegated to the chosen backend.

The transient engines (:class:`~repro.swec.SwecTransient` as the
K = 1 slice, :class:`~repro.swec.SwecEnsembleTransient` as the batched
default), :class:`~repro.swec.SwecDC`, the AC sweeps and the
circuit-noise Monte-Carlo all resolve their ``backend=`` knob against
this registry.
"""

from repro.core.backends import (
    AUTO_SPARSE_MAX_DENSITY,
    AUTO_SPARSE_MIN_SIZE,
    BACKENDS,
    DenseBackend,
    SolverBackend,
    SparseBackend,
    StackBackend,
    available_backends,
    create_backend,
    get_backend,
    register_backend,
    select_backend,
    system_density,
)
from repro.core.fallback import FALLBACK_CHAIN, FallbackBackend
from repro.core.stepper import LinearStepper

__all__ = [
    "AUTO_SPARSE_MAX_DENSITY",
    "AUTO_SPARSE_MIN_SIZE",
    "BACKENDS",
    "DenseBackend",
    "FALLBACK_CHAIN",
    "FallbackBackend",
    "LinearStepper",
    "SolverBackend",
    "SparseBackend",
    "StackBackend",
    "available_backends",
    "create_backend",
    "get_backend",
    "register_backend",
    "select_backend",
    "system_density",
]
