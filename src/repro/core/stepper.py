"""The shared SWEC marching loop: stamp -> factor -> solve -> advance.

Before this module the repo carried four hand-rolled copies of the same
recipe (scalar transient, DC fixed point, lockstep ensemble, AC sweep).
:class:`LinearStepper` owns the transient form of it once, batch-first:
K same-topology circuit instances march together, and every
backend-specific operation — assembly representation, factorization,
solve, flop accounting — is delegated to a
:class:`~repro.core.backends.SolverBackend` chosen by name.  The scalar
:class:`~repro.swec.engine.SwecTransient` is literally the K = 1 slice
of this march; :class:`~repro.swec.ensemble.SwecEnsembleTransient` is a
thin alias that defaults to the batched ``stack`` backend.

Per accepted point the stepper

1. evaluates the chord conductances of all K states at once through
   the vectorized device laws (grouping instances that share a device
   parameter record, so the common all-instances-alike case is one
   ``current_many`` call per device slot),
2. hands them to the backend's ``stamp`` (dense ``(K, n, n)`` stack or
   sparse ``(K, nnz)`` data stack — the stepper never sees the matrix
   representation), and
3. solves the backward-Euler (or trapezoidal) update through the
   backend's ``solve_transient``.

Two marching modes survive unchanged from the ensemble engine:
:meth:`LinearStepper.run` (the paper's eq.-10/12 adaptive control,
worst-case over the ensemble) and :meth:`LinearStepper.run_grid` (an
explicit shared grid, the bit-reproducible mode that also carries the
paper's eq.-13 noise injections as implicit Euler-Maruyama).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.waveforms import EnsembleTransientResult
from repro.circuit.netlist import Circuit
from repro.circuit.sources import waveform_state_key
from repro.core.backends import SolverBackend, create_backend
from repro.errors import AnalysisError
from repro.mna.assembler import MnaSystem
from repro.perf.flops import FlopCounter

__all__ = ["LinearStepper"]


def _check_same_topology(reference: Circuit, circuit: Circuit, index: int) -> None:
    """Raise unless *circuit* shares *reference*'s exact topology."""
    if circuit.nodes != reference.nodes:
        raise AnalysisError(
            f"ensemble instance {index} has different nodes "
            f"{circuit.nodes} vs {reference.nodes}"
        )
    for category in (
        "resistors",
        "capacitors",
        "inductors",
        "voltage_sources",
        "current_sources",
        "devices",
        "mosfets",
    ):
        ours = getattr(circuit, category)
        theirs = getattr(reference, category)
        if len(ours) != len(theirs):
            raise AnalysisError(
                f"ensemble instance {index} has {len(ours)} {category}, "
                f"instance 0 has {len(theirs)}"
            )
        for a, b in zip(ours, theirs):
            if a.name != b.name or a.nodes != b.nodes:
                raise AnalysisError(
                    f"ensemble instance {index}: {category[:-1]} "
                    f"{a.name!r} on {a.nodes} does not match instance "
                    f"0's {b.name!r} on {b.nodes}"
                )


class _SourceBank:
    """Vectorized ``b(t)`` assembly across instances.

    Per source slot, instances whose waveforms are value-identical
    (:func:`~repro.circuit.sources.waveform_state_key`) are grouped so
    each distinct waveform is evaluated once per time point.
    """

    def __init__(self, circuits: Sequence[Circuit], system: MnaSystem) -> None:
        self.n_instances = len(circuits)
        self.size = system.size
        self._vsrc: list[tuple[int, list]] = []
        for slot, source in enumerate(circuits[0].voltage_sources):
            row = system.vsource_index(source.name)
            waveforms = [c.voltage_sources[slot].waveform for c in circuits]
            self._vsrc.append((row, self._group(waveforms)))
        self._isrc: list[tuple[int, int, list]] = []
        for slot, source in enumerate(circuits[0].current_sources):
            p = system.node_index(source.nodes[0])
            q = system.node_index(source.nodes[1])
            waveforms = [c.current_sources[slot].waveform for c in circuits]
            self._isrc.append((p, q, self._group(waveforms)))

    @staticmethod
    def _group(waveforms) -> list:
        groups: dict = {}
        order: list = []
        for k, waveform in enumerate(waveforms):
            key = waveform_state_key(waveform)
            if key not in groups:
                groups[key] = (waveform, [])
                order.append(key)
            groups[key][1].append(k)
        grouped = [groups[key] for key in order]
        return [
            (waveform, np.asarray(indices, dtype=np.intp))
            for waveform, indices in grouped
        ]

    def assemble(self, t: float, out: np.ndarray) -> np.ndarray:
        """Fill *out* (a ``(K, n)`` buffer) with ``b(t)`` per instance."""
        out.fill(0.0)
        for row, groups in self._vsrc:
            if len(groups) == 1:
                out[:, row] = groups[0][0].value(t)
            else:
                for waveform, idx in groups:
                    out[idx, row] = waveform.value(t)
        for p, q, groups in self._isrc:
            for waveform, idx in groups:
                value = waveform.value(t)
                if p >= 0:
                    out[idx, p] -= value
                if q >= 0:
                    out[idx, q] += value
        return out


class _DeviceSlot:
    """Chord evaluation for one two-terminal device slot across K
    instances, grouped by the models' ``batch_key`` so equal-parameter
    models share one vectorized call."""

    def __init__(self, elements) -> None:
        n = len(elements)
        self.multiplicity = np.array([e.multiplicity for e in elements])
        groups: dict = {}
        order = []
        for k, element in enumerate(elements):
            key = element.model.batch_key()
            if key not in groups:
                groups[key] = (element.model, [])
                order.append(key)
            groups[key][1].append(k)
        grouped = [groups[key] for key in order]
        self.groups = [
            (model, np.asarray(indices, dtype=np.intp)) for model, indices in grouped
        ]
        self.single = len(self.groups) == 1 and self.groups[0][1].size == n

    def chord(self, voltages: np.ndarray) -> np.ndarray:
        """``(K,)`` chord conductances (multiplicity applied)."""
        if self.single:
            model = self.groups[0][0]
            return self.multiplicity * model.chord_conductance_many(voltages)
        out = np.empty_like(voltages)
        for model, idx in self.groups:
            conductance = model.chord_conductance_many(voltages[idx])
            out[idx] = self.multiplicity[idx] * conductance
        return out

    def chord_derivative(self, voltages: np.ndarray) -> np.ndarray:
        """``(K,)`` chord derivatives for the eq.-5 predictor."""
        if self.single:
            model = self.groups[0][0]
            derivative = model.chord_conductance_derivative_many(voltages)
            return self.multiplicity * derivative
        out = np.empty_like(voltages)
        for model, idx in self.groups:
            derivative = model.chord_conductance_derivative_many(voltages[idx])
            out[idx] = self.multiplicity[idx] * derivative
        return out


class LinearStepper:
    """Backend-agnostic lockstep SWEC march over K circuit instances.

    Parameters
    ----------
    circuits:
        A sequence of K :class:`~repro.circuit.Circuit` objects sharing
        one topology (same nodes and element names/connections; values,
        waveforms and device parameters are free), or a single circuit
        with ``n_instances=K`` for noise-/initial-state-only ensembles.
    options:
        :class:`~repro.swec.engine.SwecOptions`.  ``options.backend``
        selects the solver backend by registry name; ``None`` falls
        back to *default_backend*.
    n_instances:
        Instance count when *circuits* is a single circuit.
    noise:
        Optional ``(node, amplitude)`` white-noise current injections
        (the paper's eq.-13 ``B dW`` term); amplitudes are scalars or
        length-K arrays.  Noise requires the fixed-grid backward-Euler
        mode.
    trace_instances:
        Instance indices whose per-step device chord conductances are
        recorded (requires ``options.trace_conductance``); tracing is
        per-instance opt-in so the trace memory stays at
        ``8 * T * len(trace_instances) * n_devices`` bytes.
    chunk_entries:
        Matrix entries per batched-solve chunk on the ``stack`` backend
        (default :data:`repro.mna.batch.CHUNK_ENTRIES`); results are
        bit-identical for any value.
    default_backend:
        Registry name used when ``options.backend`` is ``None``
        (``"auto"`` resolves by system size and fill ratio).
    """

    def __init__(
        self,
        circuits,
        options=None,
        *,
        n_instances: int | None = None,
        noise: Sequence[tuple[str, object]] | Mapping | None = None,
        trace_instances: Sequence[int] = (),
        chunk_entries: int | None = None,
        default_backend: str = "stack",
    ) -> None:
        from repro.swec.conductance import SwecLinearization
        from repro.swec.engine import SwecOptions
        from repro.swec.timestep import EnsembleStepController

        if isinstance(circuits, Circuit):
            if n_instances is None or n_instances < 1:
                raise AnalysisError("a single-circuit ensemble needs n_instances >= 1")
            circuits = [circuits] * int(n_instances)
        else:
            circuits = list(circuits)
            if not circuits:
                raise AnalysisError("ensemble needs at least one circuit")
            if n_instances is not None and n_instances != len(circuits):
                raise AnalysisError(
                    f"n_instances={n_instances} does not match the "
                    f"{len(circuits)} circuits given"
                )
        self.circuits = circuits
        self.n_instances = len(circuits)
        self.options = options or SwecOptions()
        for index, circuit in enumerate(circuits[1:], start=1):
            _check_same_topology(circuits[0], circuit, index)

        systems: dict[int, MnaSystem] = {}
        self.systems = []
        for circuit in circuits:
            if id(circuit) not in systems:
                systems[id(circuit)] = MnaSystem(circuit)
            self.systems.append(systems[id(circuit)])
        self.system = self.systems[0]
        self.size = self.system.size
        self.linearization = SwecLinearization(
            self.system, use_predictor=self.options.use_predictor
        )
        self.controller = EnsembleStepController(
            self.systems, circuits, self.options.step
        )
        self._chunk_entries = chunk_entries
        self.backend: SolverBackend = create_backend(
            self.options.resolved_backend(),
            self.systems,
            default=default_backend,
            factor_rtol=self.options.factor_rtol,
            chunk_entries=chunk_entries,
        )
        if getattr(self.options, "fallback", False):
            from repro.core.fallback import FallbackBackend

            self.backend = FallbackBackend(self.backend)

        self._sources = _SourceBank(circuits, self.system)
        self._device_slots = [
            _DeviceSlot([c.devices[j] for c in circuits])
            for j in range(len(circuits[0].devices))
        ]
        # Cross-slot grouping: device slots whose K models all share one
        # parameter record evaluate as a single (K, n_slots) vectorized
        # call — a 20x20 RTD mesh pays one chord_conductance_many call
        # per step instead of 400.  Slots with per-instance parameter
        # variations keep the per-slot grouped path.
        if self._device_slots:
            stacked = [slot.multiplicity for slot in self._device_slots]
            self._multiplicity = np.stack(stacked, axis=1)
        else:
            self._multiplicity = np.zeros((self.n_instances, 0))
        uniform: dict = {}
        order: list = []
        self._mixed_slots: list[int] = []
        for j, slot in enumerate(self._device_slots):
            if slot.single:
                key = slot.groups[0][0].batch_key()
                if key not in uniform:
                    uniform[key] = (slot.groups[0][0], [])
                    order.append(key)
                uniform[key][1].append(j)
            else:
                self._mixed_slots.append(j)
        grouped = [uniform[key] for key in order]
        self._uniform_groups = [
            (model, np.asarray(indices, dtype=np.intp)) for model, indices in grouped
        ]
        # Single instance, few devices: the vectorized laws pay more in
        # numpy small-array overhead than they save, so the K = 1 slice
        # of small circuits evaluates chords through the scalar
        # SwecLinearization loop (numerically equivalent — the lockstep
        # tests bound the difference at 1e-10).
        n_nonlinear = len(self._device_slots) + len(circuits[0].mosfets)
        self._scalar_chords = self.n_instances == 1 and n_nonlinear <= 32
        mosfets = circuits[0].mosfets
        if mosfets:
            models = [
                [c.mosfets[j].model for c in circuits] for j in range(len(mosfets))
            ]
            names = ("kp", "w", "l", "vth", "polarity", "channel_modulation")
            self._mosfet_params = {
                name: np.array([[getattr(m, name) for m in row] for row in models]).T
                for name in names
            }
        else:
            self._mosfet_params = None

        self._noise_matrix = self._build_noise(noise)
        K = self.n_instances
        self.trace_instances = tuple(int(k) for k in trace_instances)
        for k in self.trace_instances:
            if not 0 <= k < K:
                raise AnalysisError(f"trace instance {k} out of range [0, {K})")
        if self.options.trace_conductance and not self.trace_instances:
            raise AnalysisError(
                "trace_conductance on an ensemble needs explicit "
                "trace_instances=(...) — a full per-instance trace would "
                "hold K * T * n_devices floats"
            )
        if self.trace_instances and not self.options.trace_conductance:
            raise AnalysisError(
                "trace_instances needs options.trace_conductance=True "
                "(tracing is gated on the same flag as the scalar engine)"
            )

    @property
    def backend_name(self) -> str:
        """Registry name of the resolved solver backend."""
        return self.backend.name

    # ------------------------------------------------------------------

    def _build_noise(self, noise) -> np.ndarray | None:
        if noise is None:
            return None
        if isinstance(noise, Mapping):
            noise = list(noise.items())
        noise = list(noise)
        if not noise:
            return None
        K, n = self.n_instances, self.size
        matrix = np.zeros((K, n, len(noise)))
        for column, entry in enumerate(noise):
            node, amplitude = entry[0], entry[1]
            index = self.system.node_index(node)
            if index < 0:
                raise AnalysisError("cannot inject noise at ground")
            amplitude = np.asarray(amplitude, dtype=float)
            if amplitude.ndim == 0:
                matrix[:, index, column] = float(amplitude)
            elif amplitude.shape == (K,):
                matrix[:, index, column] = amplitude
            else:
                raise AnalysisError(
                    f"noise amplitude for {node!r} must be a scalar or "
                    f"a length-{K} array, got shape {amplitude.shape}"
                )
        return matrix

    @property
    def num_noises(self) -> int:
        """Number of independent white-noise injections."""
        return 0 if self._noise_matrix is None else self._noise_matrix.shape[2]

    # ------------------------------------------------------------------
    # Chord conductances, all instances at once
    # ------------------------------------------------------------------

    def _device_conductances(
        self, states, prev_states, h_prev, h_next, flops: FlopCounter | None
    ) -> np.ndarray:
        """``(K, n_devices)`` chord conductances, Taylor-corrected."""
        if self._scalar_chords:
            previous = None if prev_states is None else prev_states[0]
            scalar = self.linearization.device_conductances(
                states[0], previous, h_prev, h_next, flops=flops
            )
            return scalar[None, :]
        voltages = self.linearization.device_voltages(states)
        K = self.n_instances
        if not self._device_slots:
            return voltages
        conductances = np.empty_like(voltages)
        predict = self.options.use_predictor and prev_states is not None
        predict = predict and bool(h_prev) and bool(h_next)
        if predict:
            prev_voltages = self.linearization.device_voltages(prev_states)
            dv_dt = (voltages - prev_voltages) / h_prev
        for model, idx in self._uniform_groups:
            v = voltages[:, idx]
            g = self._multiplicity[:, idx] * model.chord_conductance_many(v)
            if predict:
                derivative = model.chord_conductance_derivative_many(v)
                dg_dv = self._multiplicity[:, idx] * derivative
                g = g + 0.5 * h_next * dg_dv * dv_dt[:, idx]
            conductances[:, idx] = g
        for j in self._mixed_slots:
            slot = self._device_slots[j]
            g = slot.chord(voltages[:, j])
            if predict:
                dg_dv = slot.chord_derivative(voltages[:, j])
                g = g + 0.5 * h_next * dg_dv * dv_dt[:, j]
            conductances[:, j] = g
        np.maximum(conductances, 0.0, out=conductances)
        if flops is not None:
            flops.count_device_eval("rtd_current", count=K * len(self._device_slots))
            if predict:
                flops.count_device_eval(
                    "rtd_conductance", count=K * len(self._device_slots)
                )
        return conductances

    def _mosfet_conductances(self, states, flops: FlopCounter | None) -> np.ndarray:
        """``(K, n_mosfets)`` chord conductances ``Ids/Vds``."""
        if self._mosfet_params is None:
            return np.zeros((self.n_instances, 0))
        if self._scalar_chords:
            scalar = self.linearization.mosfet_conductances(states[0], flops=flops)
            return scalar[None, :]
        from repro.devices.mosfet import mosfet_chord_stack

        voltages = self.linearization.mosfet_voltages(states)
        p = self._mosfet_params
        conductances = mosfet_chord_stack(
            voltages[..., 0],
            voltages[..., 1],
            kp=p["kp"],
            w=p["w"],
            l=p["l"],
            vth=p["vth"],
            polarity=p["polarity"],
            channel_modulation=p["channel_modulation"],
        )
        np.maximum(conductances, 0.0, out=conductances)
        if flops is not None:
            flops.count_device_eval("mosfet", count=conductances.size)
        return conductances

    def _stamp(
        self, states, prev_states, h_prev, h_next, flops: FlopCounter | None
    ) -> np.ndarray:
        """Evaluate chords and stamp ``G`` into the backend; returns
        the ``(K, n_devices)`` chords (for the conductance trace)."""
        device_g = self._device_conductances(states, prev_states, h_prev, h_next, flops)
        mosfet_g = self._mosfet_conductances(states, flops)
        self.backend.stamp(device_g, mosfet_g)
        return device_g

    # ------------------------------------------------------------------
    # Initial states
    # ------------------------------------------------------------------

    def _initial_state_stack(self, initial_states) -> np.ndarray:
        K, n = self.n_instances, self.size
        if initial_states is None:
            return np.stack([system.initial_state() for system in self.systems])
        states = np.array(initial_states, dtype=float, copy=True)
        if states.shape == (n,):
            states = np.broadcast_to(states, (K, n)).copy()
        if states.shape != (K, n):
            raise AnalysisError(
                f"initial states must have shape ({n},) or ({K}, {n}), "
                f"got {states.shape}"
            )
        return states

    def _dc_initialize(
        self,
        states: np.ndarray,
        result: EnsembleTransientResult,
        t: float = 0.0,
        max_iter: int = 200,
        tol: float = 1e-9,
    ) -> np.ndarray:
        """Batched chord fixed point at time *t* (DC operating points)."""
        K, n = self.n_instances, self.size
        b = self._sources.assemble(t, np.empty((K, n)))
        damping = np.ones(K)
        prev_delta = np.full(K, np.inf)
        flops = result.flops
        for _ in range(max_iter):
            self._stamp(states, None, None, None, flops)
            new_states = self.backend.solve_conductance(b)
            delta = np.max(np.abs(new_states - states), axis=1) if n else np.zeros(K)
            shrink = (delta > prev_delta) & (damping > 0.1)
            damping[shrink] *= 0.5
            prev_delta = delta
            states = states + damping[:, None] * (new_states - states)
            if np.all(delta < tol):
                break
        return states

    # ------------------------------------------------------------------
    # Marching
    # ------------------------------------------------------------------

    def _new_result(self) -> EnsembleTransientResult:
        result = EnsembleTransientResult(self.system.circuit.nodes, self.n_instances)
        result.backend = self.backend_name
        self.backend.begin_run(result.flops)
        return result

    def _finish(self, result: EnsembleTransientResult) -> EnsembleTransientResult:
        result.factor_reuses = self.backend.reuses
        # Re-read the name: a degradation chain may have switched the
        # active engine mid-run.
        result.backend = self.backend_name
        result.fallback_events = list(getattr(self.backend, "events", ()))
        return result

    def _record_trace(
        self, result: EnsembleTransientResult, t: float, device_g: np.ndarray
    ) -> None:
        for k in self.trace_instances:
            result.conductance_trace.setdefault(k, []).append((t, device_g[k].copy()))

    def _solve_step(
        self, t, h, states, b_buf, b2_buf, t_next=None, noise_increments=None
    ) -> np.ndarray:
        """One implicit solve for the whole stack, BE or trapezoidal."""
        backend = self.backend
        trapezoidal = self.options.method == "trap"
        if t_next is None:
            t_next = t + h
        if trapezoidal:
            rhs = self._sources.assemble(t, b_buf)
            rhs += self._sources.assemble(t_next, b2_buf)
            rhs *= 0.5
            tmp = backend.c_matvec(states)
            tmp /= h
            rhs += tmp
            gx = backend.g_matvec(states)
            gx *= 0.5
            rhs -= gx
        else:
            rhs = self._sources.assemble(t_next, b_buf)
            tmp = backend.c_matvec(states)
            tmp /= h
            rhs += tmp
        if noise_increments is not None:
            rhs += np.einsum("knm,km->kn", self._noise_matrix, noise_increments) / h
        return backend.solve_transient(h, rhs, trapezoidal)

    def run(self, t_stop: float, initial_states=None) -> EnsembleTransientResult:
        """Adaptive lockstep march from ``t = 0`` to *t_stop*.

        The shared grid takes the worst-case (smallest) eq.-10/12 step
        over the ensemble each point.  Noise injections need a fixed
        grid — use :meth:`run_grid`.
        """
        if t_stop <= 0.0:
            raise AnalysisError(f"t_stop must be positive, got {t_stop!r}")
        if self._noise_matrix is not None:
            raise AnalysisError(
                "noise ensembles need the fixed-grid mode (run_grid); "
                "an adaptive grid would couple every path's step sizes "
                "to the noise realizations"
            )
        opts = self.options
        K, n = self.n_instances, self.size
        result = self._new_result()
        states = self._initial_state_stack(initial_states)
        if opts.initialize_dc and initial_states is None:
            states = self._dc_initialize(states, result)

        b_buf = np.empty((K, n))
        b2_buf = np.empty((K, n))

        t = 0.0
        result.append(t, states)
        h = self.controller.initial_step(t_stop)
        h_prev: float | None = None
        prev_states: np.ndarray | None = None

        while t < t_stop * (1.0 - 1e-12):
            if len(result) >= opts.max_points:
                result.aborted = True
                result.abort_reason = (
                    f"max_points={opts.max_points} reached at t={t:.4g}"
                )
                break
            device_g = self._stamp(states, prev_states, h_prev, h, result.flops)
            h = self.controller.next_step_from_diagonal(
                t, h if h_prev is None else h_prev, self.backend.g_diagonal(), t_stop
            )

            accepted = False
            while not accepted:
                new_states = self._solve_step(t, h, states, b_buf, b2_buf)
                if opts.dv_limit is not None:
                    nn = self.system.num_nodes
                    dv = float(np.max(np.abs(new_states[:, :nn] - states[:, :nn])))
                    if dv > opts.dv_limit and h > opts.step.h_min * 1.001:
                        result.rejected_steps += 1
                        h = max(h * 0.5, opts.step.h_min)
                        continue
                accepted = True

            prev_states, h_prev = states, h
            states = new_states
            t += h
            result.append(t, states)
            result.accepted_steps += 1
            self._record_trace(result, t, device_g)
        return self._finish(result)

    def run_grid(
        self, times, initial_states=None, *, seeds=None, rng=None, normals=None
    ) -> EnsembleTransientResult:
        """Lockstep march on an explicit shared grid.

        With noise injections configured, each step adds
        ``B dW_n / h_n`` to the right-hand side (implicit
        Euler-Maruyama; backward Euler only).  *seeds* gives each
        instance its own RNG stream (a sequence of K ints or
        ``SeedSequence``\\ s) — the bit-reproducible form that survives
        ensemble splitting; *rng* draws all increments from one shared
        Generator instead; *normals* bypasses drawing entirely with
        pre-drawn **standard** normals of shape ``(K, T - 1, m)``
        (scaled by ``sqrt(dt)`` internally) — the hook the
        variance-reduction layer (:mod:`repro.stochastic.vr`) uses to
        drive a control circuit with the same increments as the noisy
        ensemble, or to mirror them for antithetic pairs.
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise AnalysisError(
                f"need a 1-D grid with >= 2 points, got shape {times.shape}"
            )
        if np.any(np.diff(times) <= 0.0):
            raise AnalysisError("grid times must be strictly increasing")
        opts = self.options
        if self._noise_matrix is not None and opts.method != "be":
            raise AnalysisError(
                "noise injections integrate as implicit Euler-Maruyama "
                "on the backward-Euler path only"
            )
        K, n = self.n_instances, self.size
        result = self._new_result()
        states = self._initial_state_stack(initial_states)
        if opts.initialize_dc and initial_states is None:
            states = self._dc_initialize(states, result, t=float(times[0]))

        increments = self._draw_increments(times, seeds, rng, normals)
        b_buf = np.empty((K, n))
        b2_buf = np.empty((K, n))

        result.append(float(times[0]), states)
        h_prev: float | None = None
        prev_states: np.ndarray | None = None
        for step in range(times.size - 1):
            t_next = float(times[step + 1])
            t = float(times[step])
            h = t_next - t
            device_g = self._stamp(states, prev_states, h_prev, h, result.flops)
            noise = None if increments is None else increments[:, step, :]
            new_states = self._solve_step(
                t, h, states, b_buf, b2_buf, t_next=t_next, noise_increments=noise
            )
            prev_states, h_prev = states, h
            states = new_states
            result.append(t_next, states)
            result.accepted_steps += 1
            self._record_trace(result, t_next, device_g)
        return self._finish(result)

    def _draw_increments(self, times, seeds, rng, normals=None) -> np.ndarray | None:
        """``(K, T-1, m)`` Wiener increments, or None without noise."""
        if normals is not None and self._noise_matrix is None:
            raise AnalysisError(
                "normals= passed but no noise injections are configured"
            )
        if self._noise_matrix is None:
            return None
        K = self.n_instances
        m = self._noise_matrix.shape[2]
        steps = times.size - 1
        scale = np.sqrt(np.diff(times))[None, :, None]
        if normals is not None:
            if seeds is not None or rng is not None:
                raise AnalysisError(
                    "normals= is mutually exclusive with seeds= and rng="
                )
            normals = np.asarray(normals, dtype=float)
            if normals.shape != (K, steps, m):
                raise AnalysisError(
                    f"normals must have shape ({K}, {steps}, {m}), "
                    f"got {normals.shape}"
                )
            return normals * scale
        if seeds is not None:
            seeds = list(seeds)
            if len(seeds) != K:
                raise AnalysisError(
                    f"need one seed per instance ({K}), got {len(seeds)}"
                )
            streams = [np.random.default_rng(seed) for seed in seeds]
            draws = np.stack([s.standard_normal((steps, m)) for s in streams])
        else:
            generator = np.random.default_rng(rng)
            draws = generator.standard_normal((K, steps, m))
        return draws * scale
