"""Exception hierarchy for the Nano-Sim reproduction.

Every error raised by the library derives from :class:`NanoSimError` so user
code can catch the whole family with one ``except`` clause.  The subclasses
separate the phases where things go wrong: building a circuit (including
parsing a netlist), assembling the equations, and configuring or running
an analysis (including sweep specifications).
"""

from __future__ import annotations


class NanoSimError(Exception):
    """Base class for every error raised by this library."""


class CircuitError(NanoSimError):
    """A circuit is malformed (unknown node, duplicate name, bad value)."""


class NetlistParseError(CircuitError):
    """A textual netlist could not be parsed.

    Attributes
    ----------
    line_number:
        One-based line number where parsing failed, or ``None`` when the
        failure is not tied to a single line.
    line:
        The offending source line, when available.
    """

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None) -> None:
        location = f" (line {line_number}: {line!r})" if line_number else ""
        super().__init__(message + location)
        self.line_number = line_number
        self.line = line


class LintError(CircuitError):
    """Pre-flight lint refused a circuit (``validate="strict"``).

    Raised by the gating layer in :mod:`repro.lint.gate` when a job or
    sweep design point fails static analysis and the caller asked for
    strict validation.  Carries the full report so callers can render
    or serialize the diagnostics.

    Attributes
    ----------
    report:
        The :class:`repro.lint.LintReport` that triggered the refusal,
        when available.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class AssemblyError(NanoSimError):
    """MNA system assembly failed (singular topology, missing ground...)."""


class AnalysisError(NanoSimError):
    """An analysis was configured incorrectly or failed to run."""


class SweepSpecError(AnalysisError):
    """A parametric sweep specification is invalid.

    Raised while *building* a sweep (bad ranges, empty grids, unknown
    measures or templates), never while running one — per-point runtime
    failures are captured in the report instead.
    """


class ConvergenceError(AnalysisError):
    """An iterative solver failed to converge.

    The Newton-Raphson baselines raise this on NDR-induced oscillation; the
    SWEC engine never should (that is the paper's claim, and our tests assert
    it).

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Last residual norm, when meaningful.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        details = []
        if iterations is not None:
            details.append(f"iterations={iterations}")
        if residual is not None:
            details.append(f"residual={residual:.3e}")
        suffix = f" [{', '.join(details)}]" if details else ""
        super().__init__(message + suffix)
        self.iterations = iterations
        self.residual = residual


class PSSError(AnalysisError):
    """Periodic steady-state (shooting) analysis failed.

    Raised by :mod:`repro.pss` when the shooting-Newton iteration does
    not reach the periodicity tolerance, when no oscillation can be
    detected within the settle horizon of an autonomous run, or when
    the drive period of a forced circuit cannot be determined.  The
    contract is *converged or raised*: a :class:`PSSResult
    <repro.pss.PSSResult>` is never returned with a residual above
    tolerance.

    Attributes
    ----------
    iterations:
        Newton iterations performed before giving up, when applicable.
    residual:
        Last periodicity residual ``max|x(T) - x(0)|``, when meaningful.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        details = []
        if iterations is not None:
            details.append(f"iterations={iterations}")
        if residual is not None:
            details.append(f"residual={residual:.3e}")
        suffix = f" [{', '.join(details)}]" if details else ""
        super().__init__(message + suffix)
        self.iterations = iterations
        self.residual = residual


class SingularMatrixError(AnalysisError):
    """The linearized MNA matrix is singular or numerically unusable."""


class JobTimeoutError(AnalysisError):
    """A batch job exceeded its wall-clock timeout.

    Raised (or synthesized into a structured ``timeout`` failure record)
    by the :class:`~repro.runtime.BatchRunner` watchdog when a job runs
    past ``timeout=`` seconds, and by the deterministic fault-injection
    harness (:mod:`repro.resilience.faults`) when it simulates a hang on
    an executor whose workers cannot really be killed.
    """


class WorkerCrashError(AnalysisError):
    """A pool worker died (or was killed) while executing a job.

    On the process executor a real crash surfaces as
    ``BrokenProcessPool``; the runner converts it into a structured
    ``crash`` failure record.  The fault-injection harness raises this
    directly to simulate a crash on the thread/serial executors, where
    no process can actually die.
    """
