"""Simulation-as-a-service: job daemon + content-addressed result cache.

The simulator is bit-exact deterministic — the same job spec plus the
same seed always reproduces the same waveforms — which makes a
content-addressed result cache *exact*, not heuristic.  This package
is the serving layer built on that guarantee:

:mod:`repro.service.hashing`
    Canonical, version-salted job fingerprints (:func:`job_key`):
    stable under mapping key order and netlist spelling, changed by
    any parameter/seed/version change.
:mod:`repro.service.store`
    The on-disk store (:class:`ResultStore`): atomic writes, checksum
    corruption detection, age/count eviction.
:mod:`repro.service.cache`
    :func:`run_batch_cached` — the ``cache=`` knob behind
    ``run_sweep`` and the runtime CLI, preserving deterministic
    per-job seeding exactly.
:mod:`repro.service.daemon` / :mod:`repro.service.client`
    A persistent asyncio daemon over a Unix socket (JSON-lines
    protocol, ``queued -> running -> done|failed`` event streams,
    per-job failure isolation, in-flight deduplication) and its
    synchronous client.

CLI: ``python -m repro.service serve|submit|status|gc`` — see
``docs/service.md``.
"""

from repro.service.cache import batch_job_keys, job_kind, run_batch_cached
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import PROTOCOL, ServiceDaemon, default_socket_path
from repro.service.hashing import (
    FINGERPRINT_SCHEMA,
    UncacheableJobError,
    canonical_job,
    canonical_value,
    job_key,
)
from repro.service.store import (
    STORE_SCHEMA,
    CachedResult,
    GcStats,
    ResultStore,
    default_store_root,
    result_summary,
)

__all__ = [
    "FINGERPRINT_SCHEMA",
    "PROTOCOL",
    "STORE_SCHEMA",
    "CachedResult",
    "GcStats",
    "ResultStore",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "UncacheableJobError",
    "batch_job_keys",
    "canonical_job",
    "canonical_value",
    "default_socket_path",
    "default_store_root",
    "job_key",
    "job_kind",
    "result_summary",
    "run_batch_cached",
]
