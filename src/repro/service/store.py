"""On-disk content-addressed result store.

One entry per job fingerprint (:func:`~repro.service.hashing.job_key`),
stored as a pair of files under ``<root>/objects/<key[:2]>/``:

``<key>.pkl``
    The pickled result payload — the full simulation value (a
    ``TransientResult``, ``EnsembleStatistics``, ``ACResult``, or the
    reduced per-point dict of a sweep job), waveforms included.
``<key>.json``
    The BENCH-style metadata record: schema version, job kind, label,
    original compute seconds, creation time, the package version that
    produced it, a deterministic result summary, and the SHA-256 +
    byte length of the payload file.

Design points:

atomic writes
    Both files are written to a temporary name in the same directory
    and ``os.replace``-d into place — readers never observe a partial
    entry.  The payload lands first, the metadata last, so a metadata
    file implies a complete payload.
corruption detection
    ``get`` re-hashes the payload against the recorded checksum and
    validates the schema version; a truncated, tampered or
    version-skewed entry is treated as a *miss* (and swept from disk),
    never an exception.
eviction
    :meth:`ResultStore.gc` prunes by age and/or entry count (oldest
    first) and removes orphaned halves of interrupted writes; the
    ``python -m repro.service gc`` subcommand is a thin wrapper.

The default root is ``~/.cache/repro`` (override with the
``REPRO_CACHE_DIR`` environment variable or an explicit path).
Concurrent writers are safe: entries are immutable once published and
``os.replace`` is atomic within a filesystem.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.resilience.faults import active_plan

__all__ = [
    "STORE_SCHEMA",
    "CachedResult",
    "GcStats",
    "ResultStore",
    "default_store_root",
    "result_summary",
]

#: Metadata schema tag; entries with any other tag are treated as misses.
STORE_SCHEMA = "repro-store/1"


def default_store_root() -> Path:
    """The default store directory (``REPRO_CACHE_DIR`` or ``~/.cache/repro``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def result_summary(value) -> dict:
    """Deterministic BENCH-style summary of a job result.

    Only spec-determined quantities go in (point counts, final time,
    flop/factorization totals, statistic shapes) — never wall-clock —
    so resubmitting an identical job yields a byte-identical record.
    """
    summary: dict = {"type": type(value).__name__}
    flops = getattr(value, "flops", None)
    if flops is not None:
        summary["flops"] = int(flops.total)
        summary["factorizations"] = int(flops.factorizations)
        summary["solves"] = int(flops.linear_solves)
    if hasattr(value, "times") and hasattr(value, "node_names"):
        times = value.times
        summary["points"] = int(len(times))
        if len(times):
            summary["t_final"] = float(times[-1])
        summary["nodes"] = list(value.node_names)
    if hasattr(value, "frequencies"):
        summary["frequencies"] = int(len(value.frequencies))
    if hasattr(value, "mean") and hasattr(value, "times"):
        summary["samples"] = int(len(value.times))
    if isinstance(value, dict):
        summary["keys"] = sorted(str(key) for key in value)
    if isinstance(value, list):
        summary["entries"] = len(value)
    return summary


@dataclass
class CachedResult:
    """One store hit: the unpickled payload plus its metadata record."""

    key: str
    value: object
    meta: dict = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return self.meta.get("kind", "")

    @property
    def label(self) -> str:
        return self.meta.get("label", "")

    @property
    def seconds(self) -> float:
        """Original compute time, as recorded at ``put`` time."""
        return float(self.meta.get("seconds", 0.0))

    def record(self) -> dict:
        """The deterministic result record served to clients.

        Byte-identical across hits of the same entry: wall-clock and
        store-local details are excluded.
        """
        return {
            "schema": self.meta.get("schema", STORE_SCHEMA),
            "key": self.key,
            "kind": self.kind,
            "label": self.label,
            "repro": self.meta.get("repro", ""),
            "payload_sha256": self.meta.get("payload_sha256", ""),
            "payload_bytes": self.meta.get("payload_bytes", 0),
            "summary": self.meta.get("summary", {}),
        }


@dataclass
class GcStats:
    """Outcome of one :meth:`ResultStore.gc` pass."""

    scanned: int = 0
    removed: int = 0
    corrupt: int = 0
    bytes_freed: int = 0
    remaining: int = 0

    def summary(self) -> str:
        return (
            f"gc: scanned {self.scanned}, removed {self.removed} "
            f"({self.corrupt} corrupt), freed {self.bytes_freed} bytes, "
            f"{self.remaining} entries remain"
        )


def _atomic_write(path: Path, data: bytes) -> None:
    """Write *data* to *path* via a same-directory temp file + rename."""
    handle, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ResultStore:
    """Content-addressed result store rooted at *root*.

    The instance keeps per-process ``hits`` / ``misses`` / ``puts``
    counters for reporting; the on-disk state is shared by every
    process pointing at the same root.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.objects = self.root / "objects"
        self.hits = 0
        self.misses = 0
        self.puts = 0

    @classmethod
    def resolve(cls, cache) -> "ResultStore":
        """Coerce a ``cache=`` knob value into a store.

        Accepts a ready store, ``True``/the empty string (default
        root) or an explicit path.
        """
        if isinstance(cache, ResultStore):
            return cache
        if cache is True or cache == "":
            return cls()
        return cls(cache)

    # -- paths ----------------------------------------------------------

    def _paths(self, key: str) -> tuple[Path, Path]:
        shard = self.objects / key[:2]
        return shard / f"{key}.json", shard / f"{key}.pkl"

    # -- read -----------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        meta_path, payload_path = self._paths(key)
        return meta_path.exists() and payload_path.exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.objects.glob("*/*.json"))

    def keys(self) -> list[str]:
        """Keys of every published entry, sorted."""
        return sorted(path.stem for path in self.objects.glob("*/*.json"))

    def get(self, key: str) -> CachedResult | None:
        """Fetch an entry; any corruption reads as a miss, never raises."""
        meta_path, payload_path = self._paths(key)
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(meta, dict) or meta.get("schema") != STORE_SCHEMA:
            self.misses += 1
            return None
        try:
            payload = payload_path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        plan = active_plan()
        if plan is not None and payload and plan.corrupt_read(key):
            # Deterministic chaos hook: flip the leading byte so the
            # checksum below catches the "corruption" through exactly
            # the path a real bit-flip would take (discard + miss).
            payload = bytes([payload[0] ^ 0xFF]) + payload[1:]
        digest = hashlib.sha256(payload).hexdigest()
        if (
            len(payload) != meta.get("payload_bytes")
            or digest != meta.get("payload_sha256")
        ):
            self._discard(key)
            self.misses += 1
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self._discard(key)
            self.misses += 1
            return None
        self.hits += 1
        return CachedResult(key=key, value=value, meta=meta)

    # -- write ----------------------------------------------------------

    def put(
        self,
        key: str,
        value,
        *,
        kind: str = "",
        label: str = "",
        seconds: float = 0.0,
    ) -> CachedResult:
        """Publish *value* under *key*; returns the stored entry.

        The payload file is written (atomically) before the metadata
        file, so readers racing a writer either miss or see a complete
        entry.
        """
        import repro

        meta_path, payload_path = self._paths(key)
        meta_path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        meta = {
            "schema": STORE_SCHEMA,
            "key": key,
            "kind": kind,
            "label": label,
            "seconds": float(seconds),
            "created_utc": time.time(),
            "repro": repro.__version__,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "summary": result_summary(value),
        }
        _atomic_write(payload_path, payload)
        _atomic_write(meta_path, (json.dumps(meta, sort_keys=True) + "\n").encode())
        self.puts += 1
        return CachedResult(key=key, value=value, meta=meta)

    def _discard(self, key: str) -> int:
        """Remove both halves of an entry; returns bytes freed."""
        freed = 0
        for path in self._paths(key):
            try:
                freed += path.stat().st_size
                path.unlink()
            except OSError:
                pass
        return freed

    # -- maintenance ----------------------------------------------------

    def stats(self) -> dict:
        """Entry count and payload byte total of the on-disk store."""
        entries = 0
        payload_bytes = 0
        for meta_path in self.objects.glob("*/*.json"):
            entries += 1
            try:
                meta = json.loads(meta_path.read_text())
                payload_bytes += int(meta.get("payload_bytes", 0))
            except (OSError, ValueError):
                pass
        return {
            "root": str(self.root),
            "entries": entries,
            "payload_bytes": payload_bytes,
        }

    def gc(
        self,
        max_age_seconds: float | None = None,
        max_entries: int | None = None,
    ) -> GcStats:
        """Evict entries: corrupt first, then by age, then oldest-first
        down to *max_entries*.  Orphaned halves of interrupted writes
        are always removed."""
        stats = GcStats()
        now = time.time()
        entries: list[tuple[float, str]] = []
        seen_meta = set()
        for meta_path in sorted(self.objects.glob("*/*.json")):
            key = meta_path.stem
            seen_meta.add(key)
            stats.scanned += 1
            _, payload_path = self._paths(key)
            try:
                meta = json.loads(meta_path.read_text())
                created = float(meta["created_utc"])
                ok = (
                    meta.get("schema") == STORE_SCHEMA
                    and payload_path.stat().st_size == meta["payload_bytes"]
                )
            except (OSError, ValueError, KeyError, TypeError):
                ok = False
                created = 0.0
            if not ok:
                stats.bytes_freed += self._discard(key)
                stats.removed += 1
                stats.corrupt += 1
                continue
            entries.append((created, key))
        for payload_path in sorted(self.objects.glob("*/*.pkl")):
            if payload_path.stem not in seen_meta:
                stats.bytes_freed += self._discard(payload_path.stem)
                stats.corrupt += 1
                stats.removed += 1
        entries.sort()
        if max_age_seconds is not None:
            cutoff = now - max_age_seconds
            kept = []
            for created, key in entries:
                if created < cutoff:
                    stats.bytes_freed += self._discard(key)
                    stats.removed += 1
                else:
                    kept.append((created, key))
            entries = kept
        if max_entries is not None and len(entries) > max_entries:
            excess = len(entries) - max_entries
            for created, key in entries[:excess]:
                stats.bytes_freed += self._discard(key)
                stats.removed += 1
            entries = entries[excess:]
        stats.remaining = len(entries)
        return stats
