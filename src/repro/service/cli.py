"""Command-line entry point: ``python -m repro.service <command>``.

Four subcommands::

    serve    run the job daemon on a Unix socket
    submit   send every [[jobs]] entry of a spec file to a daemon
    status   print a running daemon's counters as JSON
    gc       garbage-collect a result store (no daemon needed)

Examples::

    python -m repro.service serve --socket /tmp/repro.sock \\
        --store /tmp/repro-store --workers 4
    python -m repro.service submit jobs.toml --socket /tmp/repro.sock
    python -m repro.service status --socket /tmp/repro.sock
    python -m repro.service gc --store /tmp/repro-store --max-age-days 7

``submit`` exits 0 when every job succeeded, 1 otherwise; ``--json``
writes the final event list (records, cached flags) for scripting.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import NanoSimError
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon, default_socket_path
from repro.service.store import ResultStore


def _add_socket(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="daemon socket path (default: <store-root>/daemon.sock)",
    )


def _socket_path(args) -> str:
    if args.socket is not None:
        return args.socket
    return str(default_socket_path())


def _cmd_serve(args) -> int:
    daemon = ServiceDaemon(
        socket_path=args.socket,
        store=args.store,
        max_workers=args.workers,
        executor=args.executor,
        progress_interval=args.progress_interval,
    )
    print(
        f"repro.service daemon: socket={daemon.socket_path} "
        f"store={daemon.store.root} executor={daemon.executor} "
        f"workers={daemon.max_workers}",
        flush=True,
    )
    daemon.run()
    return 0


def _cmd_submit(args) -> int:
    from repro.runtime.cli import load_spec

    spec = load_spec(args.spec)
    tables = spec.get("jobs", [])
    if not tables:
        raise NanoSimError("job-spec file defines no [[jobs]] entries")
    client = ServiceClient(_socket_path(args), timeout=args.timeout)
    finals = []
    failures = 0
    for index, table in enumerate(tables):
        label = table.get("label", f"job-{index}")

        def show(event, label=label):
            name = event.get("event")
            if name == "running" and not args.quiet:
                seconds = event.get("seconds")
                tick = f" ({seconds:.1f} s)" if seconds else ""
                print(f"  {label}: running{tick}", flush=True)

        final = client.submit(
            table, seed=args.seed, cache=not args.no_cache, on_event=show
        )
        finals.append(final)
        if final.get("event") == "done":
            source = "cache" if final.get("cached") else "pool"
            print(
                f"  {label}: done [{source}] "
                f"{final.get('seconds', 0.0):.3f} s",
                flush=True,
            )
        else:
            failures += 1
            print(
                f"  {label}: FAILED: {final.get('error')}",
                file=sys.stderr,
                flush=True,
            )
    print(
        f"submitted {len(tables)} job(s): {len(tables) - failures} ok, "
        f"{failures} failed"
    )
    if args.json:
        Path(args.json).write_text(json.dumps(finals, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 1 if failures else 0


def _cmd_status(args) -> int:
    client = ServiceClient(_socket_path(args), timeout=args.timeout)
    status = client.status()
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_gc(args) -> int:
    store = ResultStore(args.store)
    max_age = None
    if args.max_age_days is not None:
        max_age = args.max_age_days * 86400.0
    stats = store.gc(max_age_seconds=max_age, max_entries=args.max_entries)
    print(stats.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=(
            "Simulation-as-a-service: job daemon + content-addressed "
            "result cache."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the job daemon")
    _add_socket(serve)
    serve.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="result store root (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool width (default: CPU count)",
    )
    serve.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help="worker pool flavour (default: process)",
    )
    serve.add_argument(
        "--progress-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="heartbeat period for running jobs (default: 1.0)",
    )
    serve.set_defaults(handler=_cmd_serve)

    submit = commands.add_parser(
        "submit", help="submit a job-spec file to a running daemon"
    )
    submit.add_argument("spec", help="job-spec file (.toml or .json)")
    _add_socket(submit)
    submit.add_argument(
        "--seed", type=int, default=0, help="RNG seed per job (default: 0)"
    )
    submit.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache for every job",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="socket read timeout in seconds (default: 300)",
    )
    submit.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the final event list as JSON",
    )
    submit.add_argument(
        "--quiet", action="store_true", help="suppress running heartbeats"
    )
    submit.set_defaults(handler=_cmd_submit)

    status = commands.add_parser("status", help="print a running daemon's counters")
    _add_socket(status)
    status.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="socket read timeout in seconds (default: 30)",
    )
    status.set_defaults(handler=_cmd_status)

    gc = commands.add_parser("gc", help="garbage-collect a result store on disk")
    gc.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="result store root (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="evict entries older than this many days",
    )
    gc.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N entries (oldest evicted first)",
    )
    gc.set_defaults(handler=_cmd_gc)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (NanoSimError, ServiceError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
