"""Cache-aware batch execution for one-shot runs.

:func:`run_batch_cached` is the ``cache=`` knob behind ``run_sweep``
and the runtime CLI: it consults the content-addressed
:class:`~repro.service.store.ResultStore` *before* dispatching work,
serves hits without touching the pool, runs only the misses, and
publishes their results for the next run.

Determinism is preserved exactly.  The plain runner spawns one
``SeedSequence`` child per job, positionally; here the full spawn is
computed up front and the miss subset is executed with its *original*
child seeds (``BatchRunner.run(jobs, seeds=...)``), so a job's result
never depends on which of its neighbours happened to be cached.  The
cache address of job *i* covers ``(spec, base_seed, i)`` — the same
triple the seeding scheme keys on.

Jobs that cannot be fingerprinted (callable builders, opaque payloads)
degrade to permanent misses: they run every time and are never stored.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.report import BatchReport, JobResult
from repro.service.hashing import UncacheableJobError, job_key
from repro.service.store import ResultStore

__all__ = ["batch_job_keys", "job_kind", "run_batch_cached"]

_KIND_BY_CLASS = {
    "SweepPointJob": "sweep_point",
    "SweepBatchJob": "sweep_batch",
}


def job_kind(job) -> str:
    """Spec-file kind string for *job*.

    Runtime jobs carry it as their ``kind`` class attribute (the
    canonicalization hook added for the cache layer); sweep wrappers
    map by class name; anything else reports its class name.
    """
    kind = getattr(job, "kind", None)
    if isinstance(kind, str) and kind:
        return kind
    name = type(job).__name__
    return _KIND_BY_CLASS.get(name, name)


def batch_job_keys(jobs, base_seed: int) -> list[str | None]:
    """Fingerprint of every job under the batch seeding scheme.

    Job *i* in a batch with base seed *s* always receives
    ``SeedSequence(s).spawn(n)[i]``, so its address is the triple
    ``(spec, s, i)``.  Uncacheable jobs map to ``None``.
    """
    keys: list[str | None] = []
    for index, job in enumerate(jobs):
        try:
            keys.append(job_key(job, seed={"entropy": int(base_seed), "spawn": index}))
        except UncacheableJobError:
            keys.append(None)
    return keys


def run_batch_cached(runner, jobs, store: ResultStore) -> BatchReport:
    """Run *jobs* on *runner*, serving and filling *store*.

    Hits come back as :class:`JobResult` rows with ``cached=True`` and
    the original compute time in the store's metadata; misses execute
    with their original positional seeds and are published on success.
    Failures are never cached.
    """
    import time

    jobs = list(jobs)
    start = time.perf_counter()
    keys = batch_job_keys(jobs, runner.seed)
    seeds = np.random.SeedSequence(runner.seed).spawn(max(len(jobs), 1))
    results: list[JobResult | None] = [None] * len(jobs)
    miss_jobs = []
    miss_seeds = []
    miss_indices = []
    for index, (job, key) in enumerate(zip(jobs, keys)):
        entry = store.get(key) if key is not None else None
        if entry is not None:
            label = getattr(job, "label", "") or f"job-{index}"
            results[index] = JobResult(
                index=index,
                label=label,
                ok=True,
                value=entry.value,
                seconds=entry.seconds,
                cached=True,
            )
        else:
            miss_jobs.append(job)
            miss_seeds.append(seeds[index])
            miss_indices.append(index)
    if miss_jobs:
        # Publish each miss the moment its result is final rather than
        # after the whole batch: an interrupted run leaves its completed
        # jobs checkpointed in the store, so the next run (or
        # ``run_sweep(resume=...)``) picks up where it stopped.
        def publish(result: JobResult) -> None:
            index = miss_indices[result.index]
            if result.ok and keys[index] is not None:
                store.put(
                    keys[index],
                    result.value,
                    kind=job_kind(jobs[index]),
                    label=result.label,
                    seconds=result.seconds,
                )

        batch = runner.run(miss_jobs, seeds=miss_seeds, on_result=publish)
        for index, result in zip(miss_indices, batch.results):
            result.index = index
            results[index] = result
    return BatchReport(
        results=[r for r in results if r is not None],
        wall_seconds=time.perf_counter() - start,
        workers=runner.max_workers,
        executor=runner.executor if miss_jobs else "cache",
        seed=runner.seed,
    )
