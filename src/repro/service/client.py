"""Synchronous client for the service daemon.

One request per connection: the client sends a single JSON line over
the daemon's Unix socket and iterates the JSON-lines event stream back.
Blocking by design — the CLI, tests and notebook use cases are all
synchronous; concurrency comes from many clients, which the asyncio
daemon multiplexes.

    from repro.service import ServiceClient

    client = ServiceClient("/tmp/repro.sock")
    final = client.submit({"circuit": "rtd_divider", "t_stop": 5e-10})
    final["cached"], final["record"]["summary"]
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import AnalysisError

__all__ = ["ServiceClient", "ServiceError"]

#: Events that end a ``submit`` stream.
_TERMINAL_EVENTS = frozenset({"done", "failed", "error"})


class ServiceError(AnalysisError):
    """The daemon reported a protocol-level error, or never answered."""


class ServiceClient:
    """Talk to a :class:`~repro.service.daemon.ServiceDaemon`.

    Parameters
    ----------
    socket_path:
        The daemon's Unix socket.
    timeout:
        Per-read socket timeout in seconds (``None`` blocks forever;
        the default is generous because event streams heartbeat at the
        daemon's progress interval).
    """

    def __init__(self, socket_path: str | Path, timeout: float | None = 300.0) -> None:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover
            raise ServiceError(
                "the service daemon needs AF_UNIX sockets, which this "
                "platform does not provide"
            )
        self.socket_path = str(socket_path)
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def request(self, payload: dict) -> Iterator[dict]:
        """Send one request; yield each response event as it arrives."""
        try:
            connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            connection.settimeout(self.timeout)
            connection.connect(self.socket_path)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach daemon at {self.socket_path}: {exc}"
            ) from exc
        try:
            connection.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            with connection.makefile("rb") as stream:
                for line in stream:
                    if not line.strip():
                        continue
                    yield json.loads(line)
        except OSError as exc:
            raise ServiceError(
                f"connection to {self.socket_path} failed mid-stream: {exc}"
            ) from exc
        finally:
            connection.close()

    def _single(self, payload: dict, expected: str) -> dict:
        for event in self.request(payload):
            if event.get("event") == "error":
                raise ServiceError(event.get("error", "daemon error"))
            if event.get("event") == expected:
                return event
        raise ServiceError(f"daemon closed the stream without a {expected!r} event")

    # -- ops ------------------------------------------------------------

    def ping(self) -> dict:
        """Round-trip liveness check; returns the ``pong`` event."""
        return self._single({"op": "ping"}, "pong")

    def status(self) -> dict:
        """Daemon stats: counters, pool shape, store size."""
        return self._single({"op": "status"}, "status")

    def gc(
        self,
        max_age_seconds: float | None = None,
        max_entries: int | None = None,
    ) -> dict:
        """Ask the daemon to garbage-collect its store."""
        return self._single(
            {
                "op": "gc",
                "max_age_seconds": max_age_seconds,
                "max_entries": max_entries,
            },
            "gc",
        )

    def shutdown(self) -> dict:
        """Stop the daemon; returns its ``bye`` event."""
        return self._single({"op": "shutdown"}, "bye")

    def submit(
        self,
        job: dict,
        seed: int = 0,
        cache: bool = True,
        payload: bool = False,
        on_event: Callable[[dict], Any] | None = None,
    ) -> dict:
        """Submit one job-spec table; block until it finishes.

        Streams ``queued -> running -> done|failed`` events through
        *on_event* (when given) and returns the terminal event.  With
        ``payload=True`` the daemon ships the full pickled result
        value, exposed on the returned event as ``event["value"]``.

        Raises :class:`ServiceError` only for protocol breakdowns; a
        job that *ran* and failed returns its ``failed`` event, so one
        bad submission never aborts a submission loop.
        """
        request = {
            "op": "submit",
            "job": job,
            "seed": int(seed),
            "cache": bool(cache),
            "payload": bool(payload),
        }
        for event in self.request(request):
            if on_event is not None:
                on_event(event)
            name = event.get("event")
            if name == "error":
                raise ServiceError(event.get("error", "daemon error"))
            if name in _TERMINAL_EVENTS:
                if payload and "payload_b64" in event:
                    event["value"] = pickle.loads(
                        base64.b64decode(event["payload_b64"])
                    )
                return event
        raise ServiceError("daemon closed the stream mid-submission")
