"""Canonical, version-salted job fingerprints.

The simulator is bit-exact deterministic: the same job spec plus the
same seed produces the same waveforms on every run.  That turns a
content-addressed result cache from a heuristic into an *exact* one —
provided the address really is a function of the job's physics and
nothing else.  :func:`job_key` computes that address:

* **Normalization.**  A job is reduced to a canonical nested mapping
  before hashing.  Mapping key order never matters (keys are sorted at
  encoding time), dataclass defaults are materialized, numpy scalars
  and arrays collapse to plain Python values, and a circuit given as
  ``netlist=`` source text is hashed *after* parse-normalization — two
  netlist spellings (comments, whitespace, case, unit suffixes) that
  parse to the same element list share one fingerprint.
* **Version salting.**  The digest covers a fingerprint-schema number
  and the installed ``repro`` package version, so a solver upgrade can
  never serve stale waveforms.
* **Honesty about closures.**  A job carrying a bare callable (a
  lambda builder, an unregistered circuit object with behaviourful
  methods we cannot introspect) raises :class:`UncacheableJobError`
  instead of guessing; callers treat those jobs as permanent cache
  misses.

The functions here are pure — no I/O, no store access — so they are
safe to call from workers, the daemon and the CLIs alike.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import Any, Mapping

from repro.errors import AnalysisError

__all__ = [
    "FINGERPRINT_SCHEMA",
    "UncacheableJobError",
    "canonical_job",
    "canonical_value",
    "job_key",
]

#: Bump when the canonicalization rules change; part of the hash salt.
FINGERPRINT_SCHEMA = 1


class UncacheableJobError(AnalysisError):
    """The job cannot be given a content address.

    Raised for specs carrying live Python objects the canonicalizer
    cannot faithfully serialize (lambdas, closures, open handles).
    Callers should degrade to a cache miss, never crash.
    """


def _canonical_circuit(circuit) -> dict:
    """Canonical form of a :class:`~repro.circuit.Circuit`.

    Element *names* and the circuit title are presentation only — they
    never enter the MNA mathematics — so they are excluded: renaming
    ``R1`` to ``Rload`` keeps the fingerprint.  Element order is kept
    (it fixes the MNA node ordering), as are node names, values,
    waveforms and device-model parameters.
    """
    record: dict[str, Any] = {"__circuit__": True}
    for category in (
        "resistors",
        "capacitors",
        "inductors",
        "voltage_sources",
        "current_sources",
        "devices",
        "mosfets",
    ):
        entries = []
        for element in getattr(circuit, category):
            payload = {
                key: value
                for key, value in vars(element).items()
                if key != "name"
            }
            entries.append(canonical_value(payload))
        record[category] = entries
    return record


def _canonical_object(value: Any) -> dict:
    """Canonical form of a waveform / device-model style object.

    These are immutable parameter holders: their identity is their
    class plus their attribute dict.  Objects with ``__slots__`` or
    attribute-less C extensions are rejected as uncacheable.
    """
    try:
        state = vars(value)
    except TypeError:
        raise UncacheableJobError(
            f"cannot canonicalize {type(value).__name__!r} object "
            f"(no attribute dict)"
        ) from None
    cls = type(value)
    record = {"__class__": f"{cls.__module__}.{cls.__qualname__}"}
    for key, attr in state.items():
        record[key] = canonical_value(attr)
    return record


def canonical_value(value: Any) -> Any:
    """Reduce *value* to a JSON-encodable canonical form.

    Handles the vocabulary job specs are built from: scalars, numpy
    scalars and arrays, mappings, sequences, sets, dataclasses,
    circuits, waveforms and device models.  Anything callable — or
    otherwise opaque — raises :class:`UncacheableJobError`.
    """
    import numpy as np

    from repro.circuit.netlist import Circuit

    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist()}
    if isinstance(value, Circuit):
        return _canonical_circuit(value)
    if isinstance(value, Mapping):
        return {str(key): canonical_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical_value(item) for item in value)
    if is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        record = {"__class__": f"{cls.__module__}.{cls.__qualname__}"}
        for spec in fields(value):
            record[spec.name] = canonical_value(getattr(value, spec.name))
        return record
    if callable(value):
        raise UncacheableJobError(
            f"cannot canonicalize callable {value!r}; pass builders by "
            f"registered name to make the job cacheable"
        )
    return _canonical_object(value)


def _canonical_design(job) -> Any:
    """Normalize the circuit/builder/netlist triple of a circuit job.

    * ``builder`` given by name stays symbolic: the name plus its
      ``params`` is the design.
    * ``netlist`` source text is parsed (with ``params`` applied as
      ``.PARAM`` overrides) and the resulting :class:`Circuit` is
      canonicalized, so equivalent spellings hash identically.
    * A ``circuit`` given as a template *name* stays symbolic — the
      name plus the ``params`` the template builder will consume.
    * A ready ``circuit`` object is canonicalized directly, with any
      ``params`` kept alongside it.
    """
    if getattr(job, "builder", None) is not None:
        if not isinstance(job.builder, str):
            raise UncacheableJobError(
                "jobs with callable builders are uncacheable; use a "
                "registered builder name"
            )
        return {
            "builder": job.builder,
            "params": canonical_value(job.params),
        }
    if getattr(job, "netlist", None) is not None:
        from repro.circuit.parser import parse_netlist

        circuit = parse_netlist(job.netlist, params=dict(job.params))
        return canonical_value(circuit)
    return {
        "circuit": canonical_value(job.circuit),
        "params": canonical_value(getattr(job, "params", None) or {}),
    }


#: Runtime job classes get their design triple normalized; field names
#: folded into the design entry are dropped from the flat field walk.
_DESIGN_FIELDS = frozenset({"circuit", "builder", "netlist", "params"})


def canonical_job(job) -> dict:
    """Canonical mapping for a runtime job (or any job-shaped object).

    The four runtime job dataclasses (``TransientJob``, ``ACJob``,
    ``EnsembleJob``, ``EnsembleTransientJob``) and the sweep wrappers
    are all plain dataclasses; every field participates in the
    fingerprint.  Circuit-carrying jobs get their design triple
    normalized through :func:`_canonical_design`.
    """
    if not is_dataclass(job) or isinstance(job, type):
        raise UncacheableJobError(
            f"cannot fingerprint {type(job).__name__!r}: not a job dataclass"
        )
    cls = type(job)
    record: dict[str, Any] = {"__job__": f"{cls.__module__}.{cls.__qualname__}"}
    has_design = hasattr(job, "netlist") or hasattr(job, "circuit")
    for spec in fields(job):
        if has_design and spec.name in _DESIGN_FIELDS:
            continue
        value = getattr(job, spec.name)
        if is_dataclass(value) and hasattr(value, "run"):
            record[spec.name] = canonical_job(value)
        else:
            record[spec.name] = canonical_value(value)
    if has_design:
        record["design"] = _canonical_design(job)
    return record


def job_key(job, *, seed: Any = None, extra: Any = None) -> str:
    """Content address of *job*: a 64-hex-digit SHA-256 fingerprint.

    Parameters
    ----------
    job:
        A runtime job dataclass (or sweep point/batch wrapper).
    seed:
        The RNG seed material the runner will hand the job — an int,
        or a mapping describing a ``SeedSequence`` spawn position.
        Part of the address: the determinism guarantee is per
        ``(spec, seed)`` pair.
    extra:
        Additional salt (e.g. a measure list for sweep reductions).

    Raises
    ------
    UncacheableJobError
        When the job carries objects that cannot be canonicalized.
    """
    import repro

    envelope = {
        "fingerprint_schema": FINGERPRINT_SCHEMA,
        "repro": repro.__version__,
        "job": canonical_job(job),
        "seed": canonical_value(seed),
        "extra": canonical_value(extra),
    }
    encoded = json.dumps(
        envelope,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=True,
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
