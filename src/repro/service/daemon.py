"""The simulation service daemon.

An :mod:`asyncio` server on a local Unix socket speaking a JSON-lines
protocol: one request object per connection, a stream of event objects
back.  Jobs execute on a persistent worker pool (the same
``_execute_job`` body the :class:`~repro.runtime.BatchRunner` uses, so
failure isolation is identical: a crashing job returns a structured
``failed`` event, never takes the daemon down), and every cacheable
job is served through the content-addressed
:class:`~repro.service.store.ResultStore` — a resubmitted spec+seed
returns the stored record without touching the pool.

Request ops::

    {"op": "ping"}
    {"op": "status"}
    {"op": "gc", "max_age_seconds": 86400, "max_entries": 1000}
    {"op": "shutdown"}
    {"op": "submit", "job": {...job-spec table...}, "seed": 0,
     "cache": true, "payload": false}

``submit`` streams ``queued -> running(progress) -> done|failed``
events; ``done`` carries the deterministic result record (and, with
``payload=true``, the base64-pickled result value).  Concurrent
submissions of the same fingerprint are coalesced onto one execution.

Only trust the socket as far as you trust local users: payloads are
pickles, and the socket is created with owner-only permissions.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import json
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.errors import AnalysisError, NanoSimError
from repro.service.cache import job_kind
from repro.service.hashing import UncacheableJobError, job_key
from repro.service.store import ResultStore, result_summary

__all__ = ["PROTOCOL", "ServiceDaemon", "default_socket_path"]

#: Protocol tag sent in every ``pong`` / ``status`` response.
PROTOCOL = "repro-service/1"

_EXECUTORS = ("process", "thread")


def default_socket_path(store: ResultStore | None = None) -> Path:
    """Default daemon socket: ``<store-root>/daemon.sock``."""
    root = store.root if store is not None else ResultStore().root
    return Path(root) / "daemon.sock"


class _Stats:
    """Daemon-lifetime counters exposed by the ``status`` op."""

    def __init__(self) -> None:
        self.started = time.time()
        self.submissions = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.executed = 0
        self.failed = 0
        self.rejected = 0
        self.factorizations = 0
        self.solver_flops = 0

    def as_dict(self) -> dict:
        return {
            "uptime_seconds": time.time() - self.started,
            "submissions": self.submissions,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "failed": self.failed,
            "rejected": self.rejected,
            "factorizations": self.factorizations,
            "solver_flops": self.solver_flops,
        }


class ServiceDaemon:
    """Persistent job daemon over a Unix socket.

    Parameters
    ----------
    socket_path:
        Path the listening socket is bound to (created/removed by the
        daemon; a stale file from a previous run is replaced).
    store:
        Result store (path, :class:`ResultStore` or ``None`` for the
        default root).
    max_workers:
        Worker pool width; defaults to the usable CPU count.
    executor:
        ``"process"`` (default, CPU-bound simulation fan-out) or
        ``"thread"`` (in-process, for tests and debugging).
    progress_interval:
        Seconds between ``running`` heartbeat events while a job
        executes.
    """

    def __init__(
        self,
        socket_path: str | Path | None = None,
        store: ResultStore | str | Path | None = None,
        max_workers: int | None = None,
        executor: str = "process",
        progress_interval: float = 1.0,
    ) -> None:
        if executor not in _EXECUTORS:
            raise AnalysisError(
                f"unknown executor {executor!r} "
                f"(expected one of {', '.join(_EXECUTORS)})"
            )
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.socket_path = Path(
            socket_path
            if socket_path is not None
            else default_socket_path(self.store)
        )
        from repro.runtime.runner import default_worker_count

        self.max_workers = max_workers or default_worker_count()
        self.executor = executor
        self.progress_interval = float(progress_interval)
        self.stats = _Stats()
        self._pool = None
        self._next_id = 0
        self._inflight: dict[str, asyncio.Future] = {}
        self._stop: asyncio.Event | None = None
        self._server: asyncio.AbstractServer | None = None

    # -- pool -----------------------------------------------------------

    def _make_pool(self):
        pool_class = (
            ProcessPoolExecutor
            if self.executor == "process"
            else ThreadPoolExecutor
        )
        return pool_class(max_workers=self.max_workers)

    def _pool_or_start(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _reset_broken_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._make_pool()

    # -- lifecycle ------------------------------------------------------

    async def serve(self, ready=None) -> None:
        """Bind the socket and serve until a ``shutdown`` request.

        *ready* is any object with a ``set()`` method (a
        ``threading.Event`` or ``asyncio.Event``), signalled once the
        socket is bound and accepting connections.
        """
        self._stop = asyncio.Event()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(OSError):
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path)
        )
        os.chmod(self.socket_path, 0o600)
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            with contextlib.suppress(OSError):
                self.socket_path.unlink()
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def run(self, ready=None) -> None:
        """Blocking entry point: serve on a fresh event loop."""
        try:
            asyncio.run(self.serve(ready=ready))
        except KeyboardInterrupt:
            pass

    # -- protocol -------------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, event: dict) -> None:
        writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if not line.strip():
                return
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                await self._send(
                    writer, {"event": "error", "error": f"bad request: {exc}"}
                )
                return
            op = request.get("op")
            if op == "ping":
                await self._send(writer, {"event": "pong", "protocol": PROTOCOL})
            elif op == "status":
                await self._send(writer, self._status_event())
            elif op == "gc":
                stats = self.store.gc(
                    max_age_seconds=request.get("max_age_seconds"),
                    max_entries=request.get("max_entries"),
                )
                await self._send(writer, {"event": "gc", **vars(stats)})
            elif op == "shutdown":
                await self._send(writer, {"event": "bye"})
                assert self._stop is not None
                self._stop.set()
            elif op == "submit":
                await self._handle_submit(writer, request)
            else:
                await self._send(
                    writer,
                    {"event": "error", "error": f"unknown op {op!r}"},
                )
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            with contextlib.suppress(Exception):
                await self._send(
                    writer,
                    {
                        "event": "error",
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _status_event(self) -> dict:
        return {
            "event": "status",
            "protocol": PROTOCOL,
            "executor": self.executor,
            "workers": self.max_workers,
            "inflight": len(self._inflight),
            "store": self.store.stats(),
            **self.stats.as_dict(),
        }

    # -- submit ---------------------------------------------------------

    async def _handle_submit(self, writer: asyncio.StreamWriter, request: dict) -> None:
        from repro.runtime.jobs import job_from_mapping

        self.stats.submissions += 1
        self._next_id += 1
        job_id = self._next_id
        spec = request.get("job")
        seed = int(request.get("seed", 0))
        use_cache = bool(request.get("cache", True))
        want_payload = bool(request.get("payload", False))
        if not isinstance(spec, dict):
            await self._send(
                writer,
                {
                    "event": "failed",
                    "id": job_id,
                    "error": "submit needs a job= spec table",
                },
            )
            self.stats.failed += 1
            return
        try:
            job = job_from_mapping(spec)
        except (NanoSimError, TypeError, ValueError) as exc:
            await self._send(
                writer,
                {
                    "event": "failed",
                    "id": job_id,
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
            self.stats.failed += 1
            return
        label = getattr(job, "label", "") or f"job-{job_id}"
        key: str | None = None
        if use_cache:
            try:
                key = job_key(job, seed=seed)
            except UncacheableJobError:
                key = None
        await self._send(
            writer,
            {"event": "queued", "id": job_id, "key": key, "label": label},
        )
        if key is None:
            # An uncacheable (or cache-disabled) submission cannot be
            # deduplicated, so a broken design would burn a worker on
            # every resubmission: lint it at the door instead.
            refusal = self._lint_refusal(job)
            if refusal is not None:
                message, report = refusal
                self.stats.rejected += 1
                self.stats.failed += 1
                await self._send(
                    writer,
                    {
                        "event": "failed",
                        "id": job_id,
                        "error": message,
                        "lint": report,
                    },
                )
                return
        if key is not None:
            entry = self.store.get(key)
            if entry is not None:
                self.stats.cache_hits += 1
                await self._finish(
                    writer,
                    job_id,
                    value=entry.value,
                    record=entry.record(),
                    cached=True,
                    seconds=0.0,
                    want_payload=want_payload,
                )
                return
        start = time.perf_counter()
        if key is not None and key in self._inflight:
            self.stats.coalesced += 1
            future = self._inflight[key]
            while not future.done():
                done, _ = await asyncio.wait([future], timeout=self.progress_interval)
                if not done:
                    await self._send(
                        writer,
                        {
                            "event": "running",
                            "id": job_id,
                            "seconds": time.perf_counter() - start,
                            "coalesced": True,
                        },
                    )
            try:
                result = future.result()
            except Exception as exc:  # the coalesced execution crashed
                await self._send(
                    writer,
                    {
                        "event": "failed",
                        "id": job_id,
                        "error": f"{type(exc).__name__}: {exc}",
                        "seconds": time.perf_counter() - start,
                    },
                )
                self.stats.failed += 1
                return
            if result.ok:
                self.stats.cache_hits += 1
                # The originating request may not have published yet;
                # put is idempotent, so settle the record either way.
                entry = self.store.get(key)
                if entry is None:
                    entry = self.store.put(
                        key,
                        result.value,
                        kind=job_kind(job),
                        label=result.label,
                        seconds=result.seconds,
                    )
                record = entry.record()
                await self._finish(
                    writer,
                    job_id,
                    value=result.value,
                    record=record,
                    cached=True,
                    seconds=time.perf_counter() - start,
                    want_payload=want_payload,
                )
            else:
                self.stats.failed += 1
                await self._send(
                    writer,
                    {
                        "event": "failed",
                        "id": job_id,
                        "error": result.error,
                        "traceback": result.traceback,
                        "seconds": time.perf_counter() - start,
                    },
                )
            return
        else:
            result = await self._execute(writer, job_id, job, seed, key, start)
            if result is None:
                return
        await self._report_result(writer, job_id, job, key, result, start, want_payload)

    def _lint_refusal(self, job) -> tuple[str, dict] | None:
        """``(message, report_dict)`` when pre-flight lint errors.

        Lint itself must never take a submission down — any unexpected
        analyzer failure degrades to "no refusal".
        """
        try:
            from repro.lint.gate import lint_job, refusal_message

            report = lint_job(job)
        except Exception:  # noqa: BLE001 - lint is advisory here
            return None
        if report is None or not report.errors:
            return None
        return (
            f"rejected by pre-flight lint: {refusal_message(report)}",
            report.as_dict(),
        )

    async def _execute(self, writer, job_id, job, seed, key, start):
        """Run one job on the pool, streaming ``running`` heartbeats.

        Returns the :class:`~repro.runtime.report.JobResult`, or
        ``None`` when the pool itself failed (already reported).
        """
        from repro.runtime.runner import _execute_job

        loop = asyncio.get_running_loop()
        label = getattr(job, "label", "") or f"job-{job_id}"
        try:
            pool = self._pool_or_start()
            future = loop.run_in_executor(
                pool,
                _execute_job,
                job,
                job_id,
                label,
                np.random.SeedSequence(seed),
            )
        except Exception as exc:  # unpicklable job, pool refused
            await self._send(
                writer,
                {
                    "event": "failed",
                    "id": job_id,
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
            self.stats.failed += 1
            return None
        if key is not None:
            self._inflight[key] = future
        try:
            await self._send(writer, {"event": "running", "id": job_id})
            while True:
                done, _ = await asyncio.wait([future], timeout=self.progress_interval)
                if done:
                    break
                await self._send(
                    writer,
                    {
                        "event": "running",
                        "id": job_id,
                        "seconds": time.perf_counter() - start,
                    },
                )
            try:
                result = future.result()
            except Exception as exc:  # worker crash / broken pool
                from concurrent.futures.process import BrokenProcessPool

                if isinstance(exc, BrokenProcessPool):
                    self._reset_broken_pool()
                await self._send(
                    writer,
                    {
                        "event": "failed",
                        "id": job_id,
                        "error": f"{type(exc).__name__}: {exc}",
                        "seconds": time.perf_counter() - start,
                    },
                )
                self.stats.failed += 1
                return None
        finally:
            if key is not None:
                self._inflight.pop(key, None)
        return result

    async def _report_result(
        self, writer, job_id, job, key, result, start, want_payload
    ) -> None:
        seconds = time.perf_counter() - start
        if not result.ok:
            self.stats.failed += 1
            await self._send(
                writer,
                {
                    "event": "failed",
                    "id": job_id,
                    "error": result.error,
                    "traceback": result.traceback,
                    "seconds": seconds,
                },
            )
            return
        self.stats.executed += 1
        flops = getattr(result.value, "flops", None)
        if flops is not None:
            self.stats.factorizations += int(flops.factorizations)
            self.stats.solver_flops += int(flops.total)
        if key is not None:
            entry = self.store.put(
                key,
                result.value,
                kind=job_kind(job),
                label=result.label,
                seconds=result.seconds,
            )
            record = entry.record()
        else:
            record = {
                "schema": None,
                "key": None,
                "kind": job_kind(job),
                "label": result.label,
                "summary": result_summary(result.value),
            }
        await self._finish(
            writer,
            job_id,
            value=result.value,
            record=record,
            cached=False,
            seconds=seconds,
            want_payload=want_payload,
        )

    async def _finish(
        self, writer, job_id, *, value, record, cached, seconds, want_payload
    ) -> None:
        event = {
            "event": "done",
            "id": job_id,
            "cached": cached,
            "seconds": seconds,
            "record": record,
        }
        if want_payload:
            event["payload_b64"] = base64.b64encode(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii")
        await self._send(writer, event)
