"""The simulation service daemon.

An :mod:`asyncio` server on a local Unix socket speaking a JSON-lines
protocol: one request object per connection, a stream of event objects
back.  Jobs execute on a persistent worker pool (the same
``_execute_job`` body the :class:`~repro.runtime.BatchRunner` uses, so
failure isolation is identical: a crashing job returns a structured
``failed`` event, never takes the daemon down), and every cacheable
job is served through the content-addressed
:class:`~repro.service.store.ResultStore` — a resubmitted spec+seed
returns the stored record without touching the pool.

Request ops::

    {"op": "ping"}
    {"op": "status"}
    {"op": "gc", "max_age_seconds": 86400, "max_entries": 1000}
    {"op": "shutdown"}
    {"op": "submit", "job": {...job-spec table...}, "seed": 0,
     "cache": true, "payload": false}

``submit`` streams ``queued -> running(progress) -> done|failed``
events; ``done`` carries the deterministic result record (and, with
``payload=true``, the base64-pickled result value).  Concurrent
submissions of the same fingerprint are coalesced onto one execution.

Only trust the socket as far as you trust local users: payloads are
pickles, and the socket is created with owner-only permissions.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import json
import os
import pickle
import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.errors import AnalysisError, NanoSimError
from repro.resilience.checkpoint import JobJournal
from repro.resilience.retry import RetryPolicy
from repro.service.cache import job_kind
from repro.service.hashing import UncacheableJobError, job_key
from repro.service.store import ResultStore, result_summary

__all__ = ["PROTOCOL", "ServiceDaemon", "default_socket_path"]

#: Protocol tag sent in every ``pong`` / ``status`` response.
PROTOCOL = "repro-service/1"

_EXECUTORS = ("process", "thread")


def default_socket_path(store: ResultStore | None = None) -> Path:
    """Default daemon socket: ``<store-root>/daemon.sock``."""
    root = store.root if store is not None else ResultStore().root
    return Path(root) / "daemon.sock"


class _Stats:
    """Daemon-lifetime counters exposed by the ``status`` op."""

    def __init__(self) -> None:
        self.started = time.time()
        self.submissions = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.executed = 0
        self.failed = 0
        self.rejected = 0
        self.factorizations = 0
        self.solver_flops = 0

    def as_dict(self) -> dict:
        return {
            "uptime_seconds": time.time() - self.started,
            "submissions": self.submissions,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "failed": self.failed,
            "rejected": self.rejected,
            "factorizations": self.factorizations,
            "solver_flops": self.solver_flops,
        }


class ServiceDaemon:
    """Persistent job daemon over a Unix socket.

    Parameters
    ----------
    socket_path:
        Path the listening socket is bound to (created/removed by the
        daemon; a stale file from a previous run is replaced).
    store:
        Result store (path, :class:`ResultStore` or ``None`` for the
        default root).
    max_workers:
        Worker pool width; defaults to the usable CPU count.
    executor:
        ``"process"`` (default, CPU-bound simulation fan-out) or
        ``"thread"`` (in-process, for tests and debugging).
    progress_interval:
        Seconds between ``running`` heartbeat events while a job
        executes.
    retries:
        ``None`` (no retries), an int (extra attempts per job), or a
        :class:`~repro.resilience.RetryPolicy` — applied to worker
        crashes and transient solver failures of executed jobs.  The
        same seed is re-used per attempt, so a recovered result is
        bit-identical to an undisturbed run.
    fault_plan:
        A :class:`~repro.resilience.FaultPlan` injected into every
        worker invocation (chaos testing only).
    journal:
        Keep a crash journal of in-flight cacheable jobs next to the
        store and re-queue them on startup (default True).
    """

    def __init__(
        self,
        socket_path: str | Path | None = None,
        store: ResultStore | str | Path | None = None,
        max_workers: int | None = None,
        executor: str = "process",
        progress_interval: float = 1.0,
        retries=None,
        fault_plan=None,
        journal: bool = True,
    ) -> None:
        if executor not in _EXECUTORS:
            raise AnalysisError(
                f"unknown executor {executor!r} "
                f"(expected one of {', '.join(_EXECUTORS)})"
            )
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.socket_path = Path(
            socket_path
            if socket_path is not None
            else default_socket_path(self.store)
        )
        from repro.runtime.runner import default_worker_count

        self.max_workers = max_workers or default_worker_count()
        self.executor = executor
        self.progress_interval = float(progress_interval)
        self.retries = RetryPolicy.resolve(retries)
        self.fault_plan = fault_plan
        self.journal = JobJournal(self.store.root) if journal else None
        self.stats = _Stats()
        self._pool = None
        self._next_id = 0
        self._inflight: dict[str, asyncio.Future] = {}
        self._stop: asyncio.Event | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._active_submissions = 0

    # -- pool -----------------------------------------------------------

    def _make_pool(self):
        pool_class = (
            ProcessPoolExecutor
            if self.executor == "process"
            else ThreadPoolExecutor
        )
        return pool_class(max_workers=self.max_workers)

    def _pool_or_start(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _reset_broken_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._make_pool()

    # -- lifecycle ------------------------------------------------------

    async def serve(self, ready=None) -> None:
        """Bind the socket and serve until a ``shutdown`` request.

        *ready* is any object with a ``set()`` method (a
        ``threading.Event`` or ``asyncio.Event``), signalled once the
        socket is bound and accepting connections.  On SIGTERM the
        daemon drains: running jobs finish, new submissions are
        refused, and a final stats line is printed before exit.
        Journaled in-flight jobs from a previous (crashed) run are
        re-queued before the socket accepts traffic — finished work is
        recognized in the store and never re-simulated.
        """
        self._stop = asyncio.Event()
        self._draining = False
        loop = asyncio.get_running_loop()
        self._loop = loop
        # add_signal_handler raises off the main thread (tests run the
        # daemon in a worker thread); drain is then reachable via
        # loop.call_soon_threadsafe(daemon._begin_drain).
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(signal.SIGTERM, self._begin_drain)
        await self._recover()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(OSError):
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path)
        )
        os.chmod(self.socket_path, 0o600)
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.remove_signal_handler(signal.SIGTERM)
            self._server.close()
            await self._server.wait_closed()
            with contextlib.suppress(OSError):
                self.socket_path.unlink()
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def run(self, ready=None) -> None:
        """Blocking entry point: serve on a fresh event loop."""
        try:
            asyncio.run(self.serve(ready=ready))
        except KeyboardInterrupt:
            pass

    # -- graceful shutdown ----------------------------------------------

    def _begin_drain(self) -> None:
        """Refuse new submissions, finish running jobs, then stop.

        Called from the SIGTERM handler (or scheduled onto the loop via
        ``call_soon_threadsafe`` when signals are unavailable).
        """
        if self._draining or self._stop is None:
            return
        self._draining = True
        asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        while self._active_submissions > 0:
            await asyncio.sleep(0.05)
        print(
            "daemon drained: "
            + json.dumps(self.stats.as_dict(), sort_keys=True),
            flush=True,
        )
        assert self._stop is not None
        self._stop.set()

    # -- crash recovery -------------------------------------------------

    async def _recover(self) -> None:
        """Re-queue journaled in-flight jobs from a previous run.

        A journal entry whose key is already in the store was finished
        (published) before the crash — it is cleared without touching
        the pool.  The rest re-execute under their original seeds, so
        the recovered records are byte-identical to what the
        interrupted run would have produced.
        """
        if self.journal is None:
            return
        from repro.runtime.jobs import job_from_mapping

        for key, entry in self.journal.pending().items():
            if key in self.store:
                self.journal.clear(key)
                continue
            try:
                job = job_from_mapping(entry["spec"])
            except (NanoSimError, TypeError, ValueError):
                self.journal.clear(key)
                continue
            self._next_id += 1
            label = getattr(job, "label", "") or f"recovered-{self._next_id}"
            result = await self._run_attempts(
                job, self._next_id, label, int(entry.get("seed") or 0)
            )
            if result.ok:
                self.stats.executed += 1
                flops = getattr(result.value, "flops", None)
                if flops is not None:
                    self.stats.factorizations += int(flops.factorizations)
                    self.stats.solver_flops += int(flops.total)
                self.store.put(
                    key,
                    result.value,
                    kind=job_kind(job),
                    label=result.label,
                    seconds=result.seconds,
                )
            else:
                self.stats.failed += 1
            self.journal.clear(key)

    # -- protocol -------------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, event: dict) -> None:
        writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if not line.strip():
                return
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                await self._send(
                    writer, {"event": "error", "error": f"bad request: {exc}"}
                )
                return
            op = request.get("op")
            if op == "ping":
                await self._send(writer, {"event": "pong", "protocol": PROTOCOL})
            elif op == "status":
                await self._send(writer, self._status_event())
            elif op == "gc":
                stats = self.store.gc(
                    max_age_seconds=request.get("max_age_seconds"),
                    max_entries=request.get("max_entries"),
                )
                await self._send(writer, {"event": "gc", **vars(stats)})
            elif op == "shutdown":
                await self._send(writer, {"event": "bye"})
                assert self._stop is not None
                self._stop.set()
            elif op == "submit":
                self._active_submissions += 1
                try:
                    await self._handle_submit(writer, request)
                finally:
                    self._active_submissions -= 1
            else:
                await self._send(
                    writer,
                    {"event": "error", "error": f"unknown op {op!r}"},
                )
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            with contextlib.suppress(Exception):
                await self._send(
                    writer,
                    {
                        "event": "error",
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _status_event(self) -> dict:
        return {
            "event": "status",
            "protocol": PROTOCOL,
            "executor": self.executor,
            "workers": self.max_workers,
            "inflight": len(self._inflight),
            "store": self.store.stats(),
            **self.stats.as_dict(),
        }

    # -- submit ---------------------------------------------------------

    async def _handle_submit(self, writer: asyncio.StreamWriter, request: dict) -> None:
        from repro.runtime.jobs import job_from_mapping

        self.stats.submissions += 1
        self._next_id += 1
        job_id = self._next_id
        if self._draining:
            self.stats.rejected += 1
            self.stats.failed += 1
            await self._send(
                writer,
                {
                    "event": "failed",
                    "id": job_id,
                    "error": "daemon is draining; submission refused",
                },
            )
            return
        spec = request.get("job")
        seed = int(request.get("seed", 0))
        use_cache = bool(request.get("cache", True))
        want_payload = bool(request.get("payload", False))
        if not isinstance(spec, dict):
            await self._send(
                writer,
                {
                    "event": "failed",
                    "id": job_id,
                    "error": "submit needs a job= spec table",
                },
            )
            self.stats.failed += 1
            return
        try:
            job = job_from_mapping(spec)
        except (NanoSimError, TypeError, ValueError) as exc:
            await self._send(
                writer,
                {
                    "event": "failed",
                    "id": job_id,
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
            self.stats.failed += 1
            return
        label = getattr(job, "label", "") or f"job-{job_id}"
        key: str | None = None
        if use_cache:
            try:
                key = job_key(job, seed=seed)
            except UncacheableJobError:
                key = None
        await self._send(
            writer,
            {"event": "queued", "id": job_id, "key": key, "label": label},
        )
        if key is None:
            # An uncacheable (or cache-disabled) submission cannot be
            # deduplicated, so a broken design would burn a worker on
            # every resubmission: lint it at the door instead.
            refusal = self._lint_refusal(job)
            if refusal is not None:
                message, report = refusal
                self.stats.rejected += 1
                self.stats.failed += 1
                await self._send(
                    writer,
                    {
                        "event": "failed",
                        "id": job_id,
                        "error": message,
                        "lint": report,
                    },
                )
                return
        if key is not None:
            entry = self.store.get(key)
            if entry is not None:
                self.stats.cache_hits += 1
                await self._finish(
                    writer,
                    job_id,
                    value=entry.value,
                    record=entry.record(),
                    cached=True,
                    seconds=0.0,
                    want_payload=want_payload,
                )
                return
        start = time.perf_counter()
        if key is not None and key in self._inflight:
            self.stats.coalesced += 1
            future = self._inflight[key]
            while not future.done():
                done, _ = await asyncio.wait([future], timeout=self.progress_interval)
                if not done:
                    await self._send(
                        writer,
                        {
                            "event": "running",
                            "id": job_id,
                            "seconds": time.perf_counter() - start,
                            "coalesced": True,
                        },
                    )
            try:
                result = future.result()
            except Exception as exc:  # the coalesced execution crashed
                await self._send(
                    writer,
                    {
                        "event": "failed",
                        "id": job_id,
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                        "seconds": time.perf_counter() - start,
                    },
                )
                self.stats.failed += 1
                return
            if result.ok:
                self.stats.cache_hits += 1
                # The originating request may not have published yet;
                # put is idempotent, so settle the record either way.
                entry = self.store.get(key)
                if entry is None:
                    entry = self.store.put(
                        key,
                        result.value,
                        kind=job_kind(job),
                        label=result.label,
                        seconds=result.seconds,
                    )
                record = entry.record()
                await self._finish(
                    writer,
                    job_id,
                    value=result.value,
                    record=record,
                    cached=True,
                    seconds=time.perf_counter() - start,
                    want_payload=want_payload,
                )
            else:
                self.stats.failed += 1
                await self._send(
                    writer,
                    {
                        "event": "failed",
                        "id": job_id,
                        "error": result.error,
                        "traceback": result.traceback,
                        "seconds": time.perf_counter() - start,
                    },
                )
            return
        else:
            if key is not None and self.journal is not None:
                self.journal.record(key, spec, seed)
            result = await self._execute(writer, job_id, job, seed, key, start)
            if result is None:
                if key is not None and self.journal is not None:
                    self.journal.clear(key)
                return
        await self._report_result(writer, job_id, job, key, result, start, want_payload)
        if key is not None and self.journal is not None:
            self.journal.clear(key)

    def _lint_refusal(self, job) -> tuple[str, dict] | None:
        """``(message, report_dict)`` when pre-flight lint errors.

        Lint itself must never take a submission down — any unexpected
        analyzer failure degrades to "no refusal".
        """
        try:
            from repro.lint.gate import lint_job, refusal_message

            report = lint_job(job)
        except Exception:  # noqa: BLE001 - lint is advisory here
            return None
        if report is None or not report.errors:
            return None
        return (
            f"rejected by pre-flight lint: {refusal_message(report)}",
            report.as_dict(),
        )

    async def _run_attempts(self, job, job_id, label, seed):
        """Execute one job on the pool with the daemon's retry policy.

        Every failure — including a worker crash that breaks the
        process pool — is captured as a structured
        :class:`~repro.runtime.report.JobResult` with a traceback, so
        callers always receive a terminal result.  Retryable failures
        (crashes, transient solver errors) re-run under the *same*
        seed, keeping recovered results bit-identical.
        """
        from concurrent.futures.process import BrokenProcessPool

        from repro.runtime.report import JobResult
        from repro.runtime.runner import _execute_job, retryable_failure

        loop = asyncio.get_running_loop()
        real = self.executor == "process"
        attempt = 0
        while True:
            attempt += 1
            try:
                pool = self._pool_or_start()
                result = await loop.run_in_executor(
                    pool,
                    _execute_job,
                    job,
                    job_id,
                    label,
                    np.random.SeedSequence(seed),
                    self.fault_plan,
                    attempt,
                    real,
                )
            except Exception as exc:  # worker crash, unpicklable job...
                broken = isinstance(exc, BrokenProcessPool)
                if broken:
                    self._reset_broken_pool()
                result = JobResult(
                    index=job_id,
                    label=label,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                    failure="crash" if broken else "error",
                )
            result.attempts = attempt
            if (
                result.ok
                or attempt >= self.retries.max_attempts
                or not retryable_failure(result)
            ):
                return result
            delay = self.retries.delay(attempt, seed)
            if delay > 0:
                await asyncio.sleep(delay)

    async def _execute(self, writer, job_id, job, seed, key, start):
        """Run one job on the pool, streaming ``running`` heartbeats.

        Returns the terminal :class:`~repro.runtime.report.JobResult`
        (failures included — the caller reports them).  The execution
        runs as its own task registered in ``_inflight``, so coalesced
        submissions of the same key share it even if this connection
        dies mid-stream.
        """
        label = getattr(job, "label", "") or f"job-{job_id}"
        task = asyncio.ensure_future(
            self._run_attempts(job, job_id, label, seed)
        )
        if key is not None:
            self._inflight[key] = task
        try:
            await self._send(writer, {"event": "running", "id": job_id})
            while True:
                done, _ = await asyncio.wait([task], timeout=self.progress_interval)
                if done:
                    break
                await self._send(
                    writer,
                    {
                        "event": "running",
                        "id": job_id,
                        "seconds": time.perf_counter() - start,
                    },
                )
            result = task.result()
        finally:
            if key is not None:
                self._inflight.pop(key, None)
        return result

    async def _report_result(
        self, writer, job_id, job, key, result, start, want_payload
    ) -> None:
        seconds = time.perf_counter() - start
        if not result.ok:
            self.stats.failed += 1
            await self._send(
                writer,
                {
                    "event": "failed",
                    "id": job_id,
                    "error": result.error,
                    "traceback": result.traceback,
                    "seconds": seconds,
                },
            )
            return
        self.stats.executed += 1
        flops = getattr(result.value, "flops", None)
        if flops is not None:
            self.stats.factorizations += int(flops.factorizations)
            self.stats.solver_flops += int(flops.total)
        if key is not None:
            entry = self.store.put(
                key,
                result.value,
                kind=job_kind(job),
                label=result.label,
                seconds=result.seconds,
            )
            record = entry.record()
        else:
            record = {
                "schema": None,
                "key": None,
                "kind": job_kind(job),
                "label": result.label,
                "summary": result_summary(result.value),
            }
        await self._finish(
            writer,
            job_id,
            value=result.value,
            record=record,
            cached=False,
            seconds=seconds,
            want_payload=want_payload,
        )

    async def _finish(
        self, writer, job_id, *, value, record, cached, seconds, want_payload
    ) -> None:
        event = {
            "event": "done",
            "id": job_id,
            "cached": cached,
            "seconds": seconds,
            "record": record,
        }
        if want_payload:
            event["payload_b64"] = base64.b64encode(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii")
        await self._send(writer, event)
