"""Command-line entry point: ``python -m repro.sweep spec.toml``.

Loads a TOML (Python 3.11+) or JSON sweep spec (schema documented on
:meth:`repro.sweep.spec.SweepSpec.from_mapping`), runs the grid on the
batch runtime, prints the tidy summary table and optionally exports it::

    python -m repro.sweep examples/sweep_spec.toml
    python -m repro.sweep spec.toml --workers 8 --csv out.csv --json out.json
    python -m repro.sweep --list-templates

The exit status is 0 when every design point succeeded, 1 when any
failed, 2 on a bad spec.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import NanoSimError
from repro.sweep.runner import run_sweep
from repro.sweep.spec import load_sweep_spec


def _list_templates() -> str:
    """The ``--list-templates`` table text."""
    from repro.circuits_lib.templates import TEMPLATES

    lines = ["registered sweep templates:"]
    width = max(len(name) for name in TEMPLATES)
    for name in sorted(TEMPLATES):
        template = TEMPLATES[name]
        lines.append(
            f"  {name:<{width}}  [{template.kind:>7}]  "
            f"{template.description}")
        lines.append(
            f"  {'':<{width}}             sweepable: "
            f"{', '.join(template.sweepable)}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run a parametric design-space sweep in parallel.",
    )
    parser.add_argument("spec", nargs="?", default=None,
                        help="sweep-spec file (.toml or .json)")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count (default: [batch].workers, else CPU count)")
    parser.add_argument(
        "--executor", choices=("process", "thread", "serial"),
        default=None,
        help="execution backend (default: [batch].executor, else process)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="base RNG seed (default: [batch].seed, else 0)")
    parser.add_argument(
        "--vector", type=int, default=None, metavar="N",
        help="march N consecutive SWEC transient points per lockstep "
             "batch (default: [batch].vector, else 1)")
    from repro.core.backends import available_backends

    parser.add_argument(
        "--backend", default=None, choices=available_backends(),
        help="solver backend for every point (default: the spec's "
             "backend setting, else each engine's default)")
    parser.add_argument(
        "--cache", nargs="?", const="", default=None, metavar="PATH",
        help="consult the content-addressed result store before running "
             "each point (PATH, or the default store with no argument)")
    parser.add_argument(
        "--validate", choices=("off", "warn", "strict"), default=None,
        help="pre-flight lint every design point (default: the spec's "
             "validate setting, else off); strict refuses broken "
             "points before any solve")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock limit; hung workers are killed and "
             "the point retried or failed (default: [batch].timeout)")
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts for points failing with transient errors "
             "(default: [batch].retries, else 0); retried points keep "
             "their original seeds, so results are bit-identical")
    parser.add_argument(
        "--resume", nargs="?", const="", default=None, metavar="PATH",
        help="resume an interrupted sweep from its checkpoint store "
             "(PATH, or the default store with no argument): completed "
             "points are served from disk, only the rest re-simulate")
    parser.add_argument(
        "--isolate", action="store_true", default=None,
        help="re-run a terminally failed lockstep block point by "
             "point, so one bad design costs only its own row "
             "(default: [batch].isolate, else off)")
    parser.add_argument(
        "--antithetic", action="store_true", default=None,
        help="mirror each ensemble path pair's Gaussian increments "
             "(ensemble sweeps; exact variance elimination for linear "
             "responses)")
    parser.add_argument(
        "--control-variate", action="store_true", default=None,
        help="rejected with an explanation: control variates pair "
             "circuit paths with a linearized companion circuit, so "
             "they live on run_circuit_ensemble / ensemble_transient "
             "jobs, not SDE ensemble sweeps")
    parser.add_argument(
        "--target-ci", type=float, default=None, metavar="WIDTH",
        help="stop each ensemble point early once its CI half-width "
             "is at most WIDTH (absolute units)")
    parser.add_argument(
        "--target-rel-ci", type=float, default=None, metavar="FRACTION",
        help="stop each ensemble point early once its CI half-width "
             "is at most FRACTION of the peak mean magnitude")
    parser.add_argument(
        "--max-trials", type=int, default=None, metavar="K",
        help="adaptive-stopping backstop: never simulate more than K "
             "paths per point")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="write the tidy table as CSV")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full report as JSON")
    parser.add_argument("--list-templates", action="store_true",
                        help="list sweepable circuit templates and exit")
    args = parser.parse_args(argv)

    if args.list_templates:
        print(_list_templates())
        return 0
    if args.spec is None:
        parser.error("a sweep-spec file is required "
                     "(or use --list-templates)")

    try:
        spec = load_sweep_spec(args.spec)
        report = run_sweep(spec, max_workers=args.workers,
                           executor=args.executor, seed=args.seed,
                           vector=args.vector, backend=args.backend,
                           cache=args.cache, validate=args.validate,
                           timeout=args.timeout, retries=args.retries,
                           resume=args.resume, isolate=args.isolate,
                           antithetic=args.antithetic,
                           control_variate=args.control_variate,
                           target_ci=args.target_ci,
                           target_rel_ci=args.target_rel_ci,
                           max_trials=args.max_trials)
    except (NanoSimError, TypeError, ValueError) as exc:
        # ValueError covers json/toml decode errors on malformed
        # files; per-point simulation failures never raise — they are
        # captured in the report, so anything escaping here is a
        # configuration problem.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    for row in report.failures():
        print(f"  point {row['index']} ({row['label']}): {row['error']}",
              file=sys.stderr)
    if args.csv:
        report.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        report.to_json(args.json)
        print(f"wrote {args.json}")
    return 0 if report.ok else 1
