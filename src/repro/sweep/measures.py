"""Per-point measure extraction for sweeps.

A measure reduces one simulation result to a single float, *inside the
worker process*, so only scalars — never full waveforms — cross the
process boundary on the way into a
:class:`~repro.sweep.report.SweepReport` column.

Transient measures wrap :mod:`repro.analysis.measure` over one node's
waveform; ensemble measures reduce the
:class:`~repro.stochastic.montecarlo.EnsembleStatistics` bands.  Each
measure is addressed by ``kind`` in the spec file and contributes one
report column (named after the measure, or an explicit ``name=``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.errors import SweepSpecError


def _node_waveform(result, node: str | None):
    """``(times, values)`` of *node* (default: last node) in a result."""
    from repro.errors import AnalysisError

    if node is None:
        node = result.node_names[-1]
    try:
        return result.times, result.voltage(node)
    except AnalysisError as exc:
        raise AnalysisError(
            f"measure node {node!r}: {exc}") from exc


def _measure_rise_time(result, node, kwargs):
    from repro.analysis.measure import rise_time

    return rise_time(*_node_waveform(result, node), **kwargs)


def _measure_fall_time(result, node, kwargs):
    from repro.analysis.measure import fall_time

    return fall_time(*_node_waveform(result, node), **kwargs)


def _measure_peak(result, node, kwargs):
    from repro.analysis.measure import peak_value

    return peak_value(*_node_waveform(result, node), **kwargs)[1]


def _measure_peak_time(result, node, kwargs):
    from repro.analysis.measure import peak_value

    return peak_value(*_node_waveform(result, node), **kwargs)[0]


def _measure_final(result, node, kwargs):
    times, values = _node_waveform(result, node)
    return float(values[-1])


def _measure_settling_time(result, node, kwargs):
    from repro.analysis.measure import settling_time

    return settling_time(*_node_waveform(result, node), **kwargs)


def _measure_overshoot(result, node, kwargs):
    from repro.analysis.measure import overshoot

    return overshoot(*_node_waveform(result, node), **kwargs)


def _measure_crossing_count(result, node, kwargs):
    from repro.analysis.measure import crossing_times

    return float(crossing_times(*_node_waveform(result, node),
                                **kwargs).size)


def _measure_at(result, node, kwargs):
    kwargs = dict(kwargs)
    try:
        t = kwargs.pop("t")
    except KeyError:
        raise SweepSpecError("measure 'at' needs t=<time>") from None
    if node is None:
        node = result.node_names[-1]
    return result.at(float(t), node)


#: Transient measures: ``fn(TransientResult, node, kwargs) -> float``.
TRANSIENT_MEASURES = {
    "rise_time": _measure_rise_time,
    "fall_time": _measure_fall_time,
    "peak": _measure_peak,
    "peak_time": _measure_peak_time,
    "final": _measure_final,
    "at": _measure_at,
    "settling_time": _measure_settling_time,
    "overshoot": _measure_overshoot,
    "crossing_count": _measure_crossing_count,
}


def _ensemble_mean_peak(stats, kwargs):
    return float(np.max(stats.mean))


def _ensemble_mean_final(stats, kwargs):
    return float(stats.mean[-1])


def _ensemble_std_final(stats, kwargs):
    return float(stats.std[-1])


def _ensemble_std_peak(stats, kwargs):
    return float(np.max(stats.std))


def _ensemble_band_width_max(stats, kwargs):
    return float(np.max(stats.band_width()))


def _ensemble_upper_peak(stats, kwargs):
    return float(np.max(stats.upper))


#: Ensemble measures: ``fn(EnsembleStatistics, kwargs) -> float``.
ENSEMBLE_MEASURES = {
    "mean_peak": _ensemble_mean_peak,
    "mean_final": _ensemble_mean_final,
    "std_final": _ensemble_std_final,
    "std_peak": _ensemble_std_peak,
    "band_width_max": _ensemble_band_width_max,
    "upper_peak": _ensemble_upper_peak,
}


@dataclass(frozen=True)
class MeasureSpec:
    """One measure to extract at every sweep point.

    ``kind`` names a registered reducer; ``name`` is the report column
    (defaults to ``kind``); ``node`` selects the waveform for transient
    measures; ``kwargs`` is forwarded to the underlying measurement
    (levels, windows, tolerances — picklable scalars only).
    """

    kind: str
    name: str = ""
    node: str | None = None
    kwargs: tuple = field(default_factory=tuple)

    @property
    def column(self) -> str:
        """Report column name."""
        return self.name or self.kind

    def extract(self, value) -> float:
        """Reduce one job result to this measure's scalar."""
        kwargs = dict(self.kwargs)
        if self.kind in TRANSIENT_MEASURES:
            return float(TRANSIENT_MEASURES[self.kind](value, self.node,
                                                       kwargs))
        return float(ENSEMBLE_MEASURES[self.kind](value, kwargs))

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any],
                     kind: str = "transient") -> "MeasureSpec":
        """Build (and validate) a measure from one ``[[measures]]``
        table; *kind* is the sweep kind it must be compatible with."""
        mapping = dict(mapping)
        measure_kind = mapping.pop("kind", None)
        if not measure_kind:
            raise SweepSpecError("measure needs a kind=")
        registry = (TRANSIENT_MEASURES if kind == "transient"
                    else ENSEMBLE_MEASURES)
        if measure_kind not in registry:
            raise SweepSpecError(
                f"unknown {kind} measure {measure_kind!r} "
                f"(available: {', '.join(sorted(registry))})")
        name = mapping.pop("name", "")
        node = mapping.pop("node", None)
        if node is not None and kind == "ensemble":
            raise SweepSpecError(
                f"measure {measure_kind!r}: node= applies only to "
                f"transient sweeps (ensembles pick their component "
                f"in the sweep settings)")
        for key, value in mapping.items():
            if not isinstance(value, (int, float, str, bool)):
                raise SweepSpecError(
                    f"measure {measure_kind!r}: argument {key}={value!r} "
                    f"is not a scalar")
        return cls(kind=measure_kind, name=name, node=node,
                   kwargs=tuple(sorted(mapping.items())))


def measures_from_spec(tables, kind: str = "transient") -> list[MeasureSpec]:
    """Build every measure of a spec document, checking name clashes."""
    measures = [MeasureSpec.from_mapping(table, kind=kind)
                for table in tables]
    columns = [m.column for m in measures]
    duplicates = {c for c in columns if columns.count(c) > 1}
    if duplicates:
        raise SweepSpecError(
            f"duplicate measure column(s): {sorted(duplicates)}; "
            f"disambiguate with name=")
    return measures
