"""Per-point measure extraction for sweeps.

A measure reduces one simulation result to a single float, *inside the
worker process*, so only scalars — never full waveforms — cross the
process boundary on the way into a
:class:`~repro.sweep.report.SweepReport` column.

Transient measures wrap :mod:`repro.analysis.measure` over one node's
waveform; ensemble measures reduce the
:class:`~repro.stochastic.montecarlo.EnsembleStatistics` bands; AC
measures reduce an :class:`~repro.ac.ACResult` transfer function to
its Bode landmarks; PSS measures reduce a
:class:`~repro.pss.PSSResult` orbit to its period, harmonic
amplitudes and convergence diagnostics.  Each measure is addressed by
``kind`` in the spec file and contributes one report column (named
after the measure, or an explicit ``name=``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.errors import SweepSpecError


def _node_waveform(result, node: str | None):
    """``(times, values)`` of *node* (default: last node) in a result."""
    from repro.errors import AnalysisError

    if node is None:
        node = result.node_names[-1]
    try:
        return result.times, result.voltage(node)
    except AnalysisError as exc:
        raise AnalysisError(
            f"measure node {node!r}: {exc}") from exc


def _measure_rise_time(result, node, kwargs):
    from repro.analysis.measure import rise_time

    return rise_time(*_node_waveform(result, node), **kwargs)


def _measure_fall_time(result, node, kwargs):
    from repro.analysis.measure import fall_time

    return fall_time(*_node_waveform(result, node), **kwargs)


def _measure_peak(result, node, kwargs):
    from repro.analysis.measure import peak_value

    return peak_value(*_node_waveform(result, node), **kwargs)[1]


def _measure_peak_time(result, node, kwargs):
    from repro.analysis.measure import peak_value

    return peak_value(*_node_waveform(result, node), **kwargs)[0]


def _measure_final(result, node, kwargs):
    times, values = _node_waveform(result, node)
    return float(values[-1])


def _measure_settling_time(result, node, kwargs):
    from repro.analysis.measure import settling_time

    return settling_time(*_node_waveform(result, node), **kwargs)


def _measure_overshoot(result, node, kwargs):
    from repro.analysis.measure import overshoot

    return overshoot(*_node_waveform(result, node), **kwargs)


def _measure_crossing_count(result, node, kwargs):
    from repro.analysis.measure import crossing_times

    return float(crossing_times(*_node_waveform(result, node),
                                **kwargs).size)


def _measure_at(result, node, kwargs):
    kwargs = dict(kwargs)
    try:
        t = kwargs.pop("t")
    except KeyError:
        raise SweepSpecError("measure 'at' needs t=<time>") from None
    if node is None:
        node = result.node_names[-1]
    return result.at(float(t), node)


#: Transient measures: ``fn(TransientResult, node, kwargs) -> float``.
TRANSIENT_MEASURES = {
    "rise_time": _measure_rise_time,
    "fall_time": _measure_fall_time,
    "peak": _measure_peak,
    "peak_time": _measure_peak_time,
    "final": _measure_final,
    "at": _measure_at,
    "settling_time": _measure_settling_time,
    "overshoot": _measure_overshoot,
    "crossing_count": _measure_crossing_count,
}


def _ensemble_mean_peak(stats, kwargs):
    return float(np.max(stats.mean))


def _ensemble_mean_final(stats, kwargs):
    return float(stats.mean[-1])


def _ensemble_std_final(stats, kwargs):
    return float(stats.std[-1])


def _ensemble_std_peak(stats, kwargs):
    return float(np.max(stats.std))


def _ensemble_band_width_max(stats, kwargs):
    return float(np.max(stats.band_width()))


def _ensemble_upper_peak(stats, kwargs):
    return float(np.max(stats.upper))


#: Ensemble measures: ``fn(EnsembleStatistics, kwargs) -> float``.
ENSEMBLE_MEASURES = {
    "mean_peak": _ensemble_mean_peak,
    "mean_final": _ensemble_mean_final,
    "std_final": _ensemble_std_final,
    "std_peak": _ensemble_std_peak,
    "band_width_max": _ensemble_band_width_max,
    "upper_peak": _ensemble_upper_peak,
}


def _ac_node(result, node):
    """Observed node of an AC measure (default: last node)."""
    return node if node is not None else result.node_names[-1]


def _measure_ac_gain(result, node, kwargs):
    return abs(result.low_frequency_gain(_ac_node(result, node)))


def _measure_ac_gain_db(result, node, kwargs):
    from repro.errors import AnalysisError

    gain = abs(result.low_frequency_gain(_ac_node(result, node)))
    if gain <= 0.0:
        raise AnalysisError("ac_gain_db: zero low-frequency gain")
    return 20.0 * np.log10(gain)


def _measure_bandwidth_3db(result, node, kwargs):
    return result.bandwidth_3db(_ac_node(result, node))


def _measure_unity_gain_freq(result, node, kwargs):
    return result.unity_gain_frequency(_ac_node(result, node))


def _measure_phase_margin(result, node, kwargs):
    return result.phase_margin(_ac_node(result, node))


def _ac_frequency_argument(kwargs):
    try:
        return float(kwargs.pop("f"))
    except KeyError:
        raise SweepSpecError(
            "measure needs f=<frequency in Hz>") from None


def _measure_gain_at(result, node, kwargs):
    return result.gain_at(_ac_frequency_argument(kwargs),
                          _ac_node(result, node))


def _measure_phase_at(result, node, kwargs):
    return result.phase_at(_ac_frequency_argument(kwargs),
                           _ac_node(result, node))


#: AC measures: ``fn(ACResult, node, kwargs) -> float``.
AC_MEASURES = {
    "ac_gain": _measure_ac_gain,
    "ac_gain_db": _measure_ac_gain_db,
    "bandwidth_3db": _measure_bandwidth_3db,
    "unity_gain_freq": _measure_unity_gain_freq,
    "phase_margin": _measure_phase_margin,
    "gain_at": _measure_gain_at,
    "phase_at": _measure_phase_at,
}


def _measure_pss_period(result, node, kwargs):
    return result.period


def _measure_pss_frequency(result, node, kwargs):
    return result.frequency


def _measure_pss_amplitude(result, node, kwargs):
    return result.amplitude(node)


def _measure_pss_peak_to_peak(result, node, kwargs):
    return result.peak_to_peak(node)


def _measure_pss_mean(result, node, kwargs):
    return result.mean(node)


def _measure_pss_harmonic(result, node, kwargs):
    order = int(kwargs.pop("order", 1))
    return result.harmonic_magnitude(node, order)


def _measure_pss_iterations(result, node, kwargs):
    return float(result.iterations)


def _measure_pss_residual(result, node, kwargs):
    return result.residual


#: PSS measures: ``fn(PSSResult, node, kwargs) -> float``.
PSS_MEASURES = {
    "period": _measure_pss_period,
    "frequency": _measure_pss_frequency,
    "amplitude": _measure_pss_amplitude,
    "peak_to_peak": _measure_pss_peak_to_peak,
    "mean": _measure_pss_mean,
    "harmonic": _measure_pss_harmonic,
    "pss_iterations": _measure_pss_iterations,
    "pss_residual": _measure_pss_residual,
}


@dataclass(frozen=True)
class MeasureSpec:
    """One measure to extract at every sweep point.

    ``kind`` names a registered reducer; ``name`` is the report column
    (defaults to ``kind``); ``node`` selects the waveform for transient
    measures; ``kwargs`` is forwarded to the underlying measurement
    (levels, windows, tolerances — picklable scalars only).
    """

    kind: str
    name: str = ""
    node: str | None = None
    kwargs: tuple = field(default_factory=tuple)

    @property
    def column(self) -> str:
        """Report column name."""
        return self.name or self.kind

    def extract(self, value) -> float:
        """Reduce one job result to this measure's scalar."""
        kwargs = dict(self.kwargs)
        from repro.pss import PSSResult

        if isinstance(value, PSSResult):
            return float(PSS_MEASURES[self.kind](value, self.node, kwargs))
        if self.kind in TRANSIENT_MEASURES:
            return float(TRANSIENT_MEASURES[self.kind](value, self.node,
                                                       kwargs))
        if self.kind in AC_MEASURES:
            return float(AC_MEASURES[self.kind](value, self.node, kwargs))
        return float(ENSEMBLE_MEASURES[self.kind](value, kwargs))

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any],
                     kind: str = "transient") -> "MeasureSpec":
        """Build (and validate) a measure from one ``[[measures]]``
        table; *kind* is the sweep kind it must be compatible with."""
        mapping = dict(mapping)
        measure_kind = mapping.pop("kind", None)
        if not measure_kind:
            raise SweepSpecError("measure needs a kind=")
        registries = {"transient": TRANSIENT_MEASURES,
                      "ensemble": ENSEMBLE_MEASURES,
                      "ac": AC_MEASURES,
                      "pss": PSS_MEASURES}
        try:
            registry = registries[kind]
        except KeyError:
            raise SweepSpecError(
                f"unknown sweep kind {kind!r} (expected one of "
                f"{', '.join(sorted(registries))})") from None
        if measure_kind not in registry:
            raise SweepSpecError(
                f"unknown {kind} measure {measure_kind!r} "
                f"(available: {', '.join(sorted(registry))})")
        name = mapping.pop("name", "")
        node = mapping.pop("node", None)
        if node is not None and kind == "ensemble":
            raise SweepSpecError(
                f"measure {measure_kind!r}: node= applies only to "
                f"transient/AC sweeps (ensembles pick their component "
                f"in the sweep settings)")
        for key, value in mapping.items():
            if not isinstance(value, (int, float, str, bool)):
                raise SweepSpecError(
                    f"measure {measure_kind!r}: argument {key}={value!r} "
                    f"is not a scalar")
        return cls(kind=measure_kind, name=name, node=node,
                   kwargs=tuple(sorted(mapping.items())))


def measures_from_spec(tables, kind: str = "transient") -> list[MeasureSpec]:
    """Build every measure of a spec document, checking name clashes."""
    measures = [MeasureSpec.from_mapping(table, kind=kind)
                for table in tables]
    columns = [m.column for m in measures]
    duplicates = {c for c in columns if columns.count(c) > 1}
    if duplicates:
        raise SweepSpecError(
            f"duplicate measure column(s): {sorted(duplicates)}; "
            f"disambiguate with name=")
    return measures
