"""Sweep execution: expand the grid, fan out, aggregate per point.

``run_sweep`` turns a :class:`~repro.sweep.spec.SweepSpec` into one
:class:`SweepPointJob` per design point, executes them on the PR-1
:class:`~repro.runtime.BatchRunner` (deterministic ``SeedSequence``
seeding: per-point results are bit-identical at any worker count), and
assembles the streamed-back scalars into a
:class:`~repro.sweep.report.SweepReport`.

With ``[batch] vector = N`` in the spec, a SWEC transient sweep
collapses every N consecutive same-topology design points into one
:class:`SweepBatchJob` marched in lockstep by
:class:`~repro.swec.ensemble.SwecEnsembleTransient` — one batched
solve per time point for the whole block instead of N independent
Python marches.  Grouping is by position in the deterministic point
order, so a sweep's results depend only on ``(spec, vector)`` — never
on the worker count.

The aggregation is *streaming* in the data-volume sense: each point's
waveforms/paths are reduced to measure scalars inside the worker
(:meth:`SweepPointJob.run` / :meth:`SweepBatchJob.run`), so the parent
process never holds more than one small dict per point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.runtime.jobs import (
    ACJob,
    EnsembleJob,
    PSSJob,
    TransientJob,
    _swec_options,
    materialize_circuit,
)
from repro.runtime.report import BatchReport
from repro.runtime.runner import BatchRunner
from repro.sweep.measures import MeasureSpec
from repro.sweep.report import SweepReport
from repro.sweep.spec import SweepSpec

#: Diagnostic columns every transient sweep report carries.
_TRANSIENT_DIAGNOSTICS = ("points", "flops")


@dataclass
class SweepPointJob:
    """One design point: an inner job plus worker-side reduction.

    Wraps a :class:`~repro.runtime.jobs.TransientJob` or
    :class:`~repro.runtime.jobs.EnsembleJob` and reduces its result to
    the spec's measure scalars *before* returning, so the process
    boundary carries a small dict instead of full waveforms.
    """

    inner: TransientJob | EnsembleJob | ACJob
    measures: list[MeasureSpec] = field(default_factory=list)
    point: dict = field(default_factory=dict)
    label: str = ""

    def run(self, seed=None) -> dict:
        """Execute the inner job; return measure + diagnostic scalars."""
        value = self.inner.run(seed)
        scalars: dict[str, float] = {}
        for measure in self.measures:
            scalars[measure.column] = measure.extract(value)
        diagnostics: dict[str, float] = {}
        if hasattr(value, "flops"):  # TransientResult
            diagnostics["points"] = float(len(value))
            diagnostics["flops"] = float(value.flops.total)
        return {"measures": scalars, "diagnostics": diagnostics}


@dataclass
class SweepBatchJob:
    """A block of consecutive design points marched in lockstep.

    One worker materializes the block's circuits (template builder or
    ``.PARAM`` netlist, one per point), hands them to
    :class:`~repro.swec.ensemble.SwecEnsembleTransient`, and reduces
    each instance's waveforms to the spec's measure scalars before
    returning — the process boundary carries one small dict per point,
    exactly like the scalar path.  Instances share the block's
    worst-case adaptive grid, so measure values can differ from the
    scalar path within step-control tolerance; they are identical for
    any worker count because blocks are cut from the deterministic
    point order.
    """

    template: str | None
    netlist_text: str | None
    params_list: list[dict]
    t_stop: float
    options: object = None
    initial_state: object = None
    #: Solver backend for the lockstep march; overrides ``options``.
    backend: str | None = None
    measures: list[MeasureSpec] = field(default_factory=list)
    points: list[dict] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)
    label: str = ""

    def run(self, seed=None) -> list[dict]:
        """March the block; return per-point measure/diagnostic dicts."""
        import numpy as np

        from repro.runtime.jobs import apply_backend
        from repro.swec.ensemble import SwecEnsembleTransient

        circuits = [
            materialize_circuit(None, self.template, self.netlist_text,
                                params)
            for params in self.params_list
        ]
        options = apply_backend(self.options, self.backend)
        if isinstance(options, dict):
            options = _swec_options(dict(options))
        engine = SwecEnsembleTransient(circuits, options)
        kwargs = {}
        if self.initial_state is not None:
            kwargs["initial_states"] = np.asarray(self.initial_state, float)
        result = engine.run(self.t_stop, **kwargs)
        # The ensemble-level flop count is split evenly: every instance
        # followed the same recipe on the same grid.
        flops_each = result.flops.total // len(circuits)
        rows = []
        for k in range(len(circuits)):
            instance = result.instance(k)
            scalars = {measure.column: measure.extract(instance)
                       for measure in self.measures}
            rows.append({
                "measures": scalars,
                "diagnostics": {"points": float(len(instance)),
                                "flops": float(flops_each)},
            })
        return rows


def build_batch_jobs(spec: SweepSpec, vector: int) -> list[SweepBatchJob]:
    """Expand *spec* into lockstep blocks of up to *vector* points."""
    measures = spec.resolved_measures()
    settings = dict(spec.settings)
    settings.pop("engine", None)  # validated to be "swec"
    prepared = []
    for point in spec.points():
        params = dict(point)
        if spec.template is not None:
            params = spec.template_info().coerce(params)
        prepared.append((point, spec.point_label(point), params))
    jobs = []
    for lo in range(0, len(prepared), vector):
        block = prepared[lo:lo + vector]
        jobs.append(SweepBatchJob(
            template=spec.template,
            netlist_text=spec.netlist_text,
            params_list=[params for _, _, params in block],
            measures=measures,
            points=[point for point, _, _ in block],
            labels=[label for _, label, _ in block],
            label=f"block-{lo // vector}",
            **settings,
        ))
    return jobs


def build_jobs(spec: SweepSpec) -> list[SweepPointJob]:
    """Expand *spec* into one :class:`SweepPointJob` per grid point."""
    jobs = []
    measures = spec.resolved_measures()
    for point in spec.points():
        label = spec.point_label(point)
        params = dict(point)
        if spec.template is not None:
            params = spec.template_info().coerce(params)
        if spec.kind in ("transient", "ac", "pss"):
            job_class = {"transient": TransientJob, "ac": ACJob,
                         "pss": PSSJob}[spec.kind]
            settings = dict(spec.settings)
            if (spec.kind == "ac" and spec.template is not None
                    and "source" not in settings
                    and spec.template_info().ac_source is not None):
                settings["source"] = spec.template_info().ac_source
            if spec.template is not None:
                inner = job_class(builder=spec.template, params=params,
                                  label=label, **settings)
            else:
                inner = job_class(netlist=spec.netlist_text,
                                  params=params, label=label, **settings)
        else:
            # SweepSpec validation guarantees an SDE template here.
            inner = EnsembleJob(builder=spec.template, params=params,
                                label=label, **spec.settings)
        jobs.append(SweepPointJob(inner=inner, measures=measures,
                                  point=point, label=label))
    return jobs


def _block_point_jobs(block: SweepBatchJob) -> list[SweepPointJob]:
    """Rebuild a lockstep block's points as individual scalar jobs.

    Used by the opt-in ``isolate`` recovery path: when a block fails
    terminally, its design points re-run one by one so a single bad
    point cannot take its healthy neighbours down with it.
    """
    jobs = []
    for params, point, label in zip(block.params_list, block.points,
                                    block.labels):
        inner = TransientJob(
            t_stop=block.t_stop,
            builder=block.template,
            netlist=block.netlist_text,
            params=params,
            options=block.options,
            initial_state=block.initial_state,
            backend=block.backend,
            label=label,
        )
        jobs.append(SweepPointJob(inner=inner, measures=block.measures,
                                  point=point, label=label))
    return jobs


def _isolate_failed_blocks(runner: BatchRunner, jobs,
                           batch: BatchReport) -> BatchReport:
    """Re-run each terminally failed block's points individually.

    Lint refusers (:class:`~repro.lint.gate.RefusedBatchJob`, spotted
    by their ``refusal`` attribute) are left alone — re-running a
    design the gate rejected would defeat the gate.  Each surviving
    point's row replaces the block-wide failure; points that fail
    again carry their own error as a ``{"failed": ...}`` sentinel that
    :func:`_point_rows` unpacks into a per-point failed row.
    """
    targets = [
        (result, job) for result, job in zip(batch.results, jobs)
        if isinstance(job, SweepBatchJob) and not result.ok
        and not hasattr(job, "refusal")
    ]
    if not targets:
        return batch
    point_jobs: list[SweepPointJob] = []
    spans = []
    for result, block in targets:
        rebuilt = _block_point_jobs(block)
        spans.append((result, len(point_jobs), len(rebuilt)))
        point_jobs.extend(rebuilt)
    isolated = runner.run(point_jobs)
    for result, offset, count in spans:
        values = []
        for row in isolated.results[offset:offset + count]:
            if row.ok:
                values.append({**row.value, "seconds": row.seconds})
            else:
                values.append({"failed": row.error, "seconds": row.seconds})
        result.value = values
    return batch


def _point_rows(jobs, batch: BatchReport):
    """Flatten job results into per-point rows, preserving point order.

    Yields ``(index, label, point, ok, error, seconds, value)`` for
    scalar :class:`SweepPointJob`\\ s and lockstep
    :class:`SweepBatchJob` blocks alike.  A failed block marks every
    one of its points failed — unless the ``isolate`` recovery path
    replaced its value with per-point rows, in which case each point
    reports its own individual outcome.
    """
    index = 0
    for result, job in zip(batch.results, jobs):
        if isinstance(job, SweepBatchJob):
            per_point = result.ok or isinstance(result.value, list)
            values = (result.value if per_point
                      else [None] * len(job.points))
            seconds = result.seconds / max(len(job.points), 1)
            for label, point, value in zip(job.labels, job.points, values):
                if value is None:
                    yield (index, label, point, False, result.error,
                           seconds, None)
                elif "failed" in value:
                    yield (index, label, point, False, value["failed"],
                           value.get("seconds", seconds), None)
                else:
                    yield (index, label, point, True, None,
                           value.get("seconds", seconds), value)
                index += 1
        else:
            yield (index, result.label, job.point, result.ok,
                   result.error, result.seconds, result.value)
            index += 1


def _assemble_report(spec: SweepSpec, jobs, batch: BatchReport,
                     wall_seconds: float) -> SweepReport:
    """Stitch per-point scalars into tidy columns, preserving order."""
    param_names = tuple(axis.name for axis in spec.axes)
    measure_names = tuple(m.column for m in spec.measures)
    diagnostics = (_TRANSIENT_DIAGNOSTICS
                   if spec.kind in ("transient", "pss") else ())
    columns: dict[str, list] = {
        name: [] for name in
        ("index", "label", *param_names, *measure_names, *diagnostics,
         "ok", "error", "seconds")
    }
    for index, label, point, ok, error, seconds, value in \
            _point_rows(jobs, batch):
        columns["index"].append(index)
        columns["label"].append(label)
        for name in param_names:
            columns[name].append(point[name])
        scalars = value["measures"] if ok else {}
        for name in measure_names:
            columns[name].append(scalars.get(name))
        point_diag = value["diagnostics"] if ok else {}
        for name in diagnostics:
            columns[name].append(point_diag.get(name))
        columns["ok"].append(ok)
        columns["error"].append(error)
        columns["seconds"].append(seconds)
    return SweepReport(
        name=spec.name,
        param_names=param_names,
        measure_names=measure_names,
        columns=columns,
        wall_seconds=wall_seconds,
        workers=batch.workers,
        executor=batch.executor,
        seed=batch.seed,
    )


def run_sweep(spec: SweepSpec, max_workers: int | None = None,
              executor: str | None = None, seed: int | None = None,
              vector: int | None = None,
              backend: str | None = None,
              cache=None,
              validate: str | None = None,
              timeout: float | None = None,
              retries=None,
              fault_plan=None,
              resume=None,
              isolate: bool | None = None,
              antithetic: bool | None = None,
              control_variate: bool | None = None,
              target_ci: float | None = None,
              target_rel_ci: float | None = None,
              max_trials: int | None = None) -> SweepReport:
    """Run every design point of *spec* and aggregate the report.

    ``max_workers``/``executor``/``seed``/``vector`` override the
    spec's ``[batch]`` table; the defaults match
    :class:`~repro.runtime.BatchRunner` (process pool over all usable
    cores, seed 0 so sweeps replay identically by default).  With
    ``vector > 1`` (SWEC transient sweeps only) consecutive design
    points march in lockstep blocks of that size — see
    :class:`SweepBatchJob`.  ``backend`` forces the solver backend of
    every point (transient, AC and PSS sweeps), overriding the spec's
    ``backend`` setting.

    ``cache`` enables the content-addressed result store of
    :mod:`repro.service`: a path (or a ready
    :class:`~repro.service.ResultStore`, or ``True`` for the default
    root).  Each point's reduced measures are looked up by the
    fingerprint of ``(point job, base seed, position)`` before any
    solver runs; hits skip the pool entirely and misses are published
    for the next sweep.  Determinism is unaffected — misses execute
    under the exact seeds they would receive in an uncached run.

    ``validate`` overrides the spec's pre-flight lint mode (``"off"``,
    ``"warn"`` or ``"strict"``).  Strict mode replaces every broken
    design point's job with a refuser *before* dispatch: the point
    appears as a failed row (a :class:`~repro.errors.LintError`)
    without any factorization happening; a lockstep block containing
    a broken point is refused whole, because its points share one
    adaptive grid.

    Fault tolerance (see :mod:`repro.resilience`):

    ``timeout``
        Per-job wall-clock limit in seconds, passed to the runner's
        watchdog; defaults to the spec's ``[batch] timeout``.
    ``retries``
        Retry budget for transient failures — an int (extra attempts)
        or a :class:`~repro.resilience.RetryPolicy`; defaults to the
        spec's ``[batch] retries``.  Retried points re-run under their
        original seeds, so recovered results are bit-identical.
    ``fault_plan``
        A :class:`~repro.resilience.FaultPlan` for deterministic chaos
        testing; injected faults flow through the same retry/timeout
        machinery as real ones.
    ``resume``
        Sugar for ``cache=``: point at the result store of an
        interrupted run (which checkpoints every completed point as it
        finishes) and only the unfinished points re-simulate.
    ``isolate``
        When True (or ``[batch] isolate = true``), a lockstep block
        that fails terminally is re-run point by point, so one bad
        design costs only its own row instead of the whole block.
        Lint-refused blocks stay refused.  Off by default: the
        block-fails-whole behaviour is the documented lockstep
        contract.

    Variance reduction (ensemble sweeps only, see
    :mod:`repro.stochastic.vr`): ``antithetic`` mirrors each path
    pair's increments, ``target_ci``/``target_rel_ci`` stop every
    point once its confidence interval is tight enough (``max_trials``
    backstop).  They override the spec's matching ensemble settings.
    ``control_variate`` is rejected here: SDE ensemble sweeps march
    linear(ized) SDEs, so the linearized control would be the signal
    itself — use :func:`repro.stochastic.run_circuit_ensemble` or an
    ``ensemble_transient`` runtime job for circuit-level control
    variates.
    """
    vr_overrides = {
        key: value
        for key, value in (("antithetic", antithetic),
                           ("target_ci", target_ci),
                           ("target_rel_ci", target_rel_ci),
                           ("max_trials", max_trials))
        if value is not None
    }
    if control_variate:
        from repro.errors import SweepSpecError

        raise SweepSpecError(
            "control_variate= applies to circuit-level ensembles "
            "(run_circuit_ensemble / ensemble_transient jobs); SDE "
            "ensemble sweeps are linear, so the linearized control "
            "is the signal itself")
    if vr_overrides:
        if spec.kind != "ensemble":
            from repro.errors import SweepSpecError

            raise SweepSpecError(
                "antithetic=/target_ci=/target_rel_ci=/max_trials= "
                "apply to ensemble sweeps only")
        spec = replace(spec, settings={**spec.settings, **vr_overrides})
    if backend is not None:
        if spec.kind == "ensemble":
            from repro.errors import SweepSpecError

            raise SweepSpecError(
                "backend= applies to transient, AC and PSS sweeps only")
        spec = replace(spec, settings={**spec.settings,
                                       "backend": backend})
    batch_settings = spec.batch
    runner = BatchRunner(
        max_workers=(max_workers if max_workers is not None
                     else batch_settings.get("workers")),
        executor=(executor if executor is not None
                  else batch_settings.get("executor", "process")),
        seed=seed if seed is not None else batch_settings.get("seed", 0),
        timeout=(timeout if timeout is not None
                 else batch_settings.get("timeout")),
        retries=(retries if retries is not None
                 else batch_settings.get("retries")),
        fault_plan=fault_plan,
    )
    if isolate is None:
        isolate = bool(batch_settings.get("isolate", False))
    if cache is None and resume is not None and resume is not False:
        cache = resume
    if vector is None:
        vector = spec.vector
    if vector > 1:
        if (spec.kind != "transient"
                or spec.settings.get("engine", "swec") != "swec"):
            from repro.errors import SweepSpecError

            raise SweepSpecError(
                "vector > 1 needs a SWEC transient sweep")
        jobs = build_batch_jobs(spec, vector)
    else:
        jobs = build_jobs(spec)
    mode = validate if validate is not None else spec.validate
    if mode != "off":
        from repro.lint.gate import gate_sweep_jobs

        jobs = gate_sweep_jobs(jobs, mode)
    start = time.perf_counter()
    if cache is not None and cache is not False:
        from repro.service import ResultStore, run_batch_cached

        batch = run_batch_cached(runner, jobs, ResultStore.resolve(cache))
    else:
        batch = runner.run(jobs)
    if isolate:
        batch = _isolate_failed_blocks(runner, jobs, batch)
    return _assemble_report(spec, jobs, batch,
                            time.perf_counter() - start)
