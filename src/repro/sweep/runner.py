"""Sweep execution: expand the grid, fan out, aggregate per point.

``run_sweep`` turns a :class:`~repro.sweep.spec.SweepSpec` into one
:class:`SweepPointJob` per design point, executes them on the PR-1
:class:`~repro.runtime.BatchRunner` (deterministic ``SeedSequence``
seeding: per-point results are bit-identical at any worker count), and
assembles the streamed-back scalars into a
:class:`~repro.sweep.report.SweepReport`.

The aggregation is *streaming* in the data-volume sense: each point's
waveforms/paths are reduced to measure scalars inside the worker
(:meth:`SweepPointJob.run`), so the parent process never holds more
than one small dict per point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.runtime.jobs import ACJob, EnsembleJob, TransientJob
from repro.runtime.report import BatchReport
from repro.runtime.runner import BatchRunner
from repro.sweep.measures import MeasureSpec
from repro.sweep.report import SweepReport
from repro.sweep.spec import SweepSpec

#: Diagnostic columns every transient sweep report carries.
_TRANSIENT_DIAGNOSTICS = ("points", "flops")


@dataclass
class SweepPointJob:
    """One design point: an inner job plus worker-side reduction.

    Wraps a :class:`~repro.runtime.jobs.TransientJob` or
    :class:`~repro.runtime.jobs.EnsembleJob` and reduces its result to
    the spec's measure scalars *before* returning, so the process
    boundary carries a small dict instead of full waveforms.
    """

    inner: TransientJob | EnsembleJob | ACJob
    measures: list[MeasureSpec] = field(default_factory=list)
    point: dict = field(default_factory=dict)
    label: str = ""

    def run(self, seed=None) -> dict:
        """Execute the inner job; return measure + diagnostic scalars."""
        value = self.inner.run(seed)
        scalars: dict[str, float] = {}
        for measure in self.measures:
            scalars[measure.column] = measure.extract(value)
        diagnostics: dict[str, float] = {}
        if hasattr(value, "flops"):  # TransientResult
            diagnostics["points"] = float(len(value))
            diagnostics["flops"] = float(value.flops.total)
        return {"measures": scalars, "diagnostics": diagnostics}


def build_jobs(spec: SweepSpec) -> list[SweepPointJob]:
    """Expand *spec* into one :class:`SweepPointJob` per grid point."""
    jobs = []
    measures = spec.resolved_measures()
    for point in spec.points():
        label = spec.point_label(point)
        params = dict(point)
        if spec.template is not None:
            params = spec.template_info().coerce(params)
        if spec.kind in ("transient", "ac"):
            job_class = TransientJob if spec.kind == "transient" else ACJob
            settings = dict(spec.settings)
            if (spec.kind == "ac" and spec.template is not None
                    and "source" not in settings
                    and spec.template_info().ac_source is not None):
                settings["source"] = spec.template_info().ac_source
            if spec.template is not None:
                inner = job_class(builder=spec.template, params=params,
                                  label=label, **settings)
            else:
                inner = job_class(netlist=spec.netlist_text,
                                  params=params, label=label, **settings)
        else:
            # SweepSpec validation guarantees an SDE template here.
            inner = EnsembleJob(builder=spec.template, params=params,
                                label=label, **spec.settings)
        jobs.append(SweepPointJob(inner=inner, measures=measures,
                                  point=point, label=label))
    return jobs


def _assemble_report(spec: SweepSpec, jobs: list[SweepPointJob],
                     batch: BatchReport,
                     wall_seconds: float) -> SweepReport:
    """Stitch per-point scalars into tidy columns, preserving order."""
    param_names = tuple(axis.name for axis in spec.axes)
    measure_names = tuple(m.column for m in spec.measures)
    diagnostics = (_TRANSIENT_DIAGNOSTICS
                   if spec.kind == "transient" else ())
    columns: dict[str, list] = {
        name: [] for name in
        ("index", "label", *param_names, *measure_names, *diagnostics,
         "ok", "error", "seconds")
    }
    for result, job in zip(batch.results, jobs):
        columns["index"].append(result.index)
        columns["label"].append(result.label)
        for name in param_names:
            columns[name].append(job.point[name])
        scalars = result.value["measures"] if result.ok else {}
        for name in measure_names:
            columns[name].append(scalars.get(name))
        point_diag = result.value["diagnostics"] if result.ok else {}
        for name in diagnostics:
            columns[name].append(point_diag.get(name))
        columns["ok"].append(result.ok)
        columns["error"].append(result.error)
        columns["seconds"].append(result.seconds)
    return SweepReport(
        name=spec.name,
        param_names=param_names,
        measure_names=measure_names,
        columns=columns,
        wall_seconds=wall_seconds,
        workers=batch.workers,
        executor=batch.executor,
        seed=batch.seed,
    )


def run_sweep(spec: SweepSpec, max_workers: int | None = None,
              executor: str | None = None,
              seed: int | None = None) -> SweepReport:
    """Run every design point of *spec* and aggregate the report.

    ``max_workers``/``executor``/``seed`` override the spec's
    ``[batch]`` table; the defaults match
    :class:`~repro.runtime.BatchRunner` (process pool over all usable
    cores, seed 0 so sweeps replay identically by default).
    """
    batch_settings = spec.batch
    runner = BatchRunner(
        max_workers=(max_workers if max_workers is not None
                     else batch_settings.get("workers")),
        executor=(executor if executor is not None
                  else batch_settings.get("executor", "process")),
        seed=seed if seed is not None else batch_settings.get("seed", 0),
    )
    jobs = build_jobs(spec)
    start = time.perf_counter()
    batch = runner.run(jobs)
    return _assemble_report(spec, jobs, batch,
                            time.perf_counter() - start)
