"""Sweep specifications: parameter axes, grids and validation.

A :class:`SweepSpec` describes a design-space exploration: a *base*
(a registered :mod:`repro.circuits_lib` template, or a netlist with
``.PARAM`` definitions), one or more :class:`ParameterAxis` entries,
the simulation settings shared by every point, and the measures to
extract per point.  ``points()`` expands the axes into the concrete
parameter grid — the Cartesian product by default, or position-wise
``zip`` pairing.

Everything is validated eagerly: bad ranges, empty grids, unknown
template parameters and unknown measures raise
:class:`~repro.errors.SweepSpecError` *before* any simulation runs.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import MISSING, dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.circuits_lib.templates import CircuitTemplate, get_template
from repro.errors import SweepSpecError
from repro.sweep.measures import MeasureSpec, measures_from_spec

try:
    import tomllib
except ImportError:  # Python 3.10: TOML needs 3.11+, JSON always works
    tomllib = None

_MODES = ("product", "zip")
_KINDS = ("transient", "ensemble", "ac", "pss")

#: Job fields owned by the sweep runner, not the spec's settings table.
_RUNNER_OWNED = frozenset(
    {"circuit", "builder", "netlist", "sde", "params", "label"})


def _job_class(kind: str):
    from repro.runtime.jobs import ACJob, EnsembleJob, PSSJob, TransientJob

    return {"transient": TransientJob, "ensemble": EnsembleJob,
            "ac": ACJob, "pss": PSSJob}[kind]


def _check_settings(kind: str, settings: Mapping[str, Any]) -> None:
    """Eagerly validate the per-kind job settings keys.

    Without this, a typo'd key (``tstop``) would pass spec validation
    and surface later as a ``TypeError`` inside ``build_jobs``.
    """
    job_fields = [f for f in fields(_job_class(kind))
                  if f.name not in _RUNNER_OWNED]
    allowed = {f.name for f in job_fields}
    unknown = set(settings) - allowed
    if unknown:
        raise SweepSpecError(
            f"unknown {kind} setting(s) {sorted(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})")
    required = {f.name for f in job_fields
                if f.default is MISSING and f.default_factory is MISSING}
    missing = required - set(settings)
    if missing:
        raise SweepSpecError(
            f"{kind} sweep is missing required setting(s) "
            f"{sorted(missing)}")


@dataclass(frozen=True)
class ParameterAxis:
    """One swept parameter: a name and the values it takes.

    Built either from an explicit value list or from a range
    (``start``/``stop``/``num``, linearly or logarithmically spaced).
    """

    name: str
    values: tuple[float, ...]

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ParameterAxis":
        """Build an axis from one deserialized ``[[axes]]`` table."""
        mapping = dict(mapping)
        name = mapping.pop("name", None)
        if not name or not isinstance(name, str):
            raise SweepSpecError(
                f"axis needs a string name=, got {name!r}")
        values = mapping.pop("values", None)
        if values is not None:
            if mapping:
                raise SweepSpecError(
                    f"axis {name!r}: values= excludes {sorted(mapping)}")
            return cls.from_values(name, values)
        try:
            start = float(mapping.pop("start"))
            stop = float(mapping.pop("stop"))
            num = int(mapping.pop("num"))
        except KeyError as exc:
            raise SweepSpecError(
                f"axis {name!r} needs either values= or "
                f"start=/stop=/num= (missing {exc})") from None
        except (TypeError, ValueError) as exc:
            raise SweepSpecError(f"axis {name!r}: {exc}") from exc
        scale = mapping.pop("scale", "linear")
        if mapping:
            raise SweepSpecError(
                f"axis {name!r}: unknown key(s) {sorted(mapping)}")
        return cls.from_range(name, start, stop, num, scale)

    @classmethod
    def from_values(cls, name: str, values) -> "ParameterAxis":
        """Axis over an explicit value list."""
        try:
            numbers = tuple(float(v) for v in values)
        except (TypeError, ValueError) as exc:
            raise SweepSpecError(
                f"axis {name!r}: non-numeric value in {values!r}") from exc
        if not numbers:
            raise SweepSpecError(f"axis {name!r} has no values")
        return cls(name, numbers)

    @classmethod
    def from_range(cls, name: str, start: float, stop: float, num: int,
                   scale: str = "linear") -> "ParameterAxis":
        """Axis over ``num`` points from *start* to *stop* inclusive."""
        if num < 1:
            raise SweepSpecError(
                f"axis {name!r}: num must be >= 1, got {num}")
        if num == 1 and start != stop:
            raise SweepSpecError(
                f"axis {name!r}: num=1 needs start == stop")
        if scale == "linear":
            values = np.linspace(start, stop, num)
        elif scale == "log":
            if start <= 0.0 or stop <= 0.0:
                raise SweepSpecError(
                    f"axis {name!r}: log scale needs positive "
                    f"endpoints, got [{start}, {stop}]")
            values = np.geomspace(start, stop, num)
        else:
            raise SweepSpecError(
                f"axis {name!r}: scale must be 'linear' or 'log', "
                f"got {scale!r}")
        return cls(name, tuple(float(v) for v in values))

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class SweepSpec:
    """A validated parametric sweep over one circuit family.

    Exactly one of ``template`` (a registered
    :class:`~repro.circuits_lib.templates.CircuitTemplate` name) or
    ``netlist_text`` (SPICE-dialect source with ``.PARAM`` cards for
    every swept name) identifies the base design.  ``settings`` holds
    the per-kind job keywords (``t_stop``/``engine``/``options`` for
    transients; ``t_final``/``steps``/``n_paths``/... for ensembles;
    ``f_start``/``f_stop``/``n_points``/``source``/... for AC sweeps).
    """

    axes: list[ParameterAxis]
    kind: str = "transient"
    template: str | None = None
    netlist_text: str | None = None
    mode: str = "product"
    fixed: dict = field(default_factory=dict)
    settings: dict = field(default_factory=dict)
    measures: list[MeasureSpec] = field(default_factory=list)
    name: str = "sweep"
    batch: dict = field(default_factory=dict)
    #: Pre-flight lint mode for every design point: ``"off"`` (no
    #: linting), ``"warn"`` (log broken points, run anyway) or
    #: ``"strict"`` (refuse broken points before any solve) — see
    #: :mod:`repro.lint.gate`.
    validate: str = "off"

    def __post_init__(self) -> None:
        if self.validate not in ("off", "warn", "strict"):
            raise SweepSpecError(
                f"validate must be 'off', 'warn' or 'strict', "
                f"got {self.validate!r}")
        if (self.template is None) == (self.netlist_text is None):
            raise SweepSpecError(
                "sweep needs exactly one of template= or netlist")
        if self.kind not in _KINDS:
            raise SweepSpecError(
                f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.mode not in _MODES:
            raise SweepSpecError(
                f"mode must be one of {_MODES}, got {self.mode!r}")
        if not self.axes:
            raise SweepSpecError("sweep defines no parameter axes")
        names = [axis.name for axis in self.axes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SweepSpecError(
                f"duplicate axis name(s): {sorted(duplicates)}")
        overlap = set(names) & set(self.fixed)
        if overlap:
            raise SweepSpecError(
                f"parameter(s) both fixed and swept: {sorted(overlap)}")
        if self.mode == "zip":
            lengths = {len(axis) for axis in self.axes}
            if len(lengths) > 1:
                raise SweepSpecError(
                    f"zip mode needs equal-length axes, got lengths "
                    f"{sorted(len(a) for a in self.axes)}")
        if self.netlist_text is not None and self.kind == "ensemble":
            raise SweepSpecError(
                "ensemble sweeps need a registered SDE template "
                "(netlists describe deterministic circuits)")
        if self.template is not None:
            info = self.template_info()
            if info.kind == "sde" and self.kind != "ensemble":
                raise SweepSpecError(
                    f"template {self.template!r} is an SDE; "
                    f"use kind = 'ensemble'")
            if info.kind == "circuit" and self.kind == "ensemble":
                raise SweepSpecError(
                    f"template {self.template!r} is a circuit; "
                    f"use kind = 'transient', 'ac' or 'pss'")
            info.coerce({name: 0.0 for name in names})
            info.coerce({k: 0.0 for k in self.fixed})
        _check_settings(self.kind, self.settings)
        if not self.measures:
            raise SweepSpecError("sweep defines no measures")
        if self.n_points == 0:
            raise SweepSpecError("sweep grid is empty")
        self._check_vector()

    def _check_vector(self) -> None:
        """Validate the optional ``[batch] vector`` lockstep setting."""
        vector = self.batch.get("vector", 1)
        if not isinstance(vector, int) or isinstance(vector, bool) \
                or vector < 1:
            raise SweepSpecError(
                f"[batch] vector must be an integer >= 1, got {vector!r}")
        if vector == 1:
            return
        if self.kind != "transient":
            raise SweepSpecError(
                "[batch] vector > 1 needs a transient sweep (lockstep "
                "batching marches shared-topology transients)")
        engine = self.settings.get("engine", "swec")
        if engine != "swec":
            raise SweepSpecError(
                f"[batch] vector > 1 needs engine = 'swec', got {engine!r}")

    @property
    def vector(self) -> int:
        """Design points marched per lockstep batch (1 = scalar jobs)."""
        return self.batch.get("vector", 1)

    # ------------------------------------------------------------------

    def template_info(self) -> CircuitTemplate:
        """The registered template this sweep instantiates."""
        if self.template is None:
            raise SweepSpecError("netlist-based sweep has no template")
        return get_template(self.template)

    @property
    def n_points(self) -> int:
        """Number of design points the grid expands to."""
        if self.mode == "zip":
            return len(self.axes[0])
        count = 1
        for axis in self.axes:
            count *= len(axis)
        return count

    def points(self) -> list[dict[str, float]]:
        """Expand the axes into per-point parameter dictionaries.

        Point order is deterministic: the Cartesian product iterates
        the *last* axis fastest (like nested for-loops in axis order).
        """
        names = [axis.name for axis in self.axes]
        if self.mode == "zip":
            combos = zip(*(axis.values for axis in self.axes))
        else:
            combos = itertools.product(*(axis.values for axis in self.axes))
        grid = []
        for combo in combos:
            point = dict(self.fixed)
            point.update(zip(names, combo))
            grid.append(point)
        return grid

    def resolved_measures(self) -> list[MeasureSpec]:
        """The measures with template default nodes filled in.

        For template-based transient/AC sweeps, a measure that omits
        ``node=`` acts on the template's registered ``default_node``
        (netlist sweeps keep the last-node fallback of
        :func:`repro.sweep.measures._node_waveform`).
        """
        if self.kind == "ensemble" or self.template is None:
            return self.measures
        default = self.template_info().default_node
        if default is None:
            return self.measures
        return [replace(measure, node=default)
                if measure.node is None else measure
                for measure in self.measures]

    def point_label(self, point: Mapping[str, float]) -> str:
        """Compact ``name=value`` label for one design point."""
        parts = [f"{axis.name}={point[axis.name]:.6g}"
                 for axis in self.axes]
        return " ".join(parts)

    # ------------------------------------------------------------------

    @classmethod
    def from_mapping(cls, spec: Mapping[str, Any],
                     base_dir: str | Path | None = None) -> "SweepSpec":
        """Build a spec from a deserialized TOML/JSON document.

        Schema (TOML)::

            [sweep]                      # all [sweep] keys except base
            name = "inverter-corners"    # are optional
            circuit = "fet_rtd_inverter" # template name, OR:
            netlist = "family.cir"       # path, relative to the spec file
            kind = "transient"           # transient | ensemble | ac |
                                         # pss ("analysis" is an alias)
            mode = "product"             # product | zip
            t_stop = 4e-8                # job settings, per kind
                                         # (AC: f_start/f_stop/n_points/
                                         #  scale/source/bias/dc_options)
            backend = "auto"             # solver backend for every
                                         # point: dense | sparse |
                                         # stack | auto (transient/AC)
            validate = "strict"          # pre-flight lint every point:
                                         # off | warn | strict
            [sweep.options]              # engine options (transient)
            epsilon = 0.05
            [sweep.fixed]                # unswept parameter pins
            vdd = 5.0

            [[axes]]
            name = "load_area"
            start = 1.5
            stop = 3.0
            num = 4                      # or: values = [1.5, 2.0, 3.0]
                                         # scale = "log" for geomspace

            [[measures]]
            kind = "rise_time"           # see repro.sweep.measures
            node = "out"                 # column name defaults to kind

            [batch]                      # optional, as repro.runtime
            workers = 4
            seed = 42
        """
        spec = {k: v for k, v in spec.items()}
        sweep = dict(spec.pop("sweep", {}))
        axes_tables = spec.pop("axes", [])
        measure_tables = spec.pop("measures", [])
        batch = dict(spec.pop("batch", {}))
        if spec:
            raise SweepSpecError(
                f"unknown top-level table(s): {sorted(spec)}")

        if "analysis" in sweep and "kind" in sweep:
            raise SweepSpecError(
                "[sweep] takes kind= or its alias analysis=, not both")
        kind = sweep.pop("analysis", None) or sweep.pop("kind", "transient")
        template = sweep.pop("circuit", None)
        netlist_text = sweep.pop("netlist_text", None)
        netlist_path = sweep.pop("netlist", None)
        if netlist_path is not None:
            if netlist_text is not None:
                raise SweepSpecError(
                    "give netlist= (a path) or netlist_text=, not both")
            path = Path(netlist_path)
            if base_dir is not None and not path.is_absolute():
                path = Path(base_dir) / path
            if not path.exists():
                raise SweepSpecError(f"netlist file not found: {path}")
            netlist_text = path.read_text()

        axes = [ParameterAxis.from_mapping(table) for table in axes_tables]
        measures = measures_from_spec(measure_tables, kind=kind)
        return cls(
            axes=axes,
            kind=kind,
            template=template,
            netlist_text=netlist_text,
            mode=sweep.pop("mode", "product"),
            fixed=dict(sweep.pop("fixed", {})),
            name=sweep.pop("name", "sweep"),
            validate=sweep.pop("validate", "off"),
            settings=sweep,  # the remaining keys are job settings
            measures=measures,
            batch=batch,
        )


def load_sweep_spec(path: str | Path) -> SweepSpec:
    """Load and validate a ``.toml`` or ``.json`` sweep-spec file."""
    path = Path(path)
    if not path.exists():
        raise SweepSpecError(f"sweep-spec file not found: {path}")
    if path.suffix.lower() == ".json":
        document = json.loads(path.read_text())
    elif tomllib is None:
        raise SweepSpecError(
            "TOML sweep specs need Python 3.11+ (tomllib); "
            "use a .json spec on older interpreters")
    else:
        with open(path, "rb") as handle:
            document = tomllib.load(handle)
    if not isinstance(document, dict):
        raise SweepSpecError(
            f"sweep spec must be a table/object, got {type(document)}")
    return SweepSpec.from_mapping(document, base_dir=path.parent)
