"""Tidy sweep results: dict-of-columns with CSV/JSON export.

A :class:`SweepReport` is the "tidy data" view of a finished sweep:
one row per design point, one column per swept parameter, per measure,
and per diagnostic (``ok``, ``error``, ``seconds``).  Columns are plain
Python lists so the report serializes without ceremony; failed points
keep their parameter values and carry ``None`` in measure columns.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AnalysisError


@dataclass
class SweepReport:
    """Aggregated outcome of one parametric sweep.

    Attributes
    ----------
    name:
        The sweep's name (from the spec).
    param_names / measure_names:
        Column grouping: swept parameters vs extracted measures.
    columns:
        Column name -> list of per-point values, in point order.
        Always includes ``index``, ``label``, ``ok``, ``error`` and
        ``seconds`` besides the parameter and measure columns.
    wall_seconds / workers / executor / seed:
        Batch-level execution metadata.
    """

    name: str
    param_names: tuple[str, ...]
    measure_names: tuple[str, ...]
    columns: dict[str, list] = field(default_factory=dict)
    wall_seconds: float = 0.0
    workers: int = 1
    executor: str = "serial"
    seed: int = 0

    # ------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of design points (rows)."""
        return len(self.columns.get("index", ()))

    @property
    def n_ok(self) -> int:
        """Number of points whose simulation and measures succeeded."""
        return sum(1 for ok in self.columns.get("ok", ()) if ok)

    @property
    def n_failed(self) -> int:
        return self.n_points - self.n_ok

    @property
    def ok(self) -> bool:
        """True when every point succeeded."""
        return self.n_failed == 0

    def column(self, name: str) -> list:
        """One column by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise AnalysisError(
                f"no column {name!r} (have: {', '.join(self.columns)})"
            ) from None

    def rows(self) -> list[dict]:
        """Row-oriented view: one dict per design point."""
        names = list(self.columns)
        return [
            {name: self.columns[name][k] for name in names}
            for k in range(self.n_points)
        ]

    def failures(self) -> list[dict]:
        """Rows of the failed points."""
        return [row for row in self.rows() if not row["ok"]]

    def best(self, measure: str, mode: str = "min") -> dict:
        """The successful row minimizing (or maximizing) *measure*."""
        if mode not in ("min", "max"):
            raise AnalysisError(f"mode must be 'min' or 'max', got {mode!r}")
        candidates = [
            row for row in self.rows()
            if row["ok"] and row.get(measure) is not None
        ]
        if not candidates:
            raise AnalysisError(
                f"no successful point carries measure {measure!r}")
        chooser = min if mode == "min" else max
        return chooser(candidates, key=lambda row: row[measure])

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_csv(self, path: str | Path | None = None) -> str:
        """Write the tidy table as CSV; returns the text."""
        buffer = io.StringIO()
        names = list(self.columns)
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(names)
        for k in range(self.n_points):
            writer.writerow([self.columns[name][k] for name in names])
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialize the report (metadata + columns) as JSON."""
        document = {
            "name": self.name,
            "param_names": list(self.param_names),
            "measure_names": list(self.measure_names),
            "n_points": self.n_points,
            "n_ok": self.n_ok,
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "executor": self.executor,
            "seed": self.seed,
            "columns": self.columns,
        }
        text = json.dumps(document, indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        """Rebuild a report from :meth:`to_json` output."""
        document = json.loads(text)
        return cls(
            name=document["name"],
            param_names=tuple(document["param_names"]),
            measure_names=tuple(document["measure_names"]),
            columns=document["columns"],
            wall_seconds=document["wall_seconds"],
            workers=document["workers"],
            executor=document["executor"],
            seed=document["seed"],
        )

    # ------------------------------------------------------------------

    def summary(self, max_rows: int = 20) -> str:
        """Human-readable table of the sweep (down-sampled rows)."""
        header = (
            f"sweep {self.name!r}: {self.n_points} points, "
            f"{self.n_ok} ok, {self.n_failed} failed "
            f"({self.executor}, workers={self.workers}, seed={self.seed}), "
            f"wall {self.wall_seconds:.3f} s"
        )
        names = ["index", *self.param_names, *self.measure_names, "seconds"]
        lines = [header, "  " + " ".join(f"{n:>14}" for n in names)]
        n = self.n_points
        shown = range(n) if n <= max_rows else (
            list(range(max_rows - 1)) + [n - 1])
        for k in shown:
            cells = []
            for name in names:
                value = self.columns[name][k]
                if value is None:
                    cells.append(f"{'FAILED':>14}")
                elif isinstance(value, float):
                    cells.append(f"{value:>14.6g}")
                else:
                    cells.append(f"{value!s:>14}")
            lines.append("  " + " ".join(cells))
        if n > max_rows:
            lines.insert(len(lines) - 1, f"  ... ({n - max_rows} more)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"SweepReport({self.name!r}, points={self.n_points}, "
                f"ok={self.n_ok}, measures={list(self.measure_names)})")
