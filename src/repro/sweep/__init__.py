"""Parametric design-space sweeps over circuit families.

A sweep turns one base design — a registered
:mod:`repro.circuits_lib` template, or a ``.PARAM``/``.SUBCKT``
netlist — plus a parameter grid into a batch of
:class:`~repro.runtime.TransientJob`/:class:`~repro.runtime.EnsembleJob`
runs on the :class:`~repro.runtime.BatchRunner`, reduces each point to
measure scalars inside the worker, and aggregates everything into a
tidy :class:`SweepReport` (dict-of-columns, CSV/JSON export).  Results
are bit-identical at any worker count.

Quick start::

    from repro.sweep import ParameterAxis, SweepSpec, run_sweep
    from repro.sweep.measures import MeasureSpec

    spec = SweepSpec(
        template="rtd_divider",
        settings={"t_stop": 1e-9},
        axes=[ParameterAxis.from_range("resistance", 5.0, 300.0, 12,
                                       scale="log")],
        measures=[MeasureSpec(kind="final", node="out")],
    )
    report = run_sweep(spec, max_workers=4)
    print(report.summary())
    report.to_csv("divider.csv")

Spec files drive the same machinery from the command line
(``python -m repro.sweep spec.toml``); the schema is documented on
:meth:`SweepSpec.from_mapping` and in the README's "Sweeps" section.
"""

from repro.sweep.measures import (
    ENSEMBLE_MEASURES,
    TRANSIENT_MEASURES,
    MeasureSpec,
    measures_from_spec,
)
from repro.sweep.report import SweepReport
from repro.sweep.runner import SweepPointJob, build_jobs, run_sweep
from repro.sweep.spec import ParameterAxis, SweepSpec, load_sweep_spec

__all__ = [
    "ENSEMBLE_MEASURES",
    "MeasureSpec",
    "ParameterAxis",
    "SweepPointJob",
    "SweepReport",
    "SweepSpec",
    "TRANSIENT_MEASURES",
    "build_jobs",
    "load_sweep_spec",
    "measures_from_spec",
    "run_sweep",
]
