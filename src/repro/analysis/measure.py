"""Waveform measurements.

Free functions over ``(times, values)`` arrays.  They are deliberately
tolerant of non-uniform time grids (SWEC's adaptive controller produces
them) — every crossing is located by linear interpolation inside the
bracketing interval.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import AnalysisError


def _as_arrays(times, values) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape or t.ndim != 1:
        raise AnalysisError("times and values must be equal-length 1-D arrays")
    if t.size < 2:
        raise AnalysisError("need at least two samples")
    # A NaN sample makes every comparison below silently false, so a
    # measure would report "no crossing" (or a NaN scalar) instead of
    # flagging the broken waveform.  Fail loudly here instead.
    if not np.all(np.isfinite(v)) or not np.all(np.isfinite(t)):
        raise AnalysisError("waveform contains non-finite samples")
    return t, v


def crossing_times(times, values, level: float,
                   direction: str = "both") -> np.ndarray:
    """Times where the waveform crosses *level*.

    *direction* is ``"rising"``, ``"falling"`` or ``"both"``.  Samples that
    sit exactly on the level count as a crossing of the following segment's
    direction.
    """
    t, v = _as_arrays(times, values)
    if direction not in ("rising", "falling", "both"):
        raise AnalysisError(f"bad direction {direction!r}")
    shifted = v - level
    crossings = []
    # Side of the most recent sample that was NOT exactly on the level;
    # 0 until one is seen.  Runs of samples sitting on the level are
    # thereby transparent: [.., -1, 0, 0, +1, ..] still counts one
    # rising crossing, while touch-and-go ([+1, 0, +1]) counts none.
    last_side = 0.0
    for k in range(len(t) - 1):
        a, b = shifted[k], shifted[k + 1]
        # A segment crosses when it strictly changes side, or departs
        # from the level with the last off-level sample on the opposite
        # side (or no off-level sample yet).  Segments that *end* on the
        # level are deferred to the departing segment.
        rising = a < 0.0 < b or (a == 0.0 and b > 0.0 and last_side <= 0.0)
        falling = a > 0.0 > b or (a == 0.0 and b < 0.0 and last_side >= 0.0)
        matched = (rising if direction == "rising" else
                   falling if direction == "falling" else
                   rising or falling)
        if matched:
            t_cross = t[k] + (t[k + 1] - t[k]) * (-a) / (b - a)
            crossings.append(t_cross)
        if a != 0.0:
            last_side = math.copysign(1.0, a)
    return np.array(crossings)


def rise_time(times, values, low_frac: float = 0.1,
              high_frac: float = 0.9) -> float:
    """10%-90% (by default) rise time of the first low-to-high transition."""
    t, v = _as_arrays(times, values)
    lo, hi = float(v.min()), float(v.max())
    if hi <= lo:
        raise AnalysisError("waveform is constant; no rise time")
    level_lo = lo + low_frac * (hi - lo)
    level_hi = lo + high_frac * (hi - lo)
    starts = crossing_times(t, v, level_lo, "rising")
    ends = crossing_times(t, v, level_hi, "rising")
    if starts.size == 0 or ends.size == 0:
        raise AnalysisError("no complete rising transition found")
    start = starts[0]
    later = ends[ends > start]
    if later.size == 0:
        raise AnalysisError("rising edge never completes")
    return float(later[0] - start)


def fall_time(times, values, high_frac: float = 0.9,
              low_frac: float = 0.1) -> float:
    """90%-10% (by default) fall time of the first high-to-low transition."""
    t, v = _as_arrays(times, values)
    return rise_time(t, -v, 1.0 - high_frac, 1.0 - low_frac)


def delay_between(times_a, values_a, times_b, values_b,
                  level_a: float, level_b: float,
                  edge_a: str = "rising", edge_b: str = "rising") -> float:
    """Delay from the first *edge_a* crossing of waveform A to the first
    *edge_b* crossing of waveform B occurring at or after it."""
    t_a = crossing_times(times_a, values_a, level_a, edge_a)
    if t_a.size == 0:
        raise AnalysisError("waveform A never crosses its level")
    t_b = crossing_times(times_b, values_b, level_b, edge_b)
    after = t_b[t_b >= t_a[0]]
    if after.size == 0:
        raise AnalysisError("waveform B never crosses after A's edge")
    return float(after[0] - t_a[0])


def peak_value(times, values, t_start: float = None,
               t_stop: float = None) -> tuple[float, float]:
    """``(t_peak, v_peak)`` of the maximum inside the given window."""
    t, v = _as_arrays(times, values)
    mask = np.ones(t.shape, dtype=bool)
    if t_start is not None:
        mask &= t >= t_start
    if t_stop is not None:
        mask &= t <= t_stop
    if not mask.any():
        raise AnalysisError("window contains no samples")
    window_t, window_v = t[mask], v[mask]
    k = int(np.argmax(window_v))
    return float(window_t[k]), float(window_v[k])


def overshoot(times, values, final_value: float = None) -> float:
    """Fractional overshoot above the settled value.

    ``final_value`` defaults to the last sample.
    """
    t, v = _as_arrays(times, values)
    final = float(v[-1]) if final_value is None else float(final_value)
    swing = final - float(v[0])
    if swing == 0.0:
        raise AnalysisError("zero swing; overshoot undefined")
    peak = float(v.max()) if swing > 0.0 else float(v.min())
    return max(0.0, (peak - final) / abs(swing))


def settling_time(times, values, tolerance: float = 0.02,
                  final_value: float = None) -> float:
    """Time after which the waveform stays within *tolerance* (fractional,
    relative to total swing) of the settled value."""
    t, v = _as_arrays(times, values)
    final = float(v[-1]) if final_value is None else float(final_value)
    swing = abs(final - float(v[0]))
    if swing == 0.0:
        return float(t[0])
    band = tolerance * swing
    outside = np.abs(v - final) > band
    if not outside.any():
        return float(t[0])
    last_outside = int(np.nonzero(outside)[0][-1])
    if last_outside + 1 >= len(t):
        raise AnalysisError("waveform never settles within tolerance")
    return float(t[last_outside + 1])


def logic_level(times, values, t_sample: float, v_low: float,
                v_high: float) -> int:
    """Interpret the waveform as a logic value at *t_sample*.

    Returns 0 or 1; raises when the sampled voltage is in the forbidden
    middle band (``> v_low`` and ``< v_high``).
    """
    t, v = _as_arrays(times, values)
    if t_sample < t[0] or t_sample > t[-1]:
        raise AnalysisError(f"sample time {t_sample} outside waveform")
    sampled = float(np.interp(t_sample, t, v))
    if sampled <= v_low:
        return 0
    if sampled >= v_high:
        return 1
    raise AnalysisError(
        f"voltage {sampled:.4g} at t={t_sample:.4g} is between logic levels "
        f"({v_low:.4g}, {v_high:.4g})")
