"""Plotless reporting: ASCII waveform plots and CSV export.

The library runs in headless environments (CI, paper-reproduction
containers), so the examples and benches render waveforms as terminal
plots and dump raw data as CSV for external plotting.  Nothing here
depends on matplotlib.
"""

from __future__ import annotations

import io

import numpy as np

from repro.errors import AnalysisError
from repro.units import format_value


def ascii_plot(times, values, width: int = 72, height: int = 16,
               title: str = "", y_label: str = "V") -> str:
    """Render one waveform as an ASCII chart.

    >>> text = ascii_plot([0, 1, 2], [0.0, 1.0, 0.0], width=20, height=5)
    >>> "*" in text
    True
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape or t.ndim != 1 or t.size < 2:
        raise AnalysisError("need equal-length 1-D arrays of >= 2 samples")
    if width < 16 or height < 4:
        raise AnalysisError("plot area too small")
    v_lo, v_hi = float(v.min()), float(v.max())
    if v_hi == v_lo:
        v_hi = v_lo + 1.0
    # resample onto the character grid
    grid_t = np.linspace(t[0], t[-1], width)
    grid_v = np.interp(grid_t, t, v)
    rows = np.clip(((grid_v - v_lo) / (v_hi - v_lo)
                    * (height - 1)).round().astype(int), 0, height - 1)
    canvas = [[" "] * width for _ in range(height)]
    for column, row in enumerate(rows):
        canvas[height - 1 - row][column] = "*"
    lines = []
    if title:
        lines.append(title)
    top_label = format_value(v_hi, y_label)
    bottom_label = format_value(v_lo, y_label)
    label_width = max(len(top_label), len(bottom_label))
    for k, row_chars in enumerate(canvas):
        if k == 0:
            label = top_label.rjust(label_width)
        elif k == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row_chars)}")
    axis = (f"{' ' * label_width} +{'-' * width}")
    lines.append(axis)
    lines.append(f"{' ' * label_width}  {format_value(t[0], 's')}"
                 f"{format_value(t[-1], 's').rjust(width - 8)}")
    return "\n".join(lines)


def ascii_plot_result(result, nodes, width: int = 72,
                      height: int = 12) -> str:
    """ASCII-plot several nodes of a transient result, stacked."""
    sections = []
    for node in nodes:
        sections.append(ascii_plot(result.times, result.voltage(node),
                                   width=width, height=height,
                                   title=f"node {node!r} [{result.engine}]"))
    return "\n\n".join(sections)


def to_csv(result, nodes=None) -> str:
    """Serialize a transient result to CSV text (time + node columns)."""
    nodes = list(result.node_names if nodes is None else nodes)
    buffer = io.StringIO()
    buffer.write(",".join(["time"] + nodes) + "\n")
    columns = [result.voltage(node) for node in nodes]
    for k, t in enumerate(result.times):
        row = [f"{t:.9e}"] + [f"{column[k]:.9e}" for column in columns]
        buffer.write(",".join(row) + "\n")
    return buffer.getvalue()


def sweep_to_csv(result, nodes=None) -> str:
    """Serialize a DC sweep result to CSV text."""
    nodes = list(result.node_names if nodes is None else nodes)
    buffer = io.StringIO()
    buffer.write(",".join([result.source_name] + nodes) + "\n")
    columns = [result.voltage(node) for node in nodes]
    for k, value in enumerate(result.sweep_values):
        row = [f"{value:.9e}"] + [f"{column[k]:.9e}" for column in columns]
        buffer.write(",".join(row) + "\n")
    return buffer.getvalue()


def from_csv(text: str):
    """Parse :func:`to_csv` output back into ``(header, array)``."""
    lines = [line for line in text.strip().splitlines() if line]
    if len(lines) < 2:
        raise AnalysisError("CSV needs a header and at least one row")
    header = lines[0].split(",")
    data = np.array([[float(cell) for cell in line.split(",")]
                     for line in lines[1:]])
    if data.shape[1] != len(header):
        raise AnalysisError("CSV rows do not match the header")
    return header, data
