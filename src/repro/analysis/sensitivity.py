"""Device-parameter sensitivity analysis.

Nanodevice parameters are uncertain (the paper's "potentialities"), so a
designer needs to know how the RTD landmarks — peak/valley voltage and
current, peak-to-valley ratio — move with each Schulman parameter.  This
module provides one-at-a-time relative sensitivities and full parameter
sweeps, which the ablation benches tabulate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.devices.rtd import SchulmanParameters, SchulmanRTD
from repro.errors import AnalysisError

#: Parameters that can be perturbed by name.
TUNABLE = ("a", "b", "c", "d", "n1", "n2", "h")


@dataclass(frozen=True)
class RtdLandmarks:
    """The figure-of-merit set of one RTD parameterization."""

    v_peak: float
    i_peak: float
    v_valley: float
    i_valley: float

    @property
    def pvr(self) -> float:
        """Peak-to-valley current ratio."""
        return self.i_peak / self.i_valley

    @property
    def ndr_width(self) -> float:
        """Voltage extent of the NDR region."""
        return self.v_valley - self.v_peak


def landmarks(parameters: SchulmanParameters) -> RtdLandmarks:
    """Extract peak/valley landmarks of a parameter set."""
    rtd = SchulmanRTD(parameters)
    v_peak, i_peak = rtd.peak()
    v_valley, i_valley = rtd.valley()
    return RtdLandmarks(v_peak, i_peak, v_valley, i_valley)


def perturb(parameters: SchulmanParameters, name: str,
            factor: float) -> SchulmanParameters:
    """Return a copy with parameter *name* multiplied by *factor*."""
    if name not in TUNABLE:
        raise AnalysisError(
            f"unknown parameter {name!r}; tunable: {TUNABLE}")
    if factor <= 0.0:
        raise AnalysisError(f"factor must be positive, got {factor!r}")
    return replace(parameters, **{name: getattr(parameters, name) * factor})


def relative_sensitivity(parameters: SchulmanParameters, name: str,
                         quantity: str = "v_peak",
                         step: float = 0.01) -> float:
    """Logarithmic sensitivity ``d ln(quantity) / d ln(parameter)``.

    Central-difference estimate with a +/- *step* relative perturbation.
    ``quantity`` is any :class:`RtdLandmarks` attribute or property.
    """
    up = landmarks(perturb(parameters, name, 1.0 + step))
    down = landmarks(perturb(parameters, name, 1.0 - step))
    value_up = getattr(up, quantity)
    value_down = getattr(down, quantity)
    if value_up <= 0.0 or value_down <= 0.0:
        raise AnalysisError(f"{quantity} must stay positive")
    return float((np.log(value_up) - np.log(value_down))
                 / (np.log(1.0 + step) - np.log(1.0 - step)))


def sensitivity_table(parameters: SchulmanParameters,
                      quantities=("v_peak", "i_peak", "pvr"),
                      step: float = 0.01) -> dict[str, dict[str, float]]:
    """Full one-at-a-time sensitivity table: parameter -> quantity -> S."""
    table: dict[str, dict[str, float]] = {}
    for name in TUNABLE:
        row = {}
        for quantity in quantities:
            try:
                row[quantity] = relative_sensitivity(
                    parameters, name, quantity, step)
            except (AnalysisError, ValueError):
                row[quantity] = float("nan")
        table[name] = row
    return table


def parameter_sweep(parameters: SchulmanParameters, name: str,
                    factors, quantity: str = "v_peak") -> np.ndarray:
    """Landmark *quantity* across multiplicative *factors* of *name*."""
    values = []
    for factor in factors:
        marks = landmarks(perturb(parameters, name, float(factor)))
        values.append(getattr(marks, quantity))
    return np.array(values)
