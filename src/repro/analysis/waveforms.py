"""Transient result container.

A :class:`TransientResult` stores the accepted time points and state
vectors of a transient run together with engine diagnostics (step counts,
convergence failures, flop counter).  Engines append rows during the march;
the container handles interpolation and per-node access.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import AnalysisError
from repro.perf.flops import FlopCounter


class TransientResult:
    """Time-domain simulation result.

    Parameters
    ----------
    node_names:
        Non-ground node names, in MNA order.
    engine:
        Name of the engine that produced the result (for reports).
    """

    def __init__(self, node_names, engine: str = "unknown") -> None:
        self.node_names = tuple(node_names)
        self.engine = engine
        self._times: list[float] = []
        self._states: list[np.ndarray] = []
        self.flops = FlopCounter()
        self.accepted_steps = 0
        self.rejected_steps = 0
        self.convergence_failures = 0
        #: Per-accepted-point Newton iteration counts (empty for SWEC).
        self.iteration_counts: list[int] = []
        #: Factorizations skipped by the reuse cache (SWEC
        #: ``factor_rtol`` knob; 0 when the cache is disabled).
        self.factor_reuses = 0
        #: True when the engine gave up before reaching t_stop.
        self.aborted = False
        self.abort_reason: str | None = None

    # ------------------------------------------------------------------
    # Construction (used by engines)
    # ------------------------------------------------------------------

    def append(self, t: float, state: np.ndarray) -> None:
        """Record an accepted time point."""
        if self._times and t <= self._times[-1]:
            raise AnalysisError(
                f"non-monotonic time points: {t} after {self._times[-1]}")
        self._times.append(float(t))
        self._states.append(np.array(state, dtype=float, copy=True))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        """Accepted time points as an array."""
        return np.array(self._times)

    @property
    def states(self) -> np.ndarray:
        """State matrix, one row per accepted time point."""
        if not self._states:
            return np.zeros((0, len(self.node_names)))
        return np.vstack(self._states)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def t_final(self) -> float:
        """Last accepted time."""
        if not self._times:
            raise AnalysisError("empty transient result")
        return self._times[-1]

    def _node_column(self, node: str) -> int:
        try:
            return self.node_names.index(node)
        except ValueError:
            raise AnalysisError(
                f"node {node!r} not in result (have {self.node_names})"
            ) from None

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of *node*'s voltage over the accepted time points."""
        column = self._node_column(node)
        return self.states[:, column]

    def at(self, t: float, node: str) -> float:
        """Linearly interpolated voltage of *node* at time *t*.

        Times within a relative 1e-6 of the simulated range are clamped —
        adaptive marches accumulate last-step roundoff.
        """
        if not self._times:
            raise AnalysisError("empty transient result")
        slack = 1e-6 * max(abs(self._times[-1]), abs(self._times[0]))
        if self._times[-1] < t <= self._times[-1] + slack:
            t = self._times[-1]
        if self._times[0] - slack <= t < self._times[0]:
            t = self._times[0]
        if t < self._times[0] or t > self._times[-1]:
            raise AnalysisError(
                f"time {t} outside simulated range "
                f"[{self._times[0]}, {self._times[-1]}]")
        column = self._node_column(node)
        idx = bisect.bisect_left(self._times, t)
        if idx < len(self._times) and self._times[idx] == t:
            return float(self._states[idx][column])
        t0, t1 = self._times[idx - 1], self._times[idx]
        v0 = self._states[idx - 1][column]
        v1 = self._states[idx][column]
        return float(v0 + (v1 - v0) * (t - t0) / (t1 - t0))

    def resample(self, times: np.ndarray, node: str) -> np.ndarray:
        """Voltage of *node* interpolated onto a uniform grid *times*."""
        return np.interp(times, self.times, self.voltage(node))

    def final_voltages(self) -> dict[str, float]:
        """Node -> voltage at the last accepted time point."""
        if not self._states:
            raise AnalysisError("empty transient result")
        last = self._states[-1]
        return {name: float(last[k]) for k, name in enumerate(self.node_names)}

    def step_sizes(self) -> np.ndarray:
        """Accepted step sizes ``h_n = t_{n+1} - t_n``."""
        return np.diff(self.times)

    def summary(self) -> str:
        """One-paragraph diagnostic summary."""
        lines = [
            f"engine={self.engine} points={len(self)} "
            f"t_final={self._times[-1] if self._times else 0.0:.4g}",
            f"steps: accepted={self.accepted_steps} "
            f"rejected={self.rejected_steps} "
            f"convergence_failures={self.convergence_failures}",
        ]
        if self.iteration_counts:
            counts = np.array(self.iteration_counts)
            lines.append(
                f"newton iterations/point: mean={counts.mean():.2f} "
                f"max={counts.max()}")
        if self.aborted:
            lines.append(f"ABORTED: {self.abort_reason}")
        lines.append(f"flops={self.flops.total:,}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"TransientResult(engine={self.engine!r}, points={len(self)}, "
                f"nodes={len(self.node_names)})")


class EnsembleTransientResult:
    """Time-domain result of a lockstep ensemble march.

    Stores the shared accepted time grid and the ``(K, n)`` state
    stack per point.  Per-instance access mirrors
    :class:`TransientResult`: :meth:`voltage` returns a ``(K, T)``
    waveform block and :meth:`instance` materializes one instance as a
    plain ``TransientResult`` (with an *empty* flop counter — the
    ensemble-level :attr:`flops` counts the whole batch and does not
    split into integer per-instance shares).
    """

    def __init__(self, node_names, n_instances: int,
                 engine: str = "swec-ensemble") -> None:
        self.node_names = tuple(node_names)
        self.n_instances = int(n_instances)
        self.engine = engine
        self._times: list[float] = []
        self._states: list[np.ndarray] = []
        self.flops = FlopCounter()
        self.accepted_steps = 0
        self.rejected_steps = 0
        self.aborted = False
        self.abort_reason: str | None = None
        #: Factorizations skipped by the backend's reuse cache
        #: (``factor_rtol``; 0 when caching is disabled or unsupported).
        self.factor_reuses = 0
        #: Name of the solver backend that marched this result.
        self.backend: str | None = None
        #: instance index -> ``[(t, device_g_row), ...]`` for the
        #: instances named in ``trace_instances``.
        self.conductance_trace: dict[int, list] = {}

    # ------------------------------------------------------------------

    def append(self, t: float, states: np.ndarray) -> None:
        """Record an accepted time point for all instances at once."""
        if self._times and t <= self._times[-1]:
            raise AnalysisError(
                f"non-monotonic time points: {t} after {self._times[-1]}")
        self._times.append(float(t))
        self._states.append(np.array(states, dtype=float, copy=True))

    # ------------------------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        """Shared accepted time points."""
        return np.array(self._times)

    @property
    def states(self) -> np.ndarray:
        """``(K, T, n)`` state stack over the shared grid."""
        if not self._states:
            return np.zeros((self.n_instances, 0, len(self.node_names)))
        return np.stack(self._states, axis=1)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def t_final(self) -> float:
        """Last accepted time."""
        if not self._times:
            raise AnalysisError("empty ensemble result")
        return self._times[-1]

    def _node_column(self, node: str) -> int:
        try:
            return self.node_names.index(node)
        except ValueError:
            raise AnalysisError(
                f"node {node!r} not in result (have {self.node_names})"
            ) from None

    def voltage(self, node: str) -> np.ndarray:
        """``(K, T)`` voltage waveforms of *node*, one row per instance."""
        column = self._node_column(node)
        return self.states[:, :, column]

    def final_voltages(self) -> dict[str, np.ndarray]:
        """Node name -> ``(K,)`` voltages at the last accepted point."""
        if not self._states:
            raise AnalysisError("empty ensemble result")
        last = self._states[-1]
        return {name: last[:, k].copy()
                for k, name in enumerate(self.node_names)}

    def instance(self, k: int) -> TransientResult:
        """Materialize instance *k* as a scalar ``TransientResult``."""
        if not 0 <= k < self.n_instances:
            raise AnalysisError(
                f"instance index {k} out of range [0, {self.n_instances})")
        result = TransientResult(self.node_names, engine=self.engine)
        for t, row in zip(self._times, self._states):
            result.append(t, row[k])
        result.accepted_steps = self.accepted_steps
        result.rejected_steps = self.rejected_steps
        result.aborted = self.aborted
        result.abort_reason = self.abort_reason
        if k in self.conductance_trace:
            result.conductance_trace = [  # type: ignore[attr-defined]
                (t, g.copy()) for t, g in self.conductance_trace[k]]
        return result

    def summary(self) -> str:
        """One-paragraph diagnostic summary."""
        lines = [
            f"engine={self.engine} instances={self.n_instances} "
            f"points={len(self)} "
            f"t_final={self._times[-1] if self._times else 0.0:.4g}",
            f"steps: accepted={self.accepted_steps} "
            f"rejected={self.rejected_steps}",
        ]
        if self.backend is not None:
            lines.append(f"backend={self.backend}")
        if self.aborted:
            lines.append(f"ABORTED: {self.abort_reason}")
        lines.append(f"flops={self.flops.total:,}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"EnsembleTransientResult(instances={self.n_instances}, "
                f"points={len(self)}, nodes={len(self.node_names)})")
