"""Result containers and waveform measurements.

Engines return :class:`~repro.analysis.waveforms.TransientResult` or
:class:`~repro.analysis.dcsweep.DCSweepResult`;
:mod:`repro.analysis.measure` extracts the quantities the paper's figures
report (edges, delays, peaks, logic levels).
"""

from repro.analysis.dcsweep import DCSweepResult
from repro.analysis.measure import (
    crossing_times,
    delay_between,
    fall_time,
    logic_level,
    overshoot,
    peak_value,
    rise_time,
    settling_time,
)
from repro.analysis.report import (
    ascii_plot,
    ascii_plot_result,
    from_csv,
    sweep_to_csv,
    to_csv,
)
from repro.analysis.sensitivity import (
    landmarks,
    parameter_sweep,
    relative_sensitivity,
    sensitivity_table,
)
from repro.analysis.waveforms import EnsembleTransientResult, TransientResult

__all__ = [
    "DCSweepResult",
    "EnsembleTransientResult",
    "TransientResult",
    "ascii_plot",
    "ascii_plot_result",
    "from_csv",
    "landmarks",
    "parameter_sweep",
    "relative_sensitivity",
    "sensitivity_table",
    "sweep_to_csv",
    "to_csv",
    "crossing_times",
    "delay_between",
    "fall_time",
    "logic_level",
    "overshoot",
    "peak_value",
    "rise_time",
    "settling_time",
]
