"""DC sweep result container.

Stores the solved state for each source value of a DC sweep, plus per-point
solver diagnostics (iteration counts, convergence flags) so the Table I
comparison can report iterations alongside flops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError
from repro.perf.flops import FlopCounter


class DCSweepResult:
    """Result of sweeping one source over a list of values."""

    def __init__(self, node_names, source_name: str,
                 engine: str = "unknown") -> None:
        self.node_names = tuple(node_names)
        self.source_name = source_name
        self.engine = engine
        self._values: list[float] = []
        self._states: list[np.ndarray] = []
        self.iteration_counts: list[int] = []
        self.converged_flags: list[bool] = []
        self.flops = FlopCounter()

    def append(self, value: float, state: np.ndarray, iterations: int,
               converged: bool) -> None:
        """Record one solved sweep point."""
        self._values.append(float(value))
        self._states.append(np.array(state, dtype=float, copy=True))
        self.iteration_counts.append(int(iterations))
        self.converged_flags.append(bool(converged))

    # ------------------------------------------------------------------

    @property
    def sweep_values(self) -> np.ndarray:
        """Swept source values."""
        return np.array(self._values)

    @property
    def states(self) -> np.ndarray:
        """State matrix, one row per sweep point."""
        if not self._states:
            raise AnalysisError("empty sweep result")
        return np.vstack(self._states)

    def __len__(self) -> int:
        return len(self._values)

    def voltage(self, node: str) -> np.ndarray:
        """Node voltage versus sweep value."""
        try:
            column = self.node_names.index(node)
        except ValueError:
            raise AnalysisError(
                f"node {node!r} not in result (have {self.node_names})"
            ) from None
        return self.states[:, column]

    def branch_voltage(self, node_a: str, node_b: str) -> np.ndarray:
        """``V(node_a) - V(node_b)`` versus sweep value (ground = 0)."""
        def column(node: str) -> np.ndarray:
            if node in ("0", "gnd", "GND", "ground"):
                return np.zeros(len(self))
            return self.voltage(node)
        return column(node_a) - column(node_b)

    @property
    def all_converged(self) -> bool:
        """True when every sweep point converged."""
        return all(self.converged_flags)

    @property
    def total_iterations(self) -> int:
        """Sum of solver iterations over the sweep."""
        return sum(self.iteration_counts)

    def summary(self) -> str:
        """One-paragraph diagnostic summary."""
        return (
            f"engine={self.engine} source={self.source_name} "
            f"points={len(self)} iterations={self.total_iterations} "
            f"converged={sum(self.converged_flags)}/{len(self)} "
            f"flops={self.flops.total:,}")

    def __repr__(self) -> str:
        return (f"DCSweepResult(engine={self.engine!r}, "
                f"source={self.source_name!r}, points={len(self)})")
