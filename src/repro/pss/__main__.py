"""``python -m repro.pss`` dispatch."""

from repro.pss.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
