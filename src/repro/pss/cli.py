"""Command-line entry point: ``python -m repro.pss``.

Mirrors the AC CLI: the circuit comes from a netlist file or a
registered :mod:`repro.circuits_lib` template, the analysis mode from
``--period`` (driven) / ``--period-guess`` (autonomous) or the
auto-detected source period, and the output is a convergence summary,
the leading harmonics and a down-sampled one-period waveform table::

    python -m repro.pss --template rtd_relaxation_oscillator \\
        --period-guess 6.3e-10 --node out
    python -m repro.pss clocked.cir --steps 200 --json

Exit status 0 on success, 2 on a configuration or convergence error.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.errors import NanoSimError


def _key_value(text: str) -> tuple[str, float]:
    """Parse one ``name=value`` CLI item."""
    name, separator, value = text.partition("=")
    if not separator or not name:
        raise argparse.ArgumentTypeError(
            f"expected name=value, got {text!r}")
    try:
        return name, float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{name!r}: non-numeric value {value!r}") from None


def _downsample(count: int, max_rows: int) -> np.ndarray:
    return np.unique(np.linspace(0, count - 1, max_rows).astype(int))


def _print_summary(orbit, node: str) -> None:
    print(f"periodic steady state ({orbit.mode}, "
          f"backend {orbit.backend}):")
    print(f"  period        {orbit.period:.6e} s")
    print(f"  frequency     {orbit.frequency:.6e} Hz")
    print(f"  iterations    {orbit.iterations}")
    print(f"  residual      {orbit.residual:.3e}")
    if orbit.phase_node is not None:
        print(f"  phase node    {orbit.phase_node}")
    print(f"\nmeasures at {node!r}:")
    print(f"  mean          {orbit.mean(node):.6g} V")
    print(f"  amplitude     {orbit.amplitude(node):.6g} V")
    print(f"  peak-to-peak  {orbit.peak_to_peak(node):.6g} V")
    order_cap = min(6, len(orbit) // 2)
    for order in range(1, order_cap):
        print(f"  |harmonic {order}|  "
              f"{orbit.harmonic_magnitude(node, order):.6g} V")


def _print_waveform(orbit, node: str, max_rows: int) -> None:
    print(f"\none period of V({node}) ({len(orbit)} points):")
    print(f"  {'t s':>12} {'V':>12}")
    voltage = orbit.voltage(node)
    for k in _downsample(len(orbit), max_rows):
        print(f"  {orbit.times[k]:>12.5g} {voltage[k]:>12.6g}")


def _json_payload(orbit, node: str) -> dict:
    return {
        "mode": orbit.mode,
        "backend": orbit.backend,
        "period": orbit.period,
        "frequency": orbit.frequency,
        "iterations": orbit.iterations,
        "residual": orbit.residual,
        "residual_history": list(orbit.residual_history),
        "phase_node": orbit.phase_node,
        "node": node,
        "mean": orbit.mean(node),
        "amplitude": orbit.amplitude(node),
        "peak_to_peak": orbit.peak_to_peak(node),
        "harmonics": [orbit.harmonic_magnitude(node, order)
                      for order in range(1, min(6, len(orbit) // 2))],
        "flops": orbit.flops.total,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pss",
        description="Periodic steady-state (shooting-Newton) analysis.",
    )
    parser.add_argument("netlist", nargs="?", default=None,
                        help="netlist file (or use --template)")
    parser.add_argument("--template", default=None,
                        help="registered circuits_lib template name")
    parser.add_argument("--param", action="append", type=_key_value,
                        default=[], metavar="NAME=VALUE",
                        help="template/netlist parameter override "
                             "(repeatable)")
    parser.add_argument("--period", type=float, default=None,
                        help="drive period in seconds (driven mode; "
                             "default: auto-detect from the sources)")
    parser.add_argument("--period-guess", type=float, default=None,
                        help="rough period in seconds (autonomous "
                             "mode, free-running oscillators)")
    parser.add_argument("--steps", type=int, default=400,
                        help="uniform steps per period (default 400)")
    parser.add_argument("--tol", type=float, default=1e-9,
                        help="periodicity tolerance on max|x(T)-x(0)| "
                             "(default 1e-9)")
    parser.add_argument("--max-iter", type=int, default=10,
                        help="Newton iteration cap (default 10)")
    parser.add_argument("--phase-node", default=None,
                        help="node pinned by the autonomous phase "
                             "condition (default: largest swing)")
    parser.add_argument("--node", default=None,
                        help="observed node (default: last node)")
    from repro.core.backends import available_backends

    parser.add_argument("--backend", default=None,
                        choices=available_backends(),
                        help="solver backend for the shooting marches")
    parser.add_argument("--validate", default="off",
                        choices=("off", "warn", "strict"),
                        help="pre-flight lint gating (default off)")
    parser.add_argument("--json", action="store_true",
                        help="print a JSON summary instead of tables")
    parser.add_argument("--rows", type=int, default=15,
                        help="waveform rows to print (default 15)")
    args = parser.parse_args(argv)

    if args.netlist is not None and args.template is not None:
        parser.error("give a netlist file or --template, not both")
    if args.netlist is None and args.template is None:
        parser.error("a netlist file (or --template) is required")

    from pathlib import Path

    from repro.runtime.jobs import PSSJob

    try:
        period_guess = args.period_guess
        node = args.node
        params = dict(args.param)
        if args.template is not None:
            from repro.circuits_lib.templates import TEMPLATES

            template = TEMPLATES.get(args.template)
            if template is not None:
                params = template.coerce(params)
                if node is None:
                    node = template.default_node
        job = PSSJob(
            builder=args.template,
            netlist=(None if args.netlist is None
                     else Path(args.netlist).read_text()),
            params=params,
            period=args.period,
            period_guess=period_guess,
            steps_per_period=args.steps,
            tolerance=args.tol,
            max_iterations=args.max_iter,
            phase_node=args.phase_node,
            backend=args.backend,
            validate=args.validate,
        )
        orbit = job.run()
        if node is None:
            node = orbit.node_names[-1]
        if args.json:
            print(json.dumps(_json_payload(orbit, node), indent=2))
        else:
            _print_summary(orbit, node)
            _print_waveform(orbit, node, args.rows)
    except (NanoSimError, OSError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0
