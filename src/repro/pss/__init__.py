"""Periodic steady-state analysis by the shooting-Newton method.

Transient marching finds a periodic orbit the slow way: integrate until
the transients die out, which for a high-Q or slowly-contracting
circuit means tens to hundreds of periods.  Shooting instead treats one
marched period as a map and Newton-solves for its fixed point, using a
monodromy matrix assembled from the same per-element linearization the
AC analysis uses — typically 3 iterations on the RTD relaxation
oscillator, 5-7x cheaper than the brute-force march, with the residual
``max|x(T) - x(0)|`` certified below tolerance.

* :func:`run_pss` / :class:`ShootingPSS` — the engine, driven
  (fixed/auto-detected period) or autonomous (period is an unknown,
  pinned by a phase condition);
* :class:`PSSOptions` — tolerances, grid density, settle horizon;
* :class:`PSSResult` — one closing period plus harmonic/amplitude/
  period accessors;
* :func:`detect_drive_period` — the source-waveform period scan used
  by driven mode.

Quick start::

    from repro.circuits_lib import rtd_relaxation_oscillator
    from repro.pss import run_pss

    circuit, info = rtd_relaxation_oscillator()
    orbit = run_pss(circuit, period_guess=info.period_guess)
    print(orbit.period, orbit.iterations, orbit.residual)

``python -m repro.pss`` (or the ``repro-pss`` script) drives the same
machinery from the command line; :class:`~repro.runtime.PSSJob` and
sweep specs with ``analysis = "pss"`` run it on the batch runtime.
"""

from repro.pss.engine import (
    PSSOptions,
    PSSResult,
    ShootingPSS,
    detect_drive_period,
    run_pss,
)

__all__ = [
    "PSSOptions",
    "PSSResult",
    "ShootingPSS",
    "detect_drive_period",
    "run_pss",
]
