"""Shooting-Newton periodic steady-state on the SWEC march.

The shooting method treats one marched period as a map: ``Phi(x0)``
integrates the circuit from state ``x0`` over ``[0, T]`` on a fixed
``steps_per_period`` backward-Euler grid (the existing
:class:`~repro.swec.SwecTransient` march, any solver backend) and
returns the endpoint.  A periodic steady state is a fixed point
``Phi(x*) = x*``; Newton's method on the residual ``r = Phi(x0) - x0``
needs the sensitivity ``M = dPhi/dx0`` — the monodromy matrix.

``M`` is accumulated exactly, step by step, by differentiating the
marched update itself.  Each BE step solved

.. math:: A_n x_{n+1} = b(t_{n+1}) + (C/h)\\,x_n,
          \\qquad A_n = G_{base} + G_{chord}(x_n) + C/h,

so ``dx_{n+1}/dx_n = A_n^{-1} (C/h - D_n)`` where ``D_n`` collects the
state dependence of the chord stamps: a two-terminal device stamped
``g_{ch}(v_n) w_{n+1}`` contributes ``g_{ch}'(v_n) w_{n+1}``, and the
chord/tangent identity ``g_{ch}'(v)\\,v = dI/dV - g_{ch}`` ties that
correction to the AC linearization machinery
(:func:`repro.ac.linearize.tangent_conductances`).  The result is a
Jacobian consistent with the *discretized* map to machine precision,
which is what gives quadratic convergence — typically 3 iterations on
the RTD relaxation oscillator.

Two modes:

* **driven** — the period is imposed by the sources (or ``period=``);
  plain Newton ``(M - I) d = -r``.  Linear circuits converge in one
  iteration.
* **autonomous** — free-running oscillators have no imposed period and
  a translation-invariant orbit, so ``T`` joins the unknowns and a
  phase condition pins one state component: the augmented system

  .. math:: \\begin{pmatrix} M - I & f_T \\\\ e_k^\\top & 0
            \\end{pmatrix}
            \\begin{pmatrix} d \\\\ dT \\end{pmatrix}
            = \\begin{pmatrix} -r \\\\ 0 \\end{pmatrix}

  with ``f_T`` the endpoint state velocity.  The initial guess comes
  from a short adaptive settle march plus a level-crossing period
  estimate, refined on the fixed grid.

The converged orbit satisfies ``max|x(T) - x(0)| < tolerance`` on the
discrete map; anything less raises :class:`~repro.errors.PSSError`
(converged-or-raised, never silently wrong).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Mapping

import numpy as np

from repro.analysis.measure import crossing_times
from repro.circuit.netlist import Circuit
from repro.circuit.sources import Pulse, Sine
from repro.errors import AnalysisError, PSSError
from repro.perf.flops import FlopCounter

__all__ = [
    "PSSOptions",
    "PSSResult",
    "ShootingPSS",
    "detect_drive_period",
    "run_pss",
]

#: Branch voltages smaller than this skip the chord-derivative
#: correction (the chord tends to the tangent there, so the correction
#: term ``(dI/dV - g_ch)/v`` is a removable 0/0).
_V_EPS = 1e-12


@dataclass
class PSSOptions:
    """Tunables for the shooting analysis.

    Attributes
    ----------
    period:
        Fixed drive period for a driven circuit.  ``None`` auto-detects
        it from the periodic source waveforms; if none exist the
        circuit is treated as autonomous (which then needs
        ``period_guess``).
    period_guess:
        Rough period scale of an autonomous oscillator — it only sets
        the settle horizon and the crossing-detection window, so a
        factor-of-two error is harmless.  Implies autonomous mode.
    steps_per_period:
        Uniform BE steps per period.  The converged orbit is the fixed
        point of *this* grid's map; oracle comparisons must march the
        same grid.
    tolerance:
        Convergence threshold on ``max|x(T) - x(0)|``.
    max_iterations:
        Newton iteration cap; exceeding it raises
        :class:`~repro.errors.PSSError`.
    phase_node:
        Node whose state component is pinned by the autonomous phase
        condition (default: the largest-swing node of the settle tail).
    settle_periods:
        Autonomous settle horizon, in units of ``period_guess``.
    refine_periods:
        Fixed-grid periods marched after the settle to refine the
        period estimate and the starting state.
    swec:
        March options (:class:`~repro.swec.SwecOptions` or a flat
        mapping).  ``use_predictor`` and ``initialize_dc`` are forced
        off and ``method`` to ``"be"`` — the predictor carries history
        across the period boundary and breaks the fixed-point map.
    backend:
        Solver backend for every march (``dense``/``sparse``/
        ``stack``/``auto``); overrides any ``swec`` setting.
    """

    period: float | None = None
    period_guess: float | None = None
    steps_per_period: int = 400
    tolerance: float = 1e-9
    max_iterations: int = 10
    phase_node: str | None = None
    settle_periods: float = 5.0
    refine_periods: int = 2
    swec: Any = None
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.period is not None and self.period <= 0.0:
            raise AnalysisError(
                f"period must be positive, got {self.period!r}")
        if self.period_guess is not None and self.period_guess <= 0.0:
            raise AnalysisError(
                f"period_guess must be positive, got {self.period_guess!r}")
        if self.period is not None and self.period_guess is not None:
            raise AnalysisError(
                "give period= (driven) or period_guess= (autonomous), "
                "not both")
        if self.steps_per_period < 8:
            raise AnalysisError(
                f"steps_per_period must be >= 8, got "
                f"{self.steps_per_period!r}")
        if self.tolerance <= 0.0:
            raise AnalysisError(
                f"tolerance must be positive, got {self.tolerance!r}")
        if self.max_iterations < 1:
            raise AnalysisError(
                f"max_iterations must be >= 1, got {self.max_iterations!r}")
        if self.refine_periods < 1:
            raise AnalysisError(
                f"refine_periods must be >= 1, got {self.refine_periods!r}")


class PSSResult:
    """One converged periodic orbit.

    ``times``/``states`` hold the closing period on its uniform grid
    (``steps_per_period + 1`` points, endpoint included); the
    periodicity defect ``max|states[-1] - states[0]|`` is below the
    requested tolerance by construction.
    """

    def __init__(self, node_names, times, states, *, period, mode,
                 iterations, residual, residual_history, phase_node,
                 backend, flops) -> None:
        self.node_names = tuple(node_names)
        self.times = np.asarray(times, dtype=float)
        self.states = np.asarray(states, dtype=float)
        #: Converged period of the discrete map (equals the drive
        #: period in driven mode).
        self.period = float(period)
        #: ``"driven"`` or ``"autonomous"``.
        self.mode = mode
        self.iterations = int(iterations)
        #: Final periodicity residual ``max|x(T) - x(0)|``.
        self.residual = float(residual)
        #: Residual after each Newton iteration, first to last.
        self.residual_history = tuple(float(r) for r in residual_history)
        #: Pinned phase node (autonomous mode only).
        self.phase_node = phase_node
        #: Resolved solver backend the marches ran on.
        self.backend = backend
        #: Merged work counters: every Newton march plus the uniform
        #: per-step monodromy accounting (backend-invariant events).
        self.flops = flops if flops is not None else FlopCounter()

    def __len__(self) -> int:
        return len(self.times)

    @property
    def frequency(self) -> float:
        """Fundamental frequency ``1 / period``."""
        return 1.0 / self.period

    def _node_column(self, node: str | None) -> int:
        if node is None:
            return len(self.node_names) - 1
        try:
            return self.node_names.index(node)
        except ValueError:
            raise AnalysisError(
                f"no node named {node!r} "
                f"(has: {', '.join(self.node_names)})") from None

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of *node*'s voltage over the closing period."""
        return self.states[:, self._node_column(node)]

    def amplitude(self, node: str | None = None) -> float:
        """Half the peak-to-peak swing of *node* (default: last node)."""
        return 0.5 * self.peak_to_peak(node)

    def peak_to_peak(self, node: str | None = None) -> float:
        """Peak-to-peak swing of *node* over one period."""
        v = self.states[:, self._node_column(node)]
        return float(v.max() - v.min())

    def mean(self, node: str | None = None) -> float:
        """Period-average of *node* (endpoint excluded: uniform grid)."""
        return float(np.mean(self.states[:-1, self._node_column(node)]))

    def harmonic(self, node: str | None = None, order: int = 1) -> complex:
        """Complex Fourier coefficient of harmonic *order*.

        Order 0 is the mean; order ``k >= 1`` is ``c_k`` in
        ``v(t) = c_0 + sum_k 2 Re(c_k exp(2j pi k t / T))``, computed
        by FFT over the uniform one-period grid (endpoint dropped).
        """
        v = self.states[:-1, self._node_column(node)]
        if not 0 <= order < len(v) // 2:
            raise AnalysisError(
                f"harmonic order {order} out of range for "
                f"{len(v)} samples per period")
        return complex(np.fft.rfft(v)[order] / len(v))

    def harmonic_magnitude(self, node: str | None = None,
                           order: int = 1) -> float:
        """Amplitude of harmonic *order* (``2|c_k|`` for ``k >= 1``)."""
        coefficient = self.harmonic(node, order)
        return abs(coefficient) if order == 0 else 2.0 * abs(coefficient)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PSSResult(mode={self.mode!r}, period={self.period:.6e}, "
                f"iterations={self.iterations}, "
                f"residual={self.residual:.3e})")


def detect_drive_period(circuit: Circuit) -> float | None:
    """Common period of the circuit's periodic sources, if any.

    ``Pulse``/``Clock`` waveforms contribute their period, ``Sine``
    waveforms ``1/frequency``; DC and aperiodic sources are ignored.
    Returns ``None`` for a source-free (autonomous) circuit; raises
    :class:`~repro.errors.PSSError` when two sources disagree — pass
    ``period=`` explicitly in that case.
    """
    periods = []
    for source in list(circuit.voltage_sources) + \
            list(circuit.current_sources):
        waveform = source.waveform
        if isinstance(waveform, Pulse) and math.isfinite(waveform.period):
            periods.append(float(waveform.period))
        elif isinstance(waveform, Sine):
            periods.append(1.0 / float(waveform.frequency))
    if not periods:
        return None
    reference = periods[0]
    for period in periods[1:]:
        if abs(period - reference) > 1e-9 * reference:
            raise PSSError(
                f"sources disagree on the drive period "
                f"({sorted(set(periods))}); pass period= explicitly")
    return reference


class ShootingPSS:
    """Shooting-Newton periodic steady-state analysis of one circuit.

    Construction resolves the mode (driven vs. autonomous, see
    :class:`PSSOptions`) and builds the SWEC march; :meth:`run`
    executes the pipeline and returns a :class:`PSSResult` or raises
    :class:`~repro.errors.PSSError`.
    """

    def __init__(self, circuit: Circuit,
                 options: PSSOptions | None = None) -> None:
        from repro.runtime.jobs import _swec_options, apply_backend
        from repro.swec import SwecOptions, SwecTransient

        self.circuit = circuit
        self.options = options or PSSOptions()
        swec = apply_backend(self.options.swec, self.options.backend)
        if isinstance(swec, Mapping):
            swec = _swec_options(dict(swec))
        if swec is None:
            swec = SwecOptions()
        # The predictor extrapolates chords from march history, which
        # crosses the period boundary between Newton iterations and
        # floors the achievable periodicity at ~1e-7; BE is the one
        # formula the exact monodromy differentiates.
        self._swec = replace(swec, use_predictor=False,
                             initialize_dc=False, method="be",
                             trace_conductance=False)
        self.engine = SwecTransient(circuit, self._swec)
        self.system = self.engine.system
        self.linearization = self.engine.linearization
        self._base = self.system.conductance_base()
        self._capacitance = self.system.capacitance_matrix()
        period = self.options.period
        if period is None and self.options.period_guess is None:
            period = detect_drive_period(circuit)
        self.mode = "autonomous" if period is None else "driven"
        self._period = period
        if self.mode == "autonomous" and self.options.period_guess is None:
            raise PSSError(
                f"circuit {circuit.name!r} has no periodic source; "
                f"autonomous analysis needs period_guess=")

    @property
    def backend_name(self) -> str:
        """Registry name of the resolved solver backend."""
        return self.engine.backend_name

    # ------------------------------------------------------------------
    # Marching
    # ------------------------------------------------------------------

    def _march(self, x0: np.ndarray, period: float,
               periods: int, flops: FlopCounter):
        """March ``periods`` uniform periods from *x0*; merge flops."""
        steps = self.options.steps_per_period * periods
        grid = np.linspace(0.0, period * periods, steps + 1)
        result = self.engine.run_grid(grid, initial_state=x0)
        flops.merge(result.flops)
        if result.aborted:
            raise PSSError(
                f"period march aborted: {result.abort_reason}")
        return result

    def _settle_options(self, period_guess: float):
        """Adaptive step control scaled to the expected period."""
        from repro.swec.timestep import StepControlOptions

        if self.options.swec is not None:
            return self._swec
        return replace(self._swec, step=StepControlOptions(
            epsilon=0.2, h_min=1e-18,
            h_max=period_guess / 128.0,
            h_initial=period_guess / 4096.0))

    # ------------------------------------------------------------------
    # Monodromy
    # ------------------------------------------------------------------

    def _monodromy(self, states: np.ndarray, grid: np.ndarray,
                   flops: FlopCounter) -> tuple[np.ndarray, np.ndarray]:
        """Exact Jacobian ``M = dPhi/dx0`` of the marched chord map.

        Chains ``A_n^{-1} (C/h - D_n)`` over the period, where ``A_n``
        is exactly the matrix the march factored at step ``n`` (base
        stamps + clamped chords + ``C/h``) and ``D_n`` holds the chord
        derivatives, rewritten through the tangent identity
        ``g_ch'(v) v = dI/dV - g_ch`` so the correction reuses the AC
        linearization's per-element tangents.  Also returns the
        endpoint state velocity ``f_T`` (the autonomous period
        column).
        """
        from repro.ac.linearize import tangent_conductances

        system, lin = self.system, self.linearization
        n = system.size
        monodromy = np.eye(n)
        device_terminals = system.device_terminals()
        mosfet_terminals = system.mosfet_terminals()
        for i in range(len(grid) - 1):
            h = grid[i + 1] - grid[i]
            xn, xn1 = states[i], states[i + 1]
            c_over_h = self._capacitance / h
            a = self._base + c_over_h
            device_chords = lin.device_conductances(xn)
            mosfet_chords = lin.mosfet_conductances(xn)
            lin.stamp(a, device_chords, mosfet_chords)
            b = c_over_h.copy()
            device_tangents, mosfet_partials = tangent_conductances(
                self.circuit, system, xn)
            for k, (anode, cathode) in enumerate(device_terminals):
                g_ch = device_chords[k]
                if g_ch <= 0.0:
                    continue
                vn = (xn[anode] if anode >= 0 else 0.0) \
                    - (xn[cathode] if cathode >= 0 else 0.0)
                if abs(vn) <= _V_EPS:
                    continue
                w = (xn1[anode] if anode >= 0 else 0.0) \
                    - (xn1[cathode] if cathode >= 0 else 0.0)
                system.stamp_two_terminal(
                    b, anode, cathode,
                    -(device_tangents[k] - g_ch) * (w / vn))
            for k, (drain, gate, source) in enumerate(mosfet_terminals):
                c_ch = mosfet_chords[k]
                if c_ch <= 0.0:
                    continue
                vds = (xn[drain] if drain >= 0 else 0.0) \
                    - (xn[source] if source >= 0 else 0.0)
                if abs(vds) <= _V_EPS:
                    continue
                w = (xn1[drain] if drain >= 0 else 0.0) \
                    - (xn1[source] if source >= 0 else 0.0)
                gm, gds = mosfet_partials[k]
                scale = w / vds
                system.stamp_two_terminal(
                    b, drain, source, -(gds - c_ch) * scale)
                system.stamp_transconductance(
                    b, drain, source, gate, source, -gm * scale)
            monodromy = np.linalg.solve(a, b @ monodromy)
        # Uniform, backend-independent accounting: one factorization
        # plus an n-column solve per step, regardless of how numpy
        # dispatches the chained solve.
        steps = len(grid) - 1
        flops.count_factorization(n, count=steps)
        flops.count_solve(n, count=steps * n)
        velocity = (states[-1] - states[-2]) / (grid[-1] - grid[-2])
        return monodromy, velocity

    # ------------------------------------------------------------------
    # Autonomous period bootstrap
    # ------------------------------------------------------------------

    def _crossing_period(self, times, values) -> tuple[float | None, float]:
        """Mean rising-crossing interval of the mid-level, and level."""
        level = 0.5 * (float(values.min()) + float(values.max()))
        crossings = crossing_times(times, values, level, "rising")
        if len(crossings) < 3:
            return None, level
        intervals = np.diff(crossings[-4:])
        return float(np.mean(intervals)), level

    def _pick_phase_node(self, result) -> str:
        """Largest-swing node of a settle march (the phase pin)."""
        if self.options.phase_node is not None:
            return self.options.phase_node
        swings = {
            name: float(np.ptp(result.voltage(name)))
            for name in result.node_names
        }
        return max(swings, key=swings.get)

    def _bootstrap(self, flops: FlopCounter):
        """Settle, detect crossings, refine: ``(x0, T0, phase_node)``."""
        from repro.swec import SwecTransient

        guess = float(self.options.period_guess)
        settle_time = self.options.settle_periods * guess
        settle_engine = SwecTransient(
            self.circuit, self._settle_options(guess))
        period = None
        for attempt in range(2):
            horizon = settle_time * (2.0 ** attempt)
            settle = settle_engine.run(horizon)
            flops.merge(settle.flops)
            phase_node = self._pick_phase_node(settle)
            tail = settle.times > settle.times[-1] / 3.0
            period, _ = self._crossing_period(
                settle.times[tail], settle.voltage(phase_node)[tail])
            if period is not None:
                break
        if period is None:
            raise PSSError(
                f"no oscillation detected on {phase_node!r} within "
                f"{horizon:.3e} s; check period_guess= or the circuit "
                f"(is the DC point stable?)")
        x0 = settle.states[-1]
        refine = self._march(x0, period, self.options.refine_periods,
                             flops)
        refined, _ = self._crossing_period(
            refine.times, refine.voltage(phase_node))
        if refined is not None:
            period = refined
        return refine.states[-1], period, phase_node

    # ------------------------------------------------------------------
    # Newton iterations
    # ------------------------------------------------------------------

    def _result(self, march, *, period, iterations, residual, history,
                phase_node, flops) -> PSSResult:
        return PSSResult(
            march.node_names, march.times, march.states,
            period=period, mode=self.mode, iterations=iterations,
            residual=residual, residual_history=history,
            phase_node=phase_node, backend=self.backend_name,
            flops=flops)

    def run(self, initial_state: np.ndarray | None = None) -> PSSResult:
        """Execute the shooting pipeline; converged orbit or raise.

        *initial_state* overrides the starting guess (driven mode) or
        the post-settle state (autonomous mode, e.g. to re-seed from a
        brute-force march).
        """
        flops = FlopCounter()
        tolerance = self.options.tolerance
        history: list[float] = []
        if self.mode == "autonomous":
            if initial_state is None:
                x0, period, phase_node = self._bootstrap(flops)
            else:
                x0 = np.asarray(initial_state, dtype=float)
                period = float(self.options.period_guess)
                phase_node = self.options.phase_node or \
                    self.circuit.nodes[-1]
            phase_index = self.system.node_index(phase_node)
        else:
            period = float(self._period)
            phase_node = None
            x0 = (self.system.initial_state() if initial_state is None
                  else np.asarray(initial_state, dtype=float))
        n = self.system.size
        for iteration in range(1, self.options.max_iterations + 1):
            march = self._march(x0, period, 1, flops)
            residual = march.states[-1] - march.states[0]
            defect = float(np.max(np.abs(residual)))
            history.append(defect)
            if defect < tolerance:
                return self._result(
                    march, period=period, iterations=iteration - 1,
                    residual=defect, history=history,
                    phase_node=phase_node, flops=flops)
            monodromy, velocity = self._monodromy(
                march.states, march.times, flops)
            if self.mode == "autonomous":
                jacobian = np.zeros((n + 1, n + 1))
                jacobian[:n, :n] = monodromy - np.eye(n)
                jacobian[:n, n] = velocity
                jacobian[n, phase_index] = 1.0
                rhs = np.zeros(n + 1)
                rhs[:n] = -residual
                try:
                    delta = np.linalg.solve(jacobian, rhs)
                except np.linalg.LinAlgError as exc:
                    raise PSSError(
                        f"singular shooting Jacobian: {exc}",
                        iterations=iteration, residual=defect) from exc
                flops.count_factorization(n + 1)
                flops.count_solve(n + 1)
                x0 = x0 + delta[:n]
                period = period + float(delta[n])
                if not math.isfinite(period) or period <= 0.0:
                    raise PSSError(
                        f"shooting period update diverged to "
                        f"{period!r}; check period_guess=",
                        iterations=iteration, residual=defect)
            else:
                try:
                    delta = np.linalg.solve(
                        monodromy - np.eye(n), -residual)
                except np.linalg.LinAlgError as exc:
                    raise PSSError(
                        f"singular shooting Jacobian (is the circuit "
                        f"missing dynamics?): {exc}",
                        iterations=iteration, residual=defect) from exc
                flops.count_factorization(n)
                flops.count_solve(n)
                x0 = x0 + delta
            if not np.all(np.isfinite(x0)):
                raise PSSError(
                    "shooting Newton update diverged (non-finite state)",
                    iterations=iteration, residual=defect)
        raise PSSError(
            f"shooting Newton did not reach tolerance {tolerance:g} in "
            f"{self.options.max_iterations} iterations",
            iterations=self.options.max_iterations,
            residual=history[-1])


def run_pss(circuit: Circuit, options: PSSOptions | None = None,
            **kwargs) -> PSSResult:
    """One-call front door: ``run_pss(circuit, period=...)``.

    Keyword arguments build a :class:`PSSOptions` when *options* is
    omitted; see that class for the knobs.
    """
    if options is None:
        options = PSSOptions(**kwargs)
    elif kwargs:
        options = replace(options, **kwargs)
    return ShootingPSS(circuit, options).run()
