"""Top-level entry points: lint netlist text or a built circuit.

:func:`lint_netlist` is the full pipeline — text checks over the raw
(logical) lines, a provenance-tracking parse, then graph checks over
the flattened circuit.  A netlist that fails to parse still produces a
report: the parser's line-numbered :class:`NetlistParseError` is
classified into a check id (``duplicate-element``, ``subckt-arity``,
or the catch-all ``parse-error``) so callers see one uniform
diagnostic stream whatever the failure mode.

:func:`lint_circuit` runs the graph checks alone, for circuits built
through the Python API (or by a registered template builder) where no
netlist text exists.

Both functions never raise on bad input — a broken design is the
expected input, and the answer is a report, not an exception.
"""

from __future__ import annotations

import re

from repro.circuit.netlist import Circuit
from repro.circuit.parser import (
    _extract_subckts,
    _join_continuations,
    parse_netlist,
)
from repro.errors import NanoSimError, NetlistParseError
from repro.lint.checks import (
    TextContext,
    run_graph_checks,
    run_text_checks,
)
from repro.lint.graph import CircuitGraph
from repro.lint.report import Diagnostic, LintReport

__all__ = ["lint_circuit", "lint_netlist"]

#: Parser-message patterns mapped to stable check ids.  The parser is
#: the authority on these defects (it has exact line numbers); lint
#: only classifies its messages.
_PARSE_CLASSIFIERS = (
    ("duplicate-element", re.compile(r"duplicate element name")),
    ("subckt-arity", re.compile(r"has \d+ port\(s\).*\d+ node\(s\)")),
)

_PARSE_HINTS = {
    "duplicate-element": "rename one of the elements; names must be unique",
    "subckt-arity": (
        "pass exactly one node per .SUBCKT port, in port order"
    ),
}


def _classify_parse_error(exc: NetlistParseError) -> Diagnostic:
    """Turn a parser exception into a classified diagnostic."""
    message = str(exc)
    check = "parse-error"
    for check_id, pattern in _PARSE_CLASSIFIERS:
        if pattern.search(message):
            check = check_id
            break
    return Diagnostic(
        severity="error",
        check=check,
        message=message,
        line=exc.line_number,
        source=exc.line,
        hint=_PARSE_HINTS.get(check),
    )


def lint_netlist(
    text: str,
    params: dict | None = None,
    name: str = "<netlist>",
) -> LintReport:
    """Lint netlist source *text*; never raises on bad input.

    Parameters
    ----------
    text:
        The netlist source to analyze.
    params:
        ``.PARAM`` overrides, exactly as :func:`parse_netlist` takes
        them — lint a sweep design point by passing its parameters.
    name:
        Label used in the report (typically the file name).
    """
    diagnostics: list[Diagnostic] = []
    try:
        lines = _join_continuations(text)
        top, subckts = _extract_subckts(lines)
    except NetlistParseError as exc:
        return LintReport(name=name, diagnostics=[_classify_parse_error(exc)])
    diagnostics.extend(
        run_text_checks(TextContext(lines=lines, top=top, subckts=subckts))
    )
    provenance: dict[str, tuple[int, str]] = {}
    try:
        circuit = parse_netlist(text, params=params, provenance=provenance)
    except NetlistParseError as exc:
        diagnostics.append(_classify_parse_error(exc))
        return LintReport(name=name, diagnostics=diagnostics)
    except NanoSimError as exc:
        diagnostics.append(
            Diagnostic(
                severity="error",
                check="parse-error",
                message=f"{type(exc).__name__}: {exc}",
            )
        )
        return LintReport(name=name, diagnostics=diagnostics)
    graph = CircuitGraph(circuit, provenance)
    diagnostics.extend(run_graph_checks(graph))
    return LintReport(name=name, diagnostics=diagnostics)


def lint_circuit(
    circuit: Circuit,
    provenance: dict[str, tuple[int, str]] | None = None,
    name: str | None = None,
) -> LintReport:
    """Run the graph checks over an already-built :class:`Circuit`.

    Unlike :meth:`Circuit.validate` this never raises — it reports.
    Pass the ``provenance`` dict from a tracking parse to get line
    numbers on the diagnostics.
    """
    graph = CircuitGraph(circuit, provenance)
    return LintReport(
        name=name if name is not None else circuit.name,
        diagnostics=run_graph_checks(graph),
    )
