"""``repro-lint`` / ``python -m repro.lint`` command-line interface.

Lint one or more netlist files and render the reports as text or
JSON::

    repro-lint design.cir
    repro-lint design.cir --json
    repro-lint a.cir b.cir --fail-on warning
    repro-lint family.cir --param rload=0

Exit status: ``0`` when every report passes the ``--fail-on``
threshold, ``1`` when at least one fails, ``2`` on usage errors
(unreadable file, bad ``--param``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.analyzer import lint_netlist
from repro.lint.checks import CHECKS, PARSE_CHECK_IDS


def _parse_params(entries: list[str]) -> dict[str, float]:
    params: dict[str, float] = {}
    for entry in entries:
        name, separator, value = entry.partition("=")
        if not separator or not name:
            raise SystemExit(
                f"repro-lint: bad --param {entry!r} (expected name=value)"
            )
        try:
            params[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"repro-lint: bad --param value {value!r} (expected a "
                f"number)"
            ) from None
    return params


def _list_checks() -> str:
    rows = [
        f"  {check.check_id:<22} {check.severity:<8} {check.title}"
        for check in CHECKS.values()
    ]
    rows.extend(
        f"  {check_id:<22} {'error':<8} {title}"
        for check_id, title in PARSE_CHECK_IDS.items()
    )
    return "registered checks:\n" + "\n".join(sorted(rows))


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static topology analysis for SPICE-dialect netlists: "
            "floating nodes, capacitor-only cuts, structurally "
            "singular MNA rows, source loops, implausible values."
        ),
    )
    parser.add_argument(
        "files", nargs="*", type=Path, help="netlist file(s) to lint"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON array of reports instead of text",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="error",
        help="exit non-zero when a report reaches this severity "
        "(default: error)",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help=".PARAM override applied to every file (repeatable)",
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="print the check registry and exit",
    )
    return parser


def _fails(report, threshold: str) -> bool:
    if threshold == "error":
        return report.errors > 0
    if threshold == "warning":
        return report.errors + report.warnings > 0
    return bool(report.diagnostics)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_checks:
        print(_list_checks())
        return 0
    if not args.files:
        parser.error("no netlist files given")
    params = _parse_params(args.param)
    reports = []
    for path in args.files:
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"repro-lint: cannot read {path}: {exc}",
                  file=sys.stderr)
            return 2
        reports.append(lint_netlist(text, params=params, name=str(path)))
    if args.json:
        print(json.dumps([r.as_dict() for r in reports], indent=2,
                         sort_keys=True))
    else:
        print("\n\n".join(r.render() for r in reports))
    return 1 if any(_fails(r, args.fail_on) for r in reports) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
