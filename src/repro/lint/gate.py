"""Pre-flight gating: lint jobs and sweep design points before solving.

This is the glue between the analyzer and the execution layers.  Three
callers use it:

* runtime jobs (``TransientJob(..., validate="strict")``) call
  :func:`enforce_job_lint` at the top of ``run()``,
* the sweep runner calls :func:`gate_sweep_jobs` after job expansion:
  in ``strict`` mode a broken design point's job is *replaced* by a
  refuser that raises :class:`~repro.errors.LintError` — the point
  shows up as a failed row in the report without a single matrix
  factorization having happened; in ``warn`` mode a
  :class:`LintWarning` is emitted and the point runs anyway,
* the service daemon calls :func:`lint_job` on uncacheable
  submissions, rejecting broken ones before they reach the pool.

Lockstep blocks (:class:`~repro.sweep.runner.SweepBatchJob`) are
refused *whole*: dropping one point would change the shared worst-case
adaptive grid for its neighbours, breaking the promise that lockstep
results depend only on ``(spec, vector)``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any

from repro.errors import LintError, NanoSimError
from repro.lint.analyzer import lint_circuit, lint_netlist
from repro.lint.report import Diagnostic, LintReport
from repro.runtime.jobs import materialize_circuit
from repro.sweep.runner import SweepBatchJob

__all__ = [
    "VALIDATE_MODES",
    "LintWarning",
    "check_validate_mode",
    "enforce_job_lint",
    "gate_sweep_jobs",
    "lint_job",
]

#: Legal values of every ``validate=`` knob.
VALIDATE_MODES = ("off", "warn", "strict")


class LintWarning(UserWarning):
    """Category of ``validate="warn"`` log messages."""


def check_validate_mode(mode: str, error_class: type = ValueError) -> str:
    """Validate a ``validate=`` knob value, returning it unchanged."""
    if mode not in VALIDATE_MODES:
        raise error_class(
            f"validate must be one of {VALIDATE_MODES}, got {mode!r}"
        )
    return mode


def _plain_circuit(built: Any) -> Any:
    """Unwrap builders that return ``CircuitSDE``-like wrappers."""
    from repro.circuit.netlist import Circuit

    if not isinstance(built, Circuit) and hasattr(built, "circuit"):
        return built.circuit
    return built


def _build_error_report(name: str, exc: Exception) -> LintReport:
    return LintReport(
        name=name,
        diagnostics=[
            Diagnostic(
                severity="error",
                check="build-error",
                message=f"{type(exc).__name__}: {exc}",
                hint="fix the builder parameters for this design point",
            )
        ],
    )


def lint_job(job: Any, name: str | None = None) -> LintReport | None:
    """Lint the circuit(s) a runtime job would materialize.

    Returns ``None`` for jobs without circuit topology (stochastic
    :class:`~repro.runtime.jobs.EnsembleJob`\\ s).  For
    ``variations=``-carrying ensemble transients every distinct
    design point is linted and the reports merged.  Never raises on a
    broken design — builder failures become ``build-error``
    diagnostics.
    """
    if hasattr(job, "sde"):
        return None  # SDE ensembles carry no circuit topology
    if not any(
        getattr(job, attr, None) is not None
        for attr in ("circuit", "netlist", "builder")
    ):
        return None
    if name is None:
        name = getattr(job, "label", "") or type(job).__name__
    params = dict(getattr(job, "params", None) or {})
    variations = getattr(job, "variations", None)
    if variations:
        param_sets = [{**params, **dict(v)} for v in variations]
    else:
        param_sets = [params]
    netlist = getattr(job, "netlist", None)
    reports = []
    for point_params in param_sets:
        if netlist is not None:
            reports.append(
                lint_netlist(netlist, params=point_params, name=name)
            )
            continue
        try:
            built = materialize_circuit(
                getattr(job, "circuit", None),
                getattr(job, "builder", None),
                None,
                point_params,
            )
        except (NanoSimError, TypeError, ValueError) as exc:
            reports.append(_build_error_report(name, exc))
            continue
        reports.append(lint_circuit(_plain_circuit(built), name=name))
    if len(reports) == 1:
        return reports[0]
    return LintReport.merge(name, reports)


def refusal_message(report: LintReport) -> str:
    """One-line refusal text: first error plus a count of the rest."""
    first = next(
        d for d in report.diagnostics if d.severity == "error"
    )
    more = report.errors - 1
    suffix = f" (+{more} more error(s))" if more else ""
    return (
        f"{report.name}: refused by pre-flight lint "
        f"[{first.check}] {first.message}{suffix}"
    )


def enforce_job_lint(
    job: Any, mode: str, name: str | None = None
) -> LintReport | None:
    """Apply a job's ``validate=`` knob; returns the report (or None).

    ``strict`` raises :class:`~repro.errors.LintError` when the design
    has lint errors; ``warn`` emits a :class:`LintWarning` and lets it
    run; ``off`` skips linting entirely.
    """
    from repro.errors import AnalysisError

    mode = check_validate_mode(mode, AnalysisError)
    if mode == "off":
        return None
    report = lint_job(job, name=name)
    if report is None or not report.errors:
        return report
    if mode == "strict":
        raise LintError(refusal_message(report), report)
    warnings.warn(
        f"{refusal_message(report).replace('refused', 'flagged')} "
        f"(validate='warn': running anyway)",
        LintWarning,
        stacklevel=2,
    )
    return report


# ----------------------------------------------------------------------
# Sweep gating
# ----------------------------------------------------------------------


@dataclass
class RefusedPointJob:
    """Stand-in inner job for a design point refused in strict mode.

    Its ``run`` raises immediately, so the existing failure-isolation
    path in the batch runner records the refusal as a failed row —
    with zero factorization events, since no engine is ever built.
    """

    refusal: str
    lint_report: LintReport | None = None
    label: str = ""

    def run(self, seed=None):
        """Refuse: raise :class:`~repro.errors.LintError`."""
        raise LintError(self.refusal, self.lint_report)


@dataclass
class RefusedBatchJob(SweepBatchJob):
    """A lockstep block refused whole in strict mode.

    Subclasses :class:`~repro.sweep.runner.SweepBatchJob` so report
    assembly still fans the failure out to every point in the block.
    """

    refusal: str = ""
    lint_report: LintReport | None = None

    def run(self, seed=None):
        """Refuse: raise :class:`~repro.errors.LintError`."""
        raise LintError(self.refusal, self.lint_report)


def _lint_batch_points(job: SweepBatchJob) -> list[LintReport]:
    """Per-point lint reports of a lockstep block (broken ones only)."""
    broken = []
    for label, params in zip(job.labels, job.params_list):
        if job.netlist_text is not None:
            report = lint_netlist(
                job.netlist_text, params=params, name=label
            )
        else:
            try:
                built = materialize_circuit(
                    None, job.template, None, params
                )
            except (NanoSimError, TypeError, ValueError) as exc:
                report = _build_error_report(label, exc)
            else:
                report = lint_circuit(_plain_circuit(built), name=label)
        if report.errors:
            broken.append(report)
    return broken


def gate_sweep_jobs(jobs: list, mode: str) -> list:
    """Lint every design point; refuse or warn per *mode*.

    Returns a new job list: in ``strict`` mode broken points (or
    blocks containing one) are replaced by refusers, clean jobs pass
    through untouched.
    """
    from repro.errors import SweepSpecError

    mode = check_validate_mode(mode, SweepSpecError)
    if mode == "off":
        return list(jobs)
    gated = []
    for job in jobs:
        if isinstance(job, SweepBatchJob):
            gated.append(_gate_batch_job(job, mode))
        else:
            gated.append(_gate_point_job(job, mode))
    return gated


def _gate_point_job(job, mode: str):
    report = lint_job(job.inner, name=job.label or None)
    if report is None or not report.errors:
        return job
    message = refusal_message(report)
    if mode == "warn":
        warnings.warn(
            f"{message.replace('refused', 'flagged')} "
            f"(validate='warn': running anyway)",
            LintWarning,
            stacklevel=3,
        )
        return job
    return replace(
        job,
        inner=RefusedPointJob(
            refusal=message, lint_report=report, label=job.label
        ),
    )


def _gate_batch_job(job: SweepBatchJob, mode: str):
    broken = _lint_batch_points(job)
    if not broken:
        return job
    merged = LintReport.merge(job.label or "block", broken)
    names = ", ".join(report.name for report in broken)
    message = (
        f"{merged.name}: lockstep block refused by pre-flight lint: "
        f"point(s) {names} failed ({merged.errors} error(s)); a block "
        f"shares one adaptive grid, so the whole block is refused"
    )
    if mode == "warn":
        warnings.warn(
            f"{message.replace('refused by', 'flagged by')} "
            f"(validate='warn': running anyway)",
            LintWarning,
            stacklevel=3,
        )
        return job
    base = {
        f.name: getattr(job, f.name) for f in fields(SweepBatchJob)
    }
    return RefusedBatchJob(refusal=message, lint_report=merged, **base)
