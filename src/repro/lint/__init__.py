"""Netlist lint: static topology analysis before any factorization.

The SWEC flow assumes a well-posed MNA system; at sweep/service scale
a malformed design point wastes a worker (or a whole coalesced job).
This package catches structural defects at parse time:

* :func:`lint_netlist` — full pipeline over netlist source text:
  text-level checks (subcircuit hygiene), a provenance-tracking parse,
  then graph checks over the flattened circuit.  Parse failures are
  classified into diagnostics, never raised.
* :func:`lint_circuit` — graph checks over an already-built
  :class:`~repro.circuit.Circuit`.
* :class:`LintReport` / :class:`Diagnostic` — the structured result,
  rendering to text or deterministic JSON.
* :mod:`repro.lint.checks` — the check registry (extend with
  :func:`~repro.lint.checks.register_check`).
* :mod:`repro.lint.gate` — ``validate=`` gating for runtime jobs,
  sweeps and the result service.

Command line: ``python -m repro.lint file.cir [--json]
[--fail-on warning]`` (installed as ``repro-lint``).  The full check
catalogue is documented in ``docs/lint.md``.
"""

from repro.lint.analyzer import lint_circuit, lint_netlist
from repro.lint.checks import CHECKS, register_check
from repro.lint.graph import CircuitGraph
from repro.lint.report import SEVERITIES, Diagnostic, LintReport

__all__ = [
    "CHECKS",
    "SEVERITIES",
    "CircuitGraph",
    "Diagnostic",
    "LintReport",
    "lint_circuit",
    "lint_netlist",
    "register_check",
]
