"""Diagnostic records and the report container.

A lint run produces a :class:`LintReport`: an ordered list of
:class:`Diagnostic` records plus per-severity counts.  The report is
the *only* output format of the analyzer — the CLI renders it as text
or JSON, the gating layer inspects its ``errors`` count, and the
golden-corpus tests snapshot its :meth:`LintReport.as_dict` form.

Determinism matters here: two lint runs over the same input must
produce byte-identical JSON, so diagnostics are sorted by a total
order (line, severity, check id, message, subject) and the dict form
has a fixed key set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["SEVERITIES", "Diagnostic", "LintReport"]

#: Recognized severities, most severe first.
SEVERITIES = ("error", "warning", "info")

#: JSON schema tag emitted in every report; bump on breaking changes.
REPORT_SCHEMA = "repro-lint/1"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a defect (or observation) at a netlist location.

    Parameters
    ----------
    severity:
        One of :data:`SEVERITIES`.  ``error`` means the circuit cannot
        produce a well-posed MNA system (or cannot be parsed at all);
        ``warning`` flags suspicious-but-solvable structure; ``info``
        is advisory.
    check:
        Stable check identifier (e.g. ``"floating-node"``); the full
        registry lives in :mod:`repro.lint.checks`.
    message:
        Human-readable one-line description of the finding.
    line:
        One-based line number into the linted netlist source, or
        ``None`` when the finding has no single location (e.g. an
        empty circuit, or a circuit linted without provenance).
    source:
        The offending logical card (continuation lines joined), when
        known.
    subject:
        The node or element name the finding is about, when any.
    hint:
        A suggested fix.
    """

    severity: str
    check: str
    message: str
    line: int | None = None
    source: str | None = None
    subject: str | None = None
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def sort_key(self) -> tuple:
        """Total order: location first, then severity, id, text."""
        return (
            self.line is None,
            self.line or 0,
            SEVERITIES.index(self.severity),
            self.check,
            self.message,
            self.subject or "",
        )

    def as_dict(self) -> dict:
        """Fixed-key-set mapping form (stable for golden snapshots)."""
        return {
            "severity": self.severity,
            "check": self.check,
            "message": self.message,
            "line": self.line,
            "source": self.source,
            "subject": self.subject,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One diagnostic as indented text lines."""
        where = f"line {self.line} " if self.line is not None else ""
        out = [f"  {where}[{self.severity}] {self.check}: {self.message}"]
        if self.source is not None:
            out.append(f"      > {self.source}")
        if self.hint is not None:
            out.append(f"      hint: {self.hint}")
        return "\n".join(out)


@dataclass
class LintReport:
    """All diagnostics from one lint run, in deterministic order.

    Construction sorts the diagnostics; ``ok`` is defined as "no
    error-severity diagnostics" (warnings and infos do not fail a
    report — the CLI ``--fail-on warning`` knob tightens that).
    """

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.diagnostics = sorted(self.diagnostics, key=Diagnostic.sort_key)

    def _count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> int:
        """Number of error-severity diagnostics."""
        return self._count("error")

    @property
    def warnings(self) -> int:
        """Number of warning-severity diagnostics."""
        return self._count("warning")

    @property
    def infos(self) -> int:
        """Number of info-severity diagnostics."""
        return self._count("info")

    @property
    def ok(self) -> bool:
        """True when the report carries no errors."""
        return self.errors == 0

    def by_check(self, check: str) -> list[Diagnostic]:
        """All diagnostics emitted by one check id."""
        return [d for d in self.diagnostics if d.check == check]

    def worst(self) -> str | None:
        """Most severe severity present, or ``None`` for a clean report."""
        for severity in SEVERITIES:
            if self._count(severity):
                return severity
        return None

    def summary(self) -> str:
        """One-line roll-up used by renderers and log messages."""
        counts = (
            f"{self.errors} error(s), {self.warnings} warning(s), "
            f"{self.infos} info(s)"
        )
        return f"{self.name}: {counts}"

    def as_dict(self) -> dict:
        """Mapping form: schema tag, counts, diagnostic list."""
        return {
            "schema": REPORT_SCHEMA,
            "name": self.name,
            "ok": self.ok,
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Deterministic JSON encoding of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def render(self) -> str:
        """Human-readable multi-line text form."""
        if not self.diagnostics:
            return f"{self.name}: clean"
        lines = [self.summary()]
        lines.extend(d.render() for d in self.diagnostics)
        return "\n".join(lines)

    @staticmethod
    def merge(name: str, reports: list["LintReport"]) -> "LintReport":
        """Union several reports (e.g. one per sweep variation)."""
        seen: set[tuple] = set()
        merged: list[Diagnostic] = []
        for report in reports:
            for diagnostic in report.diagnostics:
                key = (
                    diagnostic.check,
                    diagnostic.message,
                    diagnostic.line,
                    diagnostic.subject,
                )
                if key not in seen:
                    seen.add(key)
                    merged.append(diagnostic)
        return LintReport(name=name, diagnostics=merged)
