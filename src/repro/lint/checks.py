"""The check registry and the built-in checks.

Checks come in two scopes:

* ``graph`` checks receive a :class:`~repro.lint.graph.CircuitGraph`
  (a flattened circuit plus provenance) and detect topology defects:
  floating nodes, capacitor-only cuts, structurally singular MNA rows,
  source loops, dead ends, implausible element values.
* ``text`` checks receive a :class:`TextContext` (the logical netlist
  lines plus the extracted ``.SUBCKT`` table) and detect defects that
  flattening erases: dangling subcircuit ports, unused definitions.

Each check is registered under a stable id via :func:`register_check`;
``python -m repro.lint --list-checks`` prints the registry.  Two more
ids — ``duplicate-element`` and ``subckt-arity`` — are emitted by the
analyzer by classifying parser errors (the parser already detects
those defects with exact line numbers; re-deriving them here would
duplicate its logic), and ``parse-error`` / ``build-error`` cover
everything else that keeps a design from producing a circuit at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    MosfetInstance,
    Resistor,
    TwoTerminalDeviceInstance,
    VoltageSource,
)
from repro.circuit.sources import DC
from repro.lint.graph import GROUND, CircuitGraph, _canon, conductive_pairs
from repro.lint.report import Diagnostic

__all__ = [
    "CHECKS",
    "PARSE_CHECK_IDS",
    "LintCheck",
    "TextContext",
    "register_check",
    "run_graph_checks",
    "run_text_checks",
]

#: Check ids produced by classifying parser/build failures (documented
#: here so ``--list-checks`` and the docs can enumerate every id).
PARSE_CHECK_IDS = {
    "parse-error": "the netlist does not parse at all",
    "duplicate-element": "two elements share one name",
    "subckt-arity": "a subcircuit call passes the wrong number of nodes",
    "build-error": "a registered circuit builder rejected its parameters",
}


@dataclass(frozen=True)
class TextContext:
    """Input to text-scope checks: logical lines + subckt table."""

    lines: list  # [(line_number, logical_line), ...]
    top: list  # top-level subset of ``lines``
    subckts: dict  # name -> SubcktDef


@dataclass(frozen=True)
class LintCheck:
    """One registered check: id, default severity, scope, function."""

    check_id: str
    severity: str
    scope: str  # "graph" | "text"
    title: str
    fn: Callable = field(compare=False)


#: Registry of all graph/text checks, keyed by check id.
CHECKS: dict[str, LintCheck] = {}


def register_check(
    check_id: str, *, severity: str, scope: str = "graph", title: str
) -> Callable:
    """Decorator adding a check function to :data:`CHECKS`.

    The function receives a :class:`CircuitGraph` (scope ``graph``) or
    a :class:`TextContext` (scope ``text``) and returns a list of
    :class:`Diagnostic`.  Registering an id twice is an error — ids
    are a public, documented namespace.
    """

    def wrap(fn: Callable) -> Callable:
        if check_id in CHECKS or check_id in PARSE_CHECK_IDS:
            raise ValueError(f"check id {check_id!r} already registered")
        CHECKS[check_id] = LintCheck(check_id, severity, scope, title, fn)
        return fn

    return wrap


def run_graph_checks(graph: CircuitGraph) -> list[Diagnostic]:
    """Run every graph-scope check over *graph*."""
    diagnostics: list[Diagnostic] = []
    for check in CHECKS.values():
        if check.scope == "graph":
            diagnostics.extend(check.fn(graph))
    return diagnostics


def run_text_checks(context: TextContext) -> list[Diagnostic]:
    """Run every text-scope check over *context*."""
    diagnostics: list[Diagnostic] = []
    for check in CHECKS.values():
        if check.scope == "text":
            diagnostics.extend(check.fn(context))
    return diagnostics


# ----------------------------------------------------------------------
# Graph-scope checks
# ----------------------------------------------------------------------
#
# The node-level checks partition defective nodes so one broken node
# yields exactly one diagnostic: capacitor-only nodes are open
# circuits; other zero-G-row nodes are structurally singular; nodes
# with a usable row that cannot reach ground are floating.


def _cap_only(graph: CircuitGraph, node: str) -> bool:
    elements = graph.elements_at(node)
    return bool(elements) and all(
        isinstance(e, Capacitor) for e in elements
    )


@register_check(
    "empty-circuit",
    severity="error",
    title="the circuit has no elements, or no non-ground nodes",
)
def _check_empty(graph: CircuitGraph) -> list[Diagnostic]:
    if not graph.circuit.num_elements:
        return [
            Diagnostic(
                severity="error",
                check="empty-circuit",
                message=f"circuit {graph.circuit.name!r} has no elements",
                hint="add at least one element card (R/C/L/V/I/X/D/M)",
            )
        ]
    if graph.circuit.num_nodes:
        return []
    # Elements exist but every terminal sits on ground: zero unknowns,
    # so MNA assembly produces an empty system.
    first = next(graph.circuit.elements())
    line, source = graph.element_location(first)
    return [
        Diagnostic(
            severity="error",
            check="empty-circuit",
            message=(
                f"circuit {graph.circuit.name!r} has no non-ground "
                f"nodes: every element terminal is tied to '0', so "
                f"there is nothing to solve for"
            ),
            line=line,
            source=source,
            hint="connect at least one element to a non-ground node",
        )
    ]


@register_check(
    "no-ground",
    severity="error",
    title="no element connects to the reference node",
)
def _check_no_ground(graph: CircuitGraph) -> list[Diagnostic]:
    if graph.has_ground or graph.circuit.num_elements == 0:
        return []
    first = next(graph.circuit.elements())
    line, source = graph.element_location(first)
    return [
        Diagnostic(
            severity="error",
            check="no-ground",
            message=(
                f"circuit {graph.circuit.name!r} never connects to "
                f"ground ('0'/'gnd'); the MNA reference is undefined"
            ),
            line=line,
            source=source,
            hint="tie one node to '0' (every potential is relative to it)",
        )
    ]


@register_check(
    "open-circuit",
    severity="error",
    title="a node connects only to capacitor terminals",
)
def _check_open_circuit(graph: CircuitGraph) -> list[Diagnostic]:
    out = []
    for node in graph.nodes():
        if _cap_only(graph, node):
            names = ", ".join(
                repr(e.name) for e in graph.elements_at(node)
            )
            line, source = graph.node_location(node)
            out.append(
                Diagnostic(
                    severity="error",
                    check="open-circuit",
                    message=(
                        f"node {node!r} connects only to capacitor "
                        f"terminal(s) ({names}); no DC current can "
                        f"define its voltage"
                    ),
                    line=line,
                    source=source,
                    subject=node,
                    hint=(
                        f"give {node!r} a DC path (resistor or source) "
                        f"or remove the dangling capacitor"
                    ),
                )
            )
    return out


@register_check(
    "singular-mna",
    severity="error",
    title="a node has a structurally all-zero conductance row",
)
def _check_singular_mna(graph: CircuitGraph) -> list[Diagnostic]:
    out = []
    for node in graph.nodes():
        if graph.has_structural_g_row(node) or _cap_only(graph, node):
            continue
        kinds = sorted(
            {type(e).__name__ for e in graph.elements_at(node)}
        )
        line, source = graph.node_location(node)
        hint = f"attach a resistor, source or device branch to {node!r}"
        if any(
            isinstance(e, CurrentSource) for e in graph.elements_at(node)
        ):
            hint = (
                f"a current source needs a DC return path; add a "
                f"shunt resistor at {node!r}"
            )
        out.append(
            Diagnostic(
                severity="error",
                check="singular-mna",
                message=(
                    f"node {node!r} has an all-zero conductance row "
                    f"(attached: {', '.join(kinds) or 'nothing'}); "
                    f"every factorization of this system is singular"
                ),
                line=line,
                source=source,
                subject=node,
                hint=hint,
            )
        )
    return out


@register_check(
    "floating-node",
    severity="error",
    title="a node is not DC-reachable from ground",
)
def _check_floating(graph: CircuitGraph) -> list[Diagnostic]:
    if not graph.has_ground:
        return []  # no-ground already covers every node
    reachable = graph.dc_reachable()
    out = []
    for node in graph.nodes():
        if node in reachable:
            continue
        if _cap_only(graph, node) or not graph.has_structural_g_row(node):
            continue  # already diagnosed more specifically
        line, source = graph.node_location(node)
        out.append(
            Diagnostic(
                severity="error",
                check="floating-node",
                message=(
                    f"node {node!r} is not DC-reachable from ground: "
                    f"every path to '0' crosses a capacitor or current "
                    f"source, or the node sits in an isolated island"
                ),
                line=line,
                source=source,
                subject=node,
                hint=(
                    "ground the island or bridge it with a "
                    "DC-conducting element (resistor, source, device)"
                ),
            )
        )
    return out


class _UnionFind:
    """Minimal union-find for the source-loop check."""

    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def find(self, node: str) -> str:
        root = node
        while self.parent.setdefault(root, root) != root:
            root = self.parent[root]
        while self.parent[node] != root:
            self.parent[node], node = root, self.parent[node]
        return root

    def union(self, a: str, b: str) -> bool:
        """Join the sets of *a* and *b*; False when already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


@register_check(
    "vsource-loop",
    severity="error",
    title="voltage-source/inductor branches form a loop",
)
def _check_vsource_loop(graph: CircuitGraph) -> list[Diagnostic]:
    forest = _UnionFind()
    out = []
    for element in graph.circuit.elements():
        if not isinstance(element, (VoltageSource, Inductor)):
            continue
        (a, b) = conductive_pairs(element)[0]
        if a == b or not forest.union(a, b):
            kind = (
                "voltage source"
                if isinstance(element, VoltageSource)
                else "inductor"
            )
            line, source = graph.element_location(element)
            out.append(
                Diagnostic(
                    severity="error",
                    check="vsource-loop",
                    message=(
                        f"{kind} {element.name!r} closes a loop of "
                        f"voltage-source/inductor branches between "
                        f"{a!r} and {b!r}; at DC the branch equations "
                        f"are dependent and the MNA system is singular"
                    ),
                    line=line,
                    source=source,
                    subject=element.name,
                    hint=(
                        "break the loop (sources in parallel, or an "
                        "inductor across a source, short each other)"
                    ),
                )
            )
    return out


@register_check(
    "dangling-node",
    severity="warning",
    title="a resistor dead-ends into a single-terminal node",
)
def _check_dangling(graph: CircuitGraph) -> list[Diagnostic]:
    out = []
    reachable = graph.dc_reachable()
    for node in graph.nodes():
        if graph.terminal_count(node) != 1:
            continue
        if graph.has_ground and node not in reachable:
            continue  # floating-node already errors on this node
        element = graph.elements_at(node)[0]
        if not isinstance(element, Resistor):
            continue
        line, source = graph.element_location(element)
        out.append(
            Diagnostic(
                severity="warning",
                check="dangling-node",
                message=(
                    f"node {node!r} is a dead end: only one terminal "
                    f"(of resistor {element.name!r}) reaches it, so no "
                    f"current can flow there"
                ),
                line=line,
                source=source,
                subject=node,
                hint=(
                    f"remove {element.name!r} or connect {node!r} "
                    f"onward"
                ),
            )
        )
    return out


@register_check(
    "self-loop",
    severity="warning",
    title="an element connects a node to itself",
)
def _check_self_loop(graph: CircuitGraph) -> list[Diagnostic]:
    out = []
    for element in graph.circuit.elements():
        if isinstance(element, (VoltageSource, Inductor, MosfetInstance)):
            continue  # V/L self-loops raise vsource-loop instead
        canonical = {_canon(node) for node in element.nodes}
        if len(canonical) != 1:
            continue
        (node,) = canonical
        line, source = graph.element_location(element)
        out.append(
            Diagnostic(
                severity="warning",
                check="self-loop",
                message=(
                    f"element {element.name!r} connects node {node!r} "
                    f"to itself; its stamps cancel and it has no effect"
                ),
                line=line,
                source=source,
                subject=element.name,
                hint=f"remove {element.name!r} or fix one of its nodes",
            )
        )
    return out


#: Plausibility windows for element values (SI units).  Values outside
#: these decades almost always mean a mistyped engineering suffix.
_MAGNITUDE_WINDOWS = {
    "resistance": (1e-3, 1e12, "ohm"),
    "capacitance": (1e-18, 1e-3, "F"),
    "inductance": (1e-15, 1e3, "H"),
}


@register_check(
    "param-magnitude",
    severity="warning",
    title="an element value is outside its plausible decade window",
)
def _check_param_magnitude(graph: CircuitGraph) -> list[Diagnostic]:
    out = []
    for element in graph.circuit.elements():
        for attribute, (low, high, unit) in _MAGNITUDE_WINDOWS.items():
            value = getattr(element, attribute, None)
            if value is None or low <= value <= high:
                continue
            line, source = graph.element_location(element)
            out.append(
                Diagnostic(
                    severity="warning",
                    check="param-magnitude",
                    message=(
                        f"{type(element).__name__.lower()} "
                        f"{element.name!r} has an implausible "
                        f"{attribute} of {value:.3g} {unit} (expected "
                        f"{low:.0e}..{high:.0e})"
                    ),
                    line=line,
                    source=source,
                    subject=element.name,
                    hint=(
                        "check the engineering suffix: 'f' is femto "
                        "(1e-15), 'meg' is 1e6, 'm' is milli"
                    ),
                )
            )
        if isinstance(element, (VoltageSource, CurrentSource)):
            waveform = element.waveform
            if isinstance(waveform, DC) and abs(waveform.level) > 1e6:
                unit = "V" if isinstance(element, VoltageSource) else "A"
                line, source = graph.element_location(element)
                out.append(
                    Diagnostic(
                        severity="warning",
                        check="param-magnitude",
                        message=(
                            f"source {element.name!r} has an "
                            f"implausible DC level of "
                            f"{waveform.level:.3g} {unit}"
                        ),
                        line=line,
                        source=source,
                        subject=element.name,
                        hint="check the engineering suffix on the value",
                    )
                )
    return out


# ----------------------------------------------------------------------
# Text-scope checks
# ----------------------------------------------------------------------


def _card_node_tokens(fields: list[str]) -> list[str]:
    """Node-position tokens of one element card (best effort)."""
    if not fields or fields[0].startswith("."):
        return []
    letter = fields[0][0].upper()
    if letter in "RCLVID":
        return fields[1:3]
    if letter == "M":
        return fields[1:4]
    if letter == "X":
        bare = [f for f in fields[1:] if "=" not in f]
        return bare[:-1] if len(bare) > 1 else []
    return []


@register_check(
    "dangling-subckt-port",
    severity="warning",
    scope="text",
    title="a .SUBCKT port is never used inside its body",
)
def _check_dangling_port(context: TextContext) -> list[Diagnostic]:
    from repro.circuit.parser import _split_fields

    out = []
    for definition in context.subckts.values():
        used: set[str] = set()
        for _, body_line in definition.body:
            used.update(_card_node_tokens(_split_fields(body_line)))
        for port in definition.ports:
            if port in used:
                continue
            out.append(
                Diagnostic(
                    severity="warning",
                    check="dangling-subckt-port",
                    message=(
                        f"port {port!r} of .SUBCKT "
                        f"{definition.name!r} is never used inside "
                        f"the body; every instance leaves that "
                        f"terminal unconnected"
                    ),
                    line=definition.line_number,
                    source=definition.line,
                    subject=f"{definition.name}.{port}",
                    hint=(
                        f"wire {port!r} inside the body or drop it "
                        f"from the port list"
                    ),
                )
            )
    return out


@register_check(
    "unused-subckt",
    severity="info",
    scope="text",
    title="a .SUBCKT is defined but never instantiated",
)
def _check_unused_subckt(context: TextContext) -> list[Diagnostic]:
    from repro.circuit.parser import _split_fields

    referenced: set[str] = set()
    bodies = [context.top]
    bodies.extend(d.body for d in context.subckts.values())
    for lines in bodies:
        for _, line in lines:
            fields = _split_fields(line)
            if not fields or fields[0][0].upper() != "X":
                continue
            bare = [f for f in fields[1:] if "=" not in f]
            if bare:
                referenced.add(bare[-1].lower())
    out = []
    for definition in context.subckts.values():
        if definition.name in referenced:
            continue
        out.append(
            Diagnostic(
                severity="info",
                check="unused-subckt",
                message=(
                    f".SUBCKT {definition.name!r} is defined but "
                    f"never instantiated"
                ),
                line=definition.line_number,
                source=definition.line,
                subject=definition.name,
                hint=(
                    f"instantiate it with an X card or delete the "
                    f"definition"
                ),
            )
        )
    return out
