"""Topology view of a flattened :class:`~repro.circuit.Circuit`.

The checks in :mod:`repro.lint.checks` never walk element lists
themselves — they query a :class:`CircuitGraph`, which precomputes the
structural facts the MNA assembler would discover the hard way (by
factorizing):

* which elements touch each node (ground aliases merged into ``"0"``),
* the *DC-conductive* adjacency — edges through which direct current
  can flow: resistors, voltage sources, inductors (shorts at DC),
  two-terminal devices and MOSFET drain-source channels.  Capacitors
  and current sources are **not** conductive edges: a capacitor blocks
  DC and a current source constrains a current without providing a
  voltage-defining path,
* structural occupancy of each node's MNA conductance row — a node
  with an all-zero ``G`` row makes every operating-point factorization
  singular no matter the element values,
* element → netlist-line provenance, so graph-level diagnostics can
  point at real source lines.

Self-loop elements (both terminals on one node) are excluded from
occupancy and adjacency: their stamps cancel, so structurally they
contribute nothing.
"""

from __future__ import annotations

from repro.circuit.elements import (
    Capacitor,
    Element,
    Inductor,
    MosfetInstance,
    Resistor,
    TwoTerminalDeviceInstance,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, is_ground

__all__ = ["GROUND", "CircuitGraph", "conductive_pairs"]

#: Canonical name for the merged reference node.
GROUND = "0"


def _canon(node: str) -> str:
    """Merge every ground alias (``gnd``, ``GND``...) into ``"0"``."""
    return GROUND if is_ground(node) else node


def conductive_pairs(element: Element) -> list[tuple[str, str]]:
    """DC-conductive node pairs contributed by *element* (canonical).

    Returns an empty list for capacitors and current sources, the
    drain-source pair for MOSFETs (the gate draws no DC current), and
    the terminal pair for everything else.
    """
    if isinstance(element, MosfetInstance):
        return [(_canon(element.drain), _canon(element.source))]
    if isinstance(
        element,
        (Resistor, VoltageSource, Inductor, TwoTerminalDeviceInstance),
    ):
        return [(_canon(element.nodes[0]), _canon(element.nodes[1]))]
    return []


class CircuitGraph:
    """Structural index over a circuit, plus optional line provenance.

    Parameters
    ----------
    circuit:
        The flattened circuit to index.
    provenance:
        Optional mapping ``element name -> (line_number, source_line)``
        as produced by ``parse_netlist(..., provenance=...)``.  Without
        it, diagnostics simply carry ``line=None``.
    """

    def __init__(
        self,
        circuit: Circuit,
        provenance: dict[str, tuple[int, str]] | None = None,
    ) -> None:
        self.circuit = circuit
        self.provenance = dict(provenance or {})
        self.node_elements: dict[str, list[Element]] = {
            node: [] for node in circuit.nodes
        }
        self.ground_elements: list[Element] = []
        self._terminal_count: dict[str, int] = {}
        self._adjacency: dict[str, set[str]] = {}
        self._occupied: set[str] = set()
        for element in circuit.elements():
            touched: set[str] = set()
            for node in element.nodes:
                canonical = _canon(node)
                if canonical == GROUND:
                    if element not in self.ground_elements:
                        self.ground_elements.append(element)
                else:
                    if canonical not in touched:
                        self.node_elements[canonical].append(element)
                    touched.add(canonical)
                    self._terminal_count[canonical] = (
                        self._terminal_count.get(canonical, 0) + 1
                    )
            for a, b in conductive_pairs(element):
                if a == b:
                    continue  # self-loop: stamps cancel structurally
                self._adjacency.setdefault(a, set()).add(b)
                self._adjacency.setdefault(b, set()).add(a)
                self._occupied.update((a, b))
        self.has_ground = bool(self.ground_elements)
        self._reachable: set[str] | None = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def nodes(self) -> tuple[str, ...]:
        """Non-ground canonical node names in first-appearance order."""
        return tuple(self.node_elements)

    def elements_at(self, node: str) -> list[Element]:
        """Elements with at least one terminal on *node* (non-ground)."""
        return list(self.node_elements.get(_canon(node), []))

    def terminal_count(self, node: str) -> int:
        """Number of element terminals attached to *node*."""
        return self._terminal_count.get(_canon(node), 0)

    def has_structural_g_row(self, node: str) -> bool:
        """True when the node's MNA ``G`` row has any structural entry.

        Resistors, devices and MOSFET channels stamp conductances;
        voltage-source and inductor branches stamp ``±1`` incidence
        terms.  Capacitor-only and current-source-only nodes — and
        nodes touched solely by self-loops — have all-zero rows.
        """
        return _canon(node) in self._occupied

    def dc_reachable(self) -> set[str]:
        """Nodes reachable from ground through DC-conductive edges.

        Includes ``"0"`` itself; empty when the circuit has no ground
        connection.
        """
        if self._reachable is None:
            self._reachable = set()
            if self.has_ground:
                stack = [GROUND]
                self._reachable.add(GROUND)
                while stack:
                    node = stack.pop()
                    for neighbor in self._adjacency.get(node, ()):
                        if neighbor not in self._reachable:
                            self._reachable.add(neighbor)
                            stack.append(neighbor)
        return set(self._reachable)

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------

    def element_location(
        self, element: Element
    ) -> tuple[int | None, str | None]:
        """``(line_number, source_line)`` for an element, if known."""
        record = self.provenance.get(element.name)
        if record is None:
            return None, None
        return record[0], record[1]

    def node_location(self, node: str) -> tuple[int | None, str | None]:
        """Earliest known source location among a node's elements."""
        best: tuple[int, str] | None = None
        for element in self.elements_at(node):
            record = self.provenance.get(element.name)
            if record is not None and (best is None or record[0] < best[0]):
                best = (record[0], record[1])
        if best is None:
            return None, None
        return best[0], best[1]
