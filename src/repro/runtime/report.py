"""Structured results of a batch run.

A :class:`JobResult` captures one job's outcome — its value on success,
the exception text and traceback on failure, and the wall-clock time
either way — so a failing job never takes the batch down with it.  A
:class:`BatchReport` aggregates the per-job results with batch-level
timing and provides the summary the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class JobResult:
    """Outcome of one batch job.

    Attributes
    ----------
    index:
        Position of the job in the submitted batch (seeding order).
    label:
        Human-readable job label (job's own, or ``job-<index>``).
    ok:
        True when the job ran to completion.
    value:
        The job's return value (e.g. a ``TransientResult`` or
        ``EnsembleStatistics``); ``None`` on failure.
    error:
        ``"ExceptionType: message"`` on failure, ``None`` on success.
    traceback:
        Full formatted traceback text on failure.
    seconds:
        Wall-clock execution time of the job body.  For cached
        results this is the *original* compute time recorded by the
        store, not the (near-zero) lookup time.
    cached:
        True when the value was served from the content-addressed
        result store (:mod:`repro.service`) instead of being computed.
    failure:
        Failure classification — ``"error"`` (the job body raised),
        ``"timeout"`` (the watchdog expired the job) or ``"crash"``
        (the pool worker died); ``None`` on success.
    attempts:
        How many attempts this job consumed (1 = no retries needed).
    """

    index: int
    label: str
    ok: bool
    value: object = None
    error: str | None = None
    traceback: str | None = None
    seconds: float = 0.0
    cached: bool = False
    failure: str | None = None
    attempts: int = 1


@dataclass
class BatchReport:
    """Aggregated outcome of a :class:`~repro.runtime.BatchRunner` run."""

    results: list[JobResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    executor: str = "serial"
    seed: int = 0

    @property
    def n_jobs(self) -> int:
        return len(self.results)

    @property
    def n_ok(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def n_failed(self) -> int:
        return self.n_jobs - self.n_ok

    @property
    def n_cached(self) -> int:
        """Jobs served from the result cache instead of computed."""
        return sum(1 for r in self.results if r.cached)

    @property
    def n_retried(self) -> int:
        """Jobs that needed more than one attempt."""
        return sum(1 for r in self.results if r.attempts > 1)

    @property
    def n_timeouts(self) -> int:
        """Jobs whose final state is a watchdog timeout."""
        return sum(1 for r in self.results if r.failure == "timeout")

    @property
    def n_crashes(self) -> int:
        """Jobs whose final state is a dead pool worker."""
        return sum(1 for r in self.results if r.failure == "crash")

    @property
    def total_attempts(self) -> int:
        """Attempts consumed across the batch (== n_jobs when clean)."""
        return sum(r.attempts for r in self.results)

    @property
    def ok(self) -> bool:
        """True when every job succeeded."""
        return self.n_failed == 0

    def values(self) -> list:
        """Successful job values, in submission order."""
        return [r.value for r in self.results if r.ok]

    def failures(self) -> list[JobResult]:
        """The failed job results, in submission order."""
        return [r for r in self.results if not r.ok]

    def raise_failures(self) -> None:
        """Raise ``RuntimeError`` summarizing failed jobs, if any."""
        failed = self.failures()
        if failed:
            lines = [f"{len(failed)} of {self.n_jobs} batch jobs failed:"]
            lines += [f"  [{r.index}] {r.label}: {r.error}" for r in failed]
            raise RuntimeError("\n".join(lines))

    def job_seconds(self) -> float:
        """Sum of per-job execution times (serial-equivalent work)."""
        return sum(r.seconds for r in self.results)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        cached = f", {self.n_cached} cached" if self.n_cached else ""
        retried = f", {self.n_retried} retried" if self.n_retried else ""
        lines = [
            f"batch: {self.n_jobs} jobs, {self.n_ok} ok, "
            f"{self.n_failed} failed{cached}{retried} "
            f"({self.executor}, workers={self.workers}, seed={self.seed})",
            f"wall {self.wall_seconds:.3f} s, job time {self.job_seconds():.3f} s",
        ]
        for r in self.results:
            if r.ok:
                status = "ok (cached)" if r.cached else "ok"
            else:
                kind = (r.failure or "error").upper()
                status = f"{kind}: {r.error}"
            if r.attempts > 1:
                status += f" [attempts={r.attempts}]"
            lines.append(f"  [{r.index}] {r.label:<24} {r.seconds:8.3f} s  {status}")
        return "\n".join(lines)
