"""The batch runner: fan simulation jobs across worker processes.

``BatchRunner`` takes a list of jobs (:class:`~repro.runtime.jobs.
TransientJob` / :class:`~repro.runtime.jobs.EnsembleJob`, or anything
with a ``run(seed)`` method and a ``label``) and executes them across a
``concurrent.futures`` pool.  Design points:

deterministic seeding
    One ``numpy.random.SeedSequence(seed)`` is spawned into as many
    children as there are jobs; job *i* always receives child *i*.
    Results are therefore identical for any worker count, including
    fully serial execution — and because retried attempts re-use the
    same child, a recovered job is bit-identical to an undisturbed run.
failure isolation
    Exceptions are caught inside the worker and returned as structured
    :class:`~repro.runtime.report.JobResult` failures, so one bad job
    cannot take down the batch.
timeouts and the watchdog
    With ``timeout=`` set, a deadline is tracked per in-flight job.  A
    job that runs past it gets a structured ``timeout`` failure; on the
    process executor the hung worker (and its pool) is killed outright
    so a stuck factorization cannot stall the batch, and collateral
    jobs from the torn-down pool are retried.  Threads cannot be
    killed, so the thread executor detects and abandons; the serial
    path cannot preempt at all.
bounded retries
    ``retries=`` (an int or a :class:`~repro.resilience.RetryPolicy`)
    re-runs timeouts, worker crashes, and transient solver failures in
    fresh rounds with seeded exponential backoff between rounds.
fault injection
    A :class:`~repro.resilience.FaultPlan` passed as ``fault_plan=``
    travels (pickled) into every worker invocation, injecting
    deterministic crashes/hangs/transient failures for chaos tests.
executor choice
    ``"process"`` (default) for CPU-bound simulation fan-out,
    ``"thread"`` for debugging under one interpreter, ``"serial"`` for
    an in-process reference run with identical semantics.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

import numpy as np

from repro.errors import (
    AnalysisError,
    JobTimeoutError,
    SingularMatrixError,
    WorkerCrashError,
)
from repro.resilience.faults import fault_context
from repro.resilience.retry import RetryPolicy
from repro.runtime.report import BatchReport, JobResult

_EXECUTORS = ("process", "thread", "serial")

#: Exception type names whose failures are worth retrying: watchdog and
#: pool faults, plus the transient solver-failure classes.
RETRYABLE_ERRORS = (
    "JobTimeoutError",
    "WorkerCrashError",
    "SingularMatrixError",
    "ConvergenceError",
)


def _job_label(job, index: int) -> str:
    label = getattr(job, "label", "") or ""
    return label if label else f"job-{index}"


def retryable_failure(result: JobResult) -> bool:
    """Is this failed :class:`JobResult` worth another attempt?

    Timeouts and worker crashes always are; plain errors only when the
    exception class is one of :data:`RETRYABLE_ERRORS`.
    """
    if result.failure in ("timeout", "crash"):
        return True
    error = result.error or ""
    return error.startswith(RETRYABLE_ERRORS)


def _classify(exc: Exception) -> str:
    """Map an exception to a JobResult failure kind."""
    if isinstance(exc, JobTimeoutError):
        return "timeout"
    if isinstance(exc, WorkerCrashError):
        return "crash"
    return "error"


def _execute_job(
    job,
    index: int,
    label: str,
    seed: np.random.SeedSequence,
    fault_plan=None,
    attempt: int = 1,
    real_faults: bool = False,
) -> JobResult:
    """Run one job, capturing value/exception and wall time.

    Module-level so it pickles under every multiprocessing start method.
    When a :class:`~repro.resilience.FaultPlan` is supplied it is
    consulted before the job body runs: with ``real_faults`` (process
    executor) an injected crash actually kills this worker process and
    an injected hang actually sleeps past the watchdog; elsewhere both
    are simulated by raising the matching error class, since threads
    cannot be killed and the serial path cannot be preempted.
    """
    start = time.perf_counter()
    try:
        with fault_context(fault_plan):
            if fault_plan is not None:
                kind = fault_plan.worker_fault(label, attempt)
                if kind == "crash":
                    if real_faults:
                        os._exit(137)
                    raise WorkerCrashError(
                        f"injected worker crash (job {label!r}, attempt {attempt})"
                    )
                if kind == "hang":
                    if real_faults:
                        time.sleep(fault_plan.hang_seconds)
                    else:
                        raise JobTimeoutError(
                            f"injected hang (job {label!r}, attempt {attempt})"
                        )
                if kind == "transient":
                    raise SingularMatrixError(
                        f"injected transient solver failure "
                        f"(job {label!r}, attempt {attempt})"
                    )
            value = job.run(seed)
    except Exception as exc:  # noqa: BLE001 - structured failure capture
        return JobResult(
            index=index,
            label=label,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            seconds=time.perf_counter() - start,
            failure=_classify(exc),
        )
    return JobResult(
        index=index,
        label=label,
        ok=True,
        value=value,
        seconds=time.perf_counter() - start,
    )


def default_worker_count() -> int:
    """Usable CPU count (honours scheduler affinity where exposed)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        return os.cpu_count() or 1


class BatchRunner:
    """Fan a list of simulation jobs across workers.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the usable CPU count.
    executor:
        ``"process"``, ``"thread"`` or ``"serial"``.
    seed:
        Base entropy for the per-job ``SeedSequence`` spawn.  ``None``
        (default) draws fresh OS entropy, so repeated batches are
        statistically independent; the drawn value is recorded in
        ``BatchReport.seed`` so any batch can still be replayed.
    timeout:
        Per-job wall-clock budget in seconds.  ``None`` (default)
        disables the watchdog.  Enforced by killing hung workers on
        the process executor; detection-only on threads; advisory on
        the serial path (a running job cannot be preempted in-process).
    retries:
        ``None`` (no retries), an int (that many *extra* attempts per
        job), or a :class:`~repro.resilience.RetryPolicy`.  Only
        timeouts, worker crashes, and transient solver failures
        (:data:`RETRYABLE_ERRORS`) are retried; a deterministic job
        error fails immediately.
    fault_plan:
        A :class:`~repro.resilience.FaultPlan` to inject deterministic
        faults into every worker invocation (chaos testing only).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        executor: str = "process",
        seed: int | None = None,
        timeout: float | None = None,
        retries=None,
        fault_plan=None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise AnalysisError(
                f"unknown executor {executor!r} (expected one of "
                f"{', '.join(_EXECUTORS)})"
            )
        if max_workers is not None and max_workers < 1:
            raise AnalysisError(f"max_workers must be >= 1, got {max_workers!r}")
        if timeout is not None and timeout <= 0:
            raise AnalysisError(f"timeout must be > 0, got {timeout!r}")
        self.max_workers = max_workers or default_worker_count()
        self.executor = executor
        self.seed = int(np.random.SeedSequence().entropy) if seed is None else seed
        self.timeout = timeout
        self.retry_policy = RetryPolicy.resolve(retries)
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------

    def run(self, jobs, seeds=None, on_result=None) -> BatchReport:
        """Execute *jobs*; returns the aggregated :class:`BatchReport`.

        *seeds* overrides the positional ``SeedSequence`` spawn with an
        explicit per-job seed list (one entry per job).  The cache
        layer (:func:`repro.service.run_batch_cached`) uses this to
        execute a miss subset under the seeds the jobs would have
        received in the full batch, keeping results independent of
        cache state.

        *on_result* is called with each job's **final**
        :class:`~repro.runtime.report.JobResult` as soon as it is known
        (success, exhausted retries, or non-retryable failure) — the
        hook incremental checkpointing publishes through.  Callback
        order follows completion, not submission.
        """
        jobs = list(jobs)
        if seeds is None:
            seeds = np.random.SeedSequence(self.seed).spawn(max(len(jobs), 1))
        else:
            seeds = list(seeds)
            if len(seeds) < len(jobs):
                raise AnalysisError(
                    f"seeds= needs one entry per job: got {len(seeds)} "
                    f"for {len(jobs)} jobs"
                )
        labels = [_job_label(job, k) for k, job in enumerate(jobs)]
        serial = (
            self.executor == "serial" or self.max_workers == 1 or len(jobs) <= 1
        )
        start = time.perf_counter()
        results: list[JobResult | None] = [None] * len(jobs)
        pending = list(range(len(jobs)))
        attempt = 0
        reported: set[int] = set()
        while pending:
            attempt += 1

            def checkpoint(k: int, result: JobResult, now=attempt) -> None:
                # Successes are always terminal: report them the moment
                # they land, not at the end of the round, so an
                # interrupted run leaves every completed job published.
                result.attempts = now
                reported.add(k)
                if on_result is not None:
                    on_result(result)

            if serial:
                round_results = {}
                for k in pending:
                    round_results[k] = _execute_job(
                        jobs[k], k, labels[k], seeds[k], self.fault_plan, attempt
                    )
                    if round_results[k].ok:
                        checkpoint(k, round_results[k])
            else:
                round_results = self._run_pool(
                    pending, jobs, labels, seeds, attempt, checkpoint
                )
            retry_next = []
            for k in pending:
                result = round_results.get(k)
                if result is None:  # defensive: a lost job is a crash
                    result = JobResult(
                        index=k,
                        label=labels[k],
                        ok=False,
                        error="WorkerCrashError: job was lost by the pool",
                        failure="crash",
                    )
                if k in reported:
                    results[k] = result
                    continue
                result.attempts = attempt
                if (
                    not result.ok
                    and attempt < self.retry_policy.max_attempts
                    and retryable_failure(result)
                ):
                    retry_next.append(k)
                    continue
                results[k] = result
                if on_result is not None:
                    on_result(result)
            pending = retry_next
            if pending:
                delay = self.retry_policy.delay(attempt, self.seed)
                if delay > 0:
                    time.sleep(delay)
        return BatchReport(
            results=[r for r in results if r is not None],
            wall_seconds=time.perf_counter() - start,
            workers=1 if serial else self.max_workers,
            executor="serial" if serial else self.executor,
            seed=self.seed,
        )

    def _run_pool(
        self, indices, jobs, labels, seeds, attempt, checkpoint=None
    ) -> dict:
        """Run one round of *indices* in a fresh pool; returns {k: result}.

        A fresh pool per round means a pool broken by a crashed worker
        in round N is simply replaced for round N+1, and faulted state
        never leaks across attempts.  *checkpoint* (if given) is called
        with ``(k, result)`` for each successful result as its future
        completes — the per-job publish hook behind checkpoint/resume.
        """
        real = self.executor == "process"
        pool_class = ProcessPoolExecutor if real else ThreadPoolExecutor
        results: dict[int, JobResult] = {}
        pool = pool_class(max_workers=min(self.max_workers, len(indices)))
        abandoned = False
        try:
            futures: dict = {}
            deadlines: dict = {}
            for k in indices:
                try:
                    future = pool.submit(
                        _execute_job,
                        jobs[k],
                        k,
                        labels[k],
                        seeds[k],
                        self.fault_plan,
                        attempt,
                        real,
                    )
                except Exception as exc:  # unpicklable job, pool broken...
                    results[k] = JobResult(
                        index=k,
                        label=labels[k],
                        ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc(),
                    )
                    continue
                futures[future] = k
                if self.timeout is not None:
                    deadlines[future] = time.monotonic() + self.timeout
            pending = set(futures)
            while pending:
                wait_for = None
                if self.timeout is not None:
                    wait_for = max(
                        0.0,
                        min(deadlines[f] for f in pending) - time.monotonic(),
                    )
                done, pending = wait(
                    pending, timeout=wait_for, return_when=FIRST_COMPLETED
                )
                for future in done:
                    k = futures[future]
                    try:
                        results[k] = future.result()
                    except Exception as exc:  # worker crash, result unpickle
                        results[k] = JobResult(
                            index=k,
                            label=labels[k],
                            ok=False,
                            error=f"{type(exc).__name__}: {exc}",
                            traceback=traceback.format_exc(),
                            failure="crash",
                        )
                    if results[k].ok and checkpoint is not None:
                        checkpoint(k, results[k])
                if self.timeout is None or not pending:
                    continue
                now = time.monotonic()
                overdue = [f for f in pending if now >= deadlines[f]]
                if not overdue:
                    continue
                hung = []
                for future in overdue:
                    k = futures[future]
                    pending.discard(future)
                    if future.cancel():
                        # Never started: the pool was stalled by another
                        # hung job ahead of it.  Still a timeout — the
                        # job ran out of wall-clock budget — and retryable.
                        error = (
                            f"JobTimeoutError: cancelled after {self.timeout}s "
                            "without starting (pool stalled)"
                        )
                    else:
                        hung.append(future)
                        error = (
                            f"JobTimeoutError: exceeded {self.timeout}s "
                            "wall-clock timeout"
                        )
                    results[k] = JobResult(
                        index=k,
                        label=labels[k],
                        ok=False,
                        error=error,
                        seconds=self.timeout,
                        failure="timeout",
                    )
                if hung and real:
                    # The hung workers cannot be recovered individually:
                    # kill the whole pool.  Unfinished collateral jobs
                    # become retryable crash failures.
                    self._kill_pool(pool)
                    abandoned = True
                    for future in pending:
                        k = futures[future]
                        results[k] = JobResult(
                            index=k,
                            label=labels[k],
                            ok=False,
                            error=(
                                "WorkerCrashError: pool torn down after a "
                                "hung worker was killed"
                            ),
                            failure="crash",
                        )
                    pending = set()
                elif hung:
                    # Threads cannot be killed: stop waiting for the hung
                    # ones and let the pool be abandoned at shutdown.
                    abandoned = True
        finally:
            if abandoned:
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
        return results

    @staticmethod
    def _kill_pool(pool) -> None:
        """Forcibly terminate every worker of a process pool.

        SIGKILL, not SIGTERM: a worker hung inside native code (a stuck
        SuperLU factorization) never runs Python signal handlers.
        """
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.kill()
        for process in processes:
            process.join(timeout=5.0)
