"""The batch runner: fan simulation jobs across worker processes.

``BatchRunner`` takes a list of jobs (:class:`~repro.runtime.jobs.
TransientJob` / :class:`~repro.runtime.jobs.EnsembleJob`, or anything
with a ``run(seed)`` method and a ``label``) and executes them across a
``concurrent.futures`` pool.  Design points:

deterministic seeding
    One ``numpy.random.SeedSequence(seed)`` is spawned into as many
    children as there are jobs; job *i* always receives child *i*.
    Results are therefore identical for any worker count, including
    fully serial execution.
failure isolation
    Exceptions are caught inside the worker and returned as structured
    :class:`~repro.runtime.report.JobResult` failures, so one bad job
    cannot take down the batch.
executor choice
    ``"process"`` (default) for CPU-bound simulation fan-out,
    ``"thread"`` for debugging under one interpreter, ``"serial"`` for
    an in-process reference run with identical semantics.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

import numpy as np

from repro.errors import AnalysisError
from repro.runtime.report import BatchReport, JobResult

_EXECUTORS = ("process", "thread", "serial")


def _job_label(job, index: int) -> str:
    label = getattr(job, "label", "") or ""
    return label if label else f"job-{index}"


def _execute_job(
    job, index: int, label: str, seed: np.random.SeedSequence
) -> JobResult:
    """Run one job, capturing value/exception and wall time.

    Module-level so it pickles under every multiprocessing start method.
    """
    start = time.perf_counter()
    try:
        value = job.run(seed)
    except Exception as exc:  # noqa: BLE001 - structured failure capture
        return JobResult(
            index=index,
            label=label,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            seconds=time.perf_counter() - start,
        )
    return JobResult(
        index=index,
        label=label,
        ok=True,
        value=value,
        seconds=time.perf_counter() - start,
    )


def default_worker_count() -> int:
    """Usable CPU count (honours scheduler affinity where exposed)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        return os.cpu_count() or 1


class BatchRunner:
    """Fan a list of simulation jobs across workers.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the usable CPU count.
    executor:
        ``"process"``, ``"thread"`` or ``"serial"``.
    seed:
        Base entropy for the per-job ``SeedSequence`` spawn.  ``None``
        (default) draws fresh OS entropy, so repeated batches are
        statistically independent; the drawn value is recorded in
        ``BatchReport.seed`` so any batch can still be replayed.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        executor: str = "process",
        seed: int | None = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise AnalysisError(
                f"unknown executor {executor!r} (expected one of "
                f"{', '.join(_EXECUTORS)})"
            )
        if max_workers is not None and max_workers < 1:
            raise AnalysisError(f"max_workers must be >= 1, got {max_workers!r}")
        self.max_workers = max_workers or default_worker_count()
        self.executor = executor
        self.seed = int(np.random.SeedSequence().entropy) if seed is None else seed

    # ------------------------------------------------------------------

    def run(self, jobs, seeds=None) -> BatchReport:
        """Execute *jobs*; returns the aggregated :class:`BatchReport`.

        *seeds* overrides the positional ``SeedSequence`` spawn with an
        explicit per-job seed list (one entry per job).  The cache
        layer (:func:`repro.service.run_batch_cached`) uses this to
        execute a miss subset under the seeds the jobs would have
        received in the full batch, keeping results independent of
        cache state.
        """
        jobs = list(jobs)
        if seeds is None:
            seeds = np.random.SeedSequence(self.seed).spawn(max(len(jobs), 1))
        else:
            seeds = list(seeds)
            if len(seeds) < len(jobs):
                raise AnalysisError(
                    f"seeds= needs one entry per job: got {len(seeds)} "
                    f"for {len(jobs)} jobs"
                )
        labels = [_job_label(job, k) for k, job in enumerate(jobs)]
        start = time.perf_counter()
        if self.executor == "serial" or self.max_workers == 1 or len(jobs) <= 1:
            results = [
                _execute_job(job, k, labels[k], seeds[k]) for k, job in enumerate(jobs)
            ]
            executor_used = "serial"
        else:
            results = self._run_pool(jobs, labels, seeds)
            executor_used = self.executor
        return BatchReport(
            results=results,
            wall_seconds=time.perf_counter() - start,
            workers=self.max_workers if executor_used != "serial" else 1,
            executor=executor_used,
            seed=self.seed,
        )

    def _run_pool(self, jobs, labels, seeds) -> list[JobResult]:
        pool_class = (
            ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        )
        results: list[JobResult | None] = [None] * len(jobs)
        with pool_class(max_workers=self.max_workers) as pool:
            futures = {}
            for k, job in enumerate(jobs):
                try:
                    future = pool.submit(_execute_job, job, k, labels[k], seeds[k])
                except Exception as exc:  # unpicklable job, pool broken...
                    results[k] = JobResult(
                        index=k,
                        label=labels[k],
                        ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc(),
                    )
                    continue
                futures[future] = k
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    k = futures[future]
                    try:
                        results[k] = future.result()
                    except Exception as exc:  # worker crash, result unpickle
                        results[k] = JobResult(
                            index=k,
                            label=labels[k],
                            ok=False,
                            error=f"{type(exc).__name__}: {exc}",
                            traceback=traceback.format_exc(),
                        )
        return [r for r in results if r is not None]
