"""Batched simulation runtime.

Fans independent simulation jobs — transient runs of whole circuits, or
seeded stochastic ensembles — across worker processes, with
deterministic per-job RNG seeding (``SeedSequence.spawn``), structured
per-job failure capture and a CLI entry point
(``python -m repro.runtime jobs.toml``).

Quick start::

    from repro.runtime import BatchRunner, TransientJob

    jobs = [
        TransientJob(builder="rtd_divider", params={"resistance": r},
                     t_stop=1e-9, label=f"R={r}")
        for r in (5.0, 10.0, 50.0, 300.0)
    ]
    report = BatchRunner(max_workers=4).run(jobs)
    report.raise_failures()
    waveforms = report.values()
"""

from repro.runtime.jobs import (
    ACJob,
    EnsembleJob,
    EnsembleTransientJob,
    PSSJob,
    SDE_BUILDERS,
    TransientJob,
    job_from_mapping,
)
from repro.runtime.report import BatchReport, JobResult
from repro.runtime.runner import BatchRunner, default_worker_count

__all__ = [
    "ACJob",
    "BatchReport",
    "BatchRunner",
    "EnsembleJob",
    "EnsembleTransientJob",
    "JobResult",
    "PSSJob",
    "SDE_BUILDERS",
    "TransientJob",
    "default_worker_count",
    "job_from_mapping",
]
