"""Command-line entry point: ``python -m repro.runtime jobs.toml``.

The job-spec file is TOML (Python 3.11+, via :mod:`tomllib`) or JSON
(any version).  Schema::

    [batch]                # all keys optional
    workers = 4
    executor = "process"   # process | thread | serial
    seed = 42
    timeout = 120.0        # per-job wall-clock limit (seconds)
    retries = 2            # extra attempts for transient failures

    [[jobs]]
    type = "transient"     # default
    label = "inverter"
    circuit = "fet_rtd_inverter"   # repro.circuits_lib builder name
    t_stop = 1e-8
    engine = "swec"                # swec | spice | mla | aces
    backend = "auto"               # SWEC solver backend: dense |
                                   # sparse | stack | auto
    [jobs.params]                  # builder keyword arguments
    [jobs.options]                 # flat engine + step-control options
    epsilon = 0.05
    h_max = 2e-10

    [[jobs]]
    type = "ensemble"
    label = "noise-band"
    sde = "noisy_rc_node"          # SDE builder name
    t_final = 5e-9
    steps = 2000
    n_paths = 400

    [[jobs]]
    type = "ensemble_transient"    # K instances per batched solve
    label = "inverter-corners"
    circuit = "fet_rtd_inverter"
    t_stop = 2e-8
    steps = 400                    # fixed grid (required with noise)
    node = "out"                   # reduce to EnsembleStatistics
    variations = [                 # and/or n_instances = K
        { load_capacitance = 0.5e-12 },
        { load_capacitance = 2e-12 },
    ]

Noisy ensemble jobs accept the variance-reduction knobs of
:mod:`repro.stochastic.vr` — ``antithetic``, ``target_ci``,
``target_rel_ci``, ``max_trials``, ``batch_size`` and (for
``ensemble_transient``) ``control_variate`` — either as job keys or as
the ``--antithetic``/``--control-variate``/``--target-ci``/
``--target-rel-ci``/``--max-trials`` command-line overrides, which
apply to every ensemble job in the spec.

The exit status is 0 when every job succeeded, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import AnalysisError
from repro.runtime.jobs import job_from_mapping
from repro.runtime.runner import BatchRunner

try:
    import tomllib
except ImportError:  # Python 3.10: TOML specs need 3.11+, JSON always works
    tomllib = None


def load_spec(path: str | Path) -> dict:
    """Parse a ``.toml`` or ``.json`` job-spec file."""
    path = Path(path)
    if not path.exists():
        raise AnalysisError(f"job-spec file not found: {path}")
    if path.suffix.lower() == ".json":
        return json.loads(path.read_text())
    if tomllib is None:
        raise AnalysisError(
            "TOML job specs need Python 3.11+ (tomllib); "
            "use a .json spec on older interpreters"
        )
    with open(path, "rb") as handle:
        return tomllib.load(handle)


def jobs_from_spec(spec: dict) -> list:
    """Build the job list from a deserialized spec."""
    tables = spec.get("jobs", [])
    if not tables:
        raise AnalysisError("job-spec file defines no [[jobs]] entries")
    return [job_from_mapping(table) for table in tables]


def apply_vr_overrides(
    jobs: list,
    *,
    antithetic: bool = False,
    control_variate: bool = False,
    target_ci: float | None = None,
    target_rel_ci: float | None = None,
    max_trials: int | None = None,
) -> list:
    """Apply command-line variance-reduction knobs to ensemble jobs.

    Overrides land on every :class:`~repro.runtime.jobs.EnsembleJob`
    and :class:`~repro.runtime.jobs.EnsembleTransientJob` in the spec
    (``control_variate`` on the latter only — SDE ensembles are linear
    by construction, so a linearized control is the signal itself).
    Other job types pass through untouched; a spec with no ensemble
    job at all is an error, because the flags would silently do
    nothing.
    """
    import dataclasses

    from repro.runtime.jobs import EnsembleJob, EnsembleTransientJob

    overrides = {
        key: value
        for key, value in (
            ("target_ci", target_ci),
            ("target_rel_ci", target_rel_ci),
            ("max_trials", max_trials),
        )
        if value is not None
    }
    if antithetic:
        overrides["antithetic"] = True
    if not overrides and not control_variate:
        return jobs
    updated = []
    touched = 0
    for job in jobs:
        if isinstance(job, EnsembleTransientJob):
            extra = {"control_variate": True} if control_variate else {}
            job = dataclasses.replace(job, **overrides, **extra)
            touched += 1
        elif isinstance(job, EnsembleJob):
            if control_variate:
                raise AnalysisError(
                    "--control-variate applies to ensemble_transient "
                    "jobs (SDE ensembles are linear, so the linearized "
                    "control is the signal itself)"
                )
            job = dataclasses.replace(job, **overrides)
            touched += 1
        updated.append(job)
    if not touched:
        raise AnalysisError(
            "variance-reduction flags (--antithetic/--control-variate/"
            "--target-ci/--target-rel-ci/--max-trials) need at least "
            "one ensemble or ensemble_transient job in the spec"
        )
    return updated


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Run a batch of Nano-Sim simulation jobs in parallel.",
    )
    parser.add_argument("spec", help="job-spec file (.toml or .json)")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count (default: [batch].workers, else CPU count)",
    )
    parser.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default=None,
        help="execution backend (default: [batch].executor, else process)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base RNG seed (default: [batch].seed, else 0)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-job wall-clock limit; a hung worker is killed and the "
            "job retried or failed (default: [batch].timeout, else none)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "extra attempts for jobs failing with transient errors — "
            "timeouts, worker crashes, singular factorizations "
            "(default: [batch].retries, else 0); retried jobs re-run "
            "under their original seeds, so results are bit-identical"
        ),
    )
    parser.add_argument(
        "--antithetic",
        action="store_true",
        help=(
            "simulate mirrored path pairs in every ensemble job "
            "(exact variance elimination for linear responses)"
        ),
    )
    parser.add_argument(
        "--control-variate",
        action="store_true",
        help=(
            "pair each ensemble_transient path with a linearized-"
            "circuit control driven by the same noise"
        ),
    )
    parser.add_argument(
        "--target-ci",
        type=float,
        default=None,
        metavar="WIDTH",
        help=(
            "stop ensemble jobs early once the confidence-interval "
            "half-width is at most WIDTH (absolute units)"
        ),
    )
    parser.add_argument(
        "--target-rel-ci",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "stop ensemble jobs early once the CI half-width is at "
            "most FRACTION of the peak mean magnitude"
        ),
    )
    parser.add_argument(
        "--max-trials",
        type=int,
        default=None,
        metavar="K",
        help="adaptive-stopping backstop: never simulate more than K paths",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help=(
            "consult the content-addressed result store before running "
            "each job (PATH, or the default store with no argument)"
        ),
    )
    args = parser.parse_args(argv)

    try:
        spec = load_spec(args.spec)
        jobs = jobs_from_spec(spec)
        jobs = apply_vr_overrides(
            jobs,
            antithetic=args.antithetic,
            control_variate=args.control_variate,
            target_ci=args.target_ci,
            target_rel_ci=args.target_rel_ci,
            max_trials=args.max_trials,
        )
        batch = spec.get("batch", {})
        if not isinstance(batch, dict):
            raise AnalysisError(f"[batch] must be a table, got {batch!r}")
        runner = BatchRunner(
            max_workers=(
                args.workers if args.workers is not None else batch.get("workers")
            ),
            executor=(
                args.executor
                if args.executor is not None
                else batch.get("executor", "process")
            ),
            seed=args.seed if args.seed is not None else batch.get("seed", 0),
            timeout=(
                args.timeout if args.timeout is not None else batch.get("timeout")
            ),
            retries=(
                args.retries if args.retries is not None else batch.get("retries")
            ),
        )
    except (AnalysisError, TypeError, ValueError) as exc:
        # ValueError covers json.JSONDecodeError and tomllib.TOMLDecodeError.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.cache is not None:
        from repro.service import ResultStore, run_batch_cached

        report = run_batch_cached(runner, jobs, ResultStore.resolve(args.cache))
    else:
        report = runner.run(jobs)
    print(report.summary())
    for result in report.results:
        value = result.value
        if result.ok and hasattr(value, "stopped_early"):
            print(
                f"  vr[{result.index}] {result.label}: "
                f"n_simulated={value.n_simulated} "
                f"n_batches={value.n_batches} "
                f"stopped_early={value.stopped_early} "
                f"variance_reduction={value.variance_reduction:.3g}"
            )
    for result in report.failures():
        if result.traceback:
            print(
                f"\n--- traceback [{result.index}] {result.label} ---",
                file=sys.stderr,
            )
            print(result.traceback, file=sys.stderr)
    return 0 if report.ok else 1
