"""Job specifications for the batch runtime.

Five job flavours cover the workloads:

* :class:`TransientJob` — one deterministic transient simulation: a
  circuit (given directly or as a builder from
  :mod:`repro.circuits_lib`), an engine name, engine options and a
  ``t_stop``.
* :class:`EnsembleJob` — one seeded stochastic ensemble: an SDE (given
  directly or as a builder), Euler-Maruyama grid parameters and the
  ensemble size.
* :class:`ACJob` — one small-signal frequency sweep
  (:mod:`repro.ac`): a circuit plus the frequency grid, the AC-driven
  source and optional DC bias overrides.
* :class:`EnsembleTransientJob` — K same-topology circuit instances
  marched in lockstep by
  :class:`~repro.swec.ensemble.SwecEnsembleTransient`: per-instance
  parameter variations and/or seeded circuit-noise realizations, one
  batched solve per time point.
* :class:`PSSJob` — one periodic steady-state shooting analysis
  (:mod:`repro.pss`): the circuit plus period/convergence knobs,
  driven or autonomous.

Jobs are plain picklable dataclasses so they cross process boundaries.
Builders referenced *by name* are resolved inside the worker, which also
side-steps pickling limits of closure-carrying objects such as
:class:`~repro.stochastic.sde.CircuitSDE`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, ClassVar, Mapping, Sequence

import numpy as np

from repro.errors import AnalysisError


def apply_backend(options: Any, backend: str | None):
    """Fold a job-level ``backend=`` into SWEC engine options.

    *options* may be None, a flat mapping (the CLI form) or a built
    :class:`~repro.swec.SwecOptions`; returns the options with
    ``backend`` set (the job-level knob wins over the options table).
    """
    if backend is None:
        return options
    from repro.core.backends import available_backends
    from repro.swec import SwecOptions

    if backend not in available_backends():
        raise AnalysisError(
            f"unknown solver backend {backend!r} "
            f"(available: {', '.join(available_backends())})"
        )
    if options is None:
        return SwecOptions(backend=backend)
    if isinstance(options, Mapping):
        return {**dict(options), "backend": backend}
    return replace(options, backend=backend)


def _resolve_circuit_builder(name: str) -> Callable:
    """Look up a circuit builder by name in :mod:`repro.circuits_lib`."""
    import repro.circuits_lib as lib

    builder = getattr(lib, name, None)
    if builder is None or not callable(builder):
        raise AnalysisError(
            f"unknown circuit builder {name!r} "
            f"(available: {', '.join(lib.__all__)})"
        )
    return builder


def _resolve_sde_builder(name: str) -> Callable:
    """Look up an SDE builder by name."""
    builder = SDE_BUILDERS.get(name)
    if builder is None:
        raise AnalysisError(
            f"unknown SDE builder {name!r} "
            f"(available: {', '.join(sorted(SDE_BUILDERS))})"
        )
    return builder


def _first(value):
    """Unwrap ``(object, info)`` builder conventions."""
    if isinstance(value, tuple):
        return value[0]
    return value


def materialize_circuit(circuit, builder, netlist, params):
    """Shared circuit/builder/netlist resolution for circuit jobs.

    Exactly one of *circuit* (a ready object), *builder* (a callable
    or :mod:`repro.circuits_lib` name) or *netlist* (source text) may
    be non-None; *params* feeds the builder or the ``.PARAM``
    overrides.  The AC CLI uses this directly.
    """
    if circuit is not None:
        return circuit
    if netlist is not None:
        from repro.circuit.parser import parse_netlist

        return parse_netlist(netlist, params=params)
    if isinstance(builder, str):
        builder = _resolve_circuit_builder(builder)
    return _first(builder(**params))


def _linear_sde(
    decay_rate: float = 1.0,
    noise_amplitude: float = 0.1,
    drift_level: float = 0.0,
):
    """Scalar OU-form ``dX = (a - lambda X) dt + sigma dW`` as a LinearSDE."""
    from repro.stochastic.sde import LinearSDE

    return LinearSDE(
        [[-float(decay_rate)]],
        [[float(noise_amplitude)]],
        drift_offset=[float(drift_level)],
    )


def _noisy_rc_sde(**params):
    from repro.circuits_lib import noisy_rc_node

    return noisy_rc_node(**params)[0]


def _noisy_rc_ladder_sde(**params):
    from repro.circuits_lib import noisy_rc_ladder

    return noisy_rc_ladder(**params)[0]


#: SDE builders addressable by name from job-spec files.
SDE_BUILDERS: dict[str, Callable] = {
    "ornstein_uhlenbeck": _linear_sde,
    "noisy_rc_node": _noisy_rc_sde,
    "noisy_rc_ladder": _noisy_rc_ladder_sde,
}


def _swec_options(mapping: Mapping[str, Any]):
    """Build :class:`SwecOptions` from a flat mapping.

    Step-control keys (``epsilon``, ``h_min``, ...) are routed into the
    nested :class:`StepControlOptions`; the rest go to ``SwecOptions``.
    """
    from repro.swec import SwecOptions
    from repro.swec.timestep import StepControlOptions

    step_keys = {f.name for f in fields(StepControlOptions)}
    step_kwargs = {k: v for k, v in mapping.items() if k in step_keys}
    engine_kwargs = {k: v for k, v in mapping.items() if k not in step_keys}
    return SwecOptions(step=StepControlOptions(**step_kwargs), **engine_kwargs)


def _check_validate(mode: str) -> None:
    """Reject bad ``validate=`` values at construction time."""
    if mode not in ("off", "warn", "strict"):
        raise AnalysisError(
            f"validate must be 'off', 'warn' or 'strict', got {mode!r}"
        )


def _enforce_validate(job) -> None:
    """Apply a job's ``validate=`` knob at the top of ``run``."""
    if job.validate != "off":
        from repro.lint.gate import enforce_job_lint

        enforce_job_lint(job, job.validate)


def _engine_factory(engine: str) -> tuple[Callable, Callable]:
    """Return ``(engine_class, options_from_dict)`` for an engine name."""
    if engine == "swec":
        from repro.swec import SwecTransient

        return SwecTransient, _swec_options
    if engine == "spice":
        from repro.baselines import SpiceTransient
        from repro.baselines.spice import SpiceOptions

        return SpiceTransient, lambda m: SpiceOptions(**m)
    if engine == "mla":
        from repro.baselines import MlaTransient
        from repro.baselines.mla import MlaOptions

        return MlaTransient, lambda m: MlaOptions(**m)
    if engine == "aces":
        from repro.baselines import AcesTransient
        from repro.baselines.aces import AcesOptions

        return AcesTransient, lambda m: AcesOptions(**m)
    raise AnalysisError(
        f"unknown engine {engine!r} (expected swec, spice, mla or aces)"
    )


@dataclass
class TransientJob:
    """One deterministic transient simulation.

    Exactly one of ``circuit`` (a ready :class:`~repro.circuit.Circuit`),
    ``builder`` (a callable, or the name of a :mod:`repro.circuits_lib`
    builder, invoked with ``params``) or ``netlist`` (SPICE-dialect
    source text, parsed with ``params`` as ``.PARAM`` overrides inside
    the worker) must be given.  Builders returning ``(circuit, info)``
    tuples are unwrapped.
    """

    #: Spec-file ``type=`` tag; the cache layer records it
    #: with every stored result (:mod:`repro.service`).
    kind: ClassVar[str] = "transient"

    t_stop: float
    circuit: Any = None
    builder: str | Callable | None = None
    netlist: str | None = None
    params: dict = field(default_factory=dict)
    engine: str = "swec"
    options: Any = None
    initial_state: Sequence[float] | None = None
    #: Solver backend for the SWEC engine (``dense``/``sparse``/
    #: ``stack``/``auto``); overrides any ``options`` setting.
    backend: str | None = None
    label: str = ""
    #: Pre-flight lint mode (``off``/``warn``/``strict``); ``strict``
    #: makes ``run`` raise :class:`~repro.errors.LintError` on a
    #: structurally broken design before any engine is built.
    validate: str = "off"

    def __post_init__(self) -> None:
        given = sum(
            source is not None
            for source in (self.circuit, self.builder, self.netlist)
        )
        if given != 1:
            raise AnalysisError(
                "TransientJob needs exactly one of circuit=, builder= "
                "or netlist="
            )
        if self.backend is not None and self.engine != "swec":
            raise AnalysisError(
                f"backend= applies to the swec engine only, not {self.engine!r}"
            )
        _check_validate(self.validate)

    def build_circuit(self):
        """Materialize the circuit this job simulates."""
        return materialize_circuit(
            self.circuit, self.builder, self.netlist, self.params
        )

    def run(self, seed: np.random.SeedSequence | None = None):
        """Execute the job; *seed* is unused (transients are
        deterministic) but accepted for a uniform job interface."""
        _enforce_validate(self)
        engine_class, options_from_dict = _engine_factory(self.engine)
        options = apply_backend(self.options, self.backend)
        if isinstance(options, Mapping):
            options = options_from_dict(dict(options))
        engine = engine_class(self.build_circuit(), options)
        kwargs = {}
        if self.initial_state is not None:
            kwargs["initial_state"] = np.asarray(self.initial_state, float)
        return engine.run(self.t_stop, **kwargs)


@dataclass
class ACJob:
    """One small-signal AC frequency sweep (:mod:`repro.ac`).

    The circuit is given exactly like :class:`TransientJob` (one of
    ``circuit=``, ``builder=`` or ``netlist=``, with ``params``
    resolved inside the worker).  The frequency grid follows
    :func:`repro.ac.frequency_grid`: ``n_points`` on ``scale``
    (``"linear"``/``"log"``, or points per decade with ``"decade"``)
    between ``f_start`` and ``f_stop``.  ``source`` names the
    AC-driven independent source (default: the circuit's first),
    ``bias`` maps source names to DC operating-point overrides, and
    ``dc_options`` configures the bias solve
    (:class:`~repro.swec.dc.SwecDCOptions`, or a flat mapping).
    """

    #: Spec-file ``type=`` tag; the cache layer records it
    #: with every stored result (:mod:`repro.service`).
    kind: ClassVar[str] = "ac"

    f_start: float
    f_stop: float
    circuit: Any = None
    builder: str | Callable | None = None
    netlist: str | None = None
    params: dict = field(default_factory=dict)
    n_points: int = 101
    scale: str = "log"
    source: str | None = None
    bias: dict = field(default_factory=dict)
    dc_options: Any = None
    #: Solver backend for the frequency solves (``stack``/``sparse``/
    #: ``dense``/``auto``); default is the vectorized ``stack`` path.
    backend: str | None = None
    label: str = ""
    #: Pre-flight lint mode (``off``/``warn``/``strict``); see
    #: :class:`TransientJob`.
    validate: str = "off"

    def __post_init__(self) -> None:
        given = sum(
            source is not None
            for source in (self.circuit, self.builder, self.netlist)
        )
        if given != 1:
            raise AnalysisError(
                "ACJob needs exactly one of circuit=, builder= or netlist="
            )
        _check_validate(self.validate)

    def build_circuit(self):
        """Materialize the circuit this job analyses."""
        return materialize_circuit(
            self.circuit, self.builder, self.netlist, self.params
        )

    def run(self, seed: np.random.SeedSequence | None = None):
        """Execute the sweep; *seed* is unused (AC is deterministic)
        but accepted for a uniform job interface.  Returns an
        :class:`~repro.ac.ACResult`."""
        _enforce_validate(self)
        from repro.ac import ACAnalysis, frequency_grid
        from repro.swec.dc import SwecDCOptions

        dc_options = self.dc_options
        if isinstance(dc_options, Mapping):
            dc_options = SwecDCOptions(**dict(dc_options))
        analysis = ACAnalysis(
            self.build_circuit(),
            source=self.source,
            bias=self.bias,
            dc_options=dc_options,
            backend=self.backend,
        )
        return analysis.solve(
            frequency_grid(self.f_start, self.f_stop, self.n_points, self.scale)
        )


@dataclass
class EnsembleJob:
    """One seeded Euler-Maruyama ensemble.

    Exactly one of ``sde`` (a picklable
    :class:`~repro.stochastic.sde.LinearSDE`) or ``builder`` (a callable
    or an :data:`SDE_BUILDERS` name, invoked with ``params`` inside the
    worker) must be given.  The RNG seed is injected by the runner via
    deterministic ``SeedSequence`` spawning, so a batch reproduces
    bit-for-bit at any worker count; ``path_seeds`` instead pins one
    stream per path (one per *pair* with ``antithetic``) — the
    split-invariant form
    :func:`~repro.stochastic.montecarlo.run_ensemble_parallel` uses so
    chunked ensembles are bit-identical at any chunk count.

    Setting ``target_ci`` or ``target_rel_ci`` switches the job to the
    adaptive batched estimator of
    :func:`repro.stochastic.vr.run_sde_ensemble_vr`: paths run in
    ``batch_size`` batches until the confidence-interval target is met,
    with ``max_trials`` (default ``n_paths``) as the backstop.
    """

    #: Spec-file ``type=`` tag; the cache layer records it
    #: with every stored result (:mod:`repro.service`).
    kind: ClassVar[str] = "ensemble"

    t_final: float
    steps: int
    n_paths: int
    sde: Any = None
    builder: str | Callable | None = None
    params: dict = field(default_factory=dict)
    x0: Sequence[float] | None = None
    component: int = 0
    confidence: float = 0.95
    antithetic: bool = False
    return_paths: bool = False
    path_seeds: Any = None
    target_ci: float | None = None
    target_rel_ci: float | None = None
    max_trials: int | None = None
    batch_size: int | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if (self.sde is None) == (self.builder is None):
            raise AnalysisError("EnsembleJob needs exactly one of sde= or builder=")
        if self.path_seeds is not None:
            stride = 2 if self.antithetic else 1
            if len(self.path_seeds) * stride != self.n_paths:
                raise AnalysisError(
                    f"path_seeds carries {len(self.path_seeds)} streams for "
                    f"{self.n_paths} paths (expected one per "
                    f"{'pair' if self.antithetic else 'path'})"
                )
        if self._adaptive and (self.return_paths or self.path_seeds is not None):
            raise AnalysisError(
                "target_ci/target_rel_ci is incompatible with return_paths= "
                "and path_seeds= (the adaptive driver owns the path streams)"
            )

    @property
    def _adaptive(self) -> bool:
        return self.target_ci is not None or self.target_rel_ci is not None

    def build_sde(self):
        """Materialize the SDE this job integrates."""
        if self.sde is not None:
            return self.sde
        builder = self.builder
        if isinstance(builder, str):
            builder = _resolve_sde_builder(builder)
        return _first(builder(**self.params))

    def run(self, seed: np.random.SeedSequence | None = None):
        """Integrate the ensemble; returns
        :class:`~repro.stochastic.montecarlo.EnsembleStatistics`, or the
        raw :class:`~repro.stochastic.em.EMResult` with
        ``return_paths=True``."""
        from repro.stochastic.em import euler_maruyama
        from repro.stochastic.montecarlo import ensemble_statistics

        sde = self.build_sde()
        x0 = (
            np.zeros(sde.dimension)
            if self.x0 is None
            else np.asarray(self.x0, dtype=float)
        )
        if self._adaptive:
            from repro.stochastic.vr import run_sde_ensemble_vr

            return run_sde_ensemble_vr(
                sde,
                x0,
                self.t_final,
                self.steps,
                component=self.component,
                confidence=self.confidence,
                antithetic=self.antithetic,
                target_ci=self.target_ci,
                target_rel_ci=self.target_rel_ci,
                max_trials=self.max_trials or self.n_paths,
                batch_size=self.batch_size,
                seed=seed,
            )
        if self.path_seeds is not None:
            from repro.stochastic.vr import antithetic_normals, path_normals

            draw = antithetic_normals if self.antithetic else path_normals
            normals = draw(self.path_seeds, self.steps, sde.num_noises)
            dw = normals * np.sqrt(self.t_final / self.steps)
            result = euler_maruyama(
                sde, x0, self.t_final, self.steps, n_paths=self.n_paths, dw=dw
            )
        else:
            result = euler_maruyama(
                sde,
                x0,
                self.t_final,
                self.steps,
                n_paths=self.n_paths,
                rng=np.random.default_rng(seed),
                antithetic=self.antithetic,
            )
        if self.return_paths:
            return result
        return ensemble_statistics(
            result.times, result.component(self.component), self.confidence
        )


@dataclass
class EnsembleTransientJob:
    """One lockstep transient ensemble over K same-topology instances.

    The base design is given exactly like :class:`TransientJob` (one
    of ``circuit=``, ``builder=`` or ``netlist=``, with shared
    ``params``).  Instances come from either

    * ``variations`` — a sequence of K per-instance parameter override
      mappings, each merged over ``params`` and fed to the builder /
      ``.PARAM`` substitution inside the worker, and/or
    * ``n_instances`` — a plain replication count (the circuit-noise
      Monte-Carlo form).

    ``steps`` selects the fixed uniform grid of ``steps``
    backward-Euler points over ``[0, t_stop]`` (required when
    ``noise`` injections are present; omitted, the adaptive worst-case
    grid is used).  ``noise`` lists ``(node, amplitude)`` white-noise
    current injections; ``path_seeds`` pins one RNG stream per
    instance (the split-invariant form used by
    :func:`~repro.stochastic.montecarlo.run_circuit_ensemble_parallel`),
    otherwise the runner-provided seed is spawned into K children.

    The job returns the raw
    :class:`~repro.swec.ensemble.EnsembleTransientResult` when
    ``return_result=True`` or ``node`` is unset; with ``node=`` it is
    reduced worker-side to
    :class:`~repro.stochastic.montecarlo.EnsembleStatistics` of that
    node's voltage, so the process boundary carries three small arrays
    instead of the ``(K, T, n)`` stack.

    The variance-reduction knobs mirror
    :func:`~repro.stochastic.montecarlo.run_circuit_ensemble`:
    ``antithetic`` mirrors the Gaussian increments in pairs
    (``path_seeds`` then pins one stream per *pair*), while
    ``control_variate`` and ``target_ci``/``target_rel_ci`` switch the
    job to the adaptive batched estimator of
    :func:`repro.stochastic.vr.run_circuit_ensemble_vr` (which needs
    ``noise``, ``steps`` and ``node``, and returns
    :class:`~repro.stochastic.vr.VarianceReducedStatistics`).  All new
    fields participate in the service-cache fingerprint
    (:func:`repro.service.job_key`) like every other dataclass field.
    """

    #: Spec-file ``type=`` tag; the cache layer records it
    #: with every stored result (:mod:`repro.service`).
    kind: ClassVar[str] = "ensemble_transient"

    t_stop: float
    circuit: Any = None
    builder: str | Callable | None = None
    netlist: str | None = None
    params: dict = field(default_factory=dict)
    variations: Sequence[Mapping[str, Any]] | None = None
    n_instances: int | None = None
    steps: int | None = None
    noise: Any = None
    options: Any = None
    initial_states: Any = None
    node: str | None = None
    confidence: float = 0.95
    return_result: bool = False
    path_seeds: Any = None
    #: Solver backend for the lockstep march (``stack``/``sparse``/
    #: ``dense``/``auto``); overrides any ``options`` setting.
    backend: str | None = None
    control_variate: bool = False
    antithetic: bool = False
    target_ci: float | None = None
    target_rel_ci: float | None = None
    max_trials: int | None = None
    batch_size: int | None = None
    label: str = ""
    #: Pre-flight lint mode (``off``/``warn``/``strict``); every
    #: distinct variation is linted — see :class:`TransientJob`.
    validate: str = "off"

    def __post_init__(self) -> None:
        _check_validate(self.validate)
        self._check_vr()
        given = sum(
            source is not None
            for source in (self.circuit, self.builder, self.netlist)
        )
        if given != 1:
            raise AnalysisError(
                "EnsembleTransientJob needs exactly one of circuit=, "
                "builder= or netlist="
            )
        if self.variations is not None:
            self.variations = [dict(v) for v in self.variations]
            if not self.variations:
                raise AnalysisError("variations= must not be empty")
            if self.circuit is not None:
                raise AnalysisError(
                    "variations need a builder= or netlist= base "
                    "(a ready circuit cannot be re-parameterized)"
                )
            count = self.n_instances
            if count is not None and count != len(self.variations):
                raise AnalysisError(
                    f"n_instances={count} does not match "
                    f"{len(self.variations)} variations"
                )
        elif self.n_instances is None:
            raise AnalysisError(
                "EnsembleTransientJob needs variations= and/or n_instances="
            )
        elif self.n_instances < 1:
            raise AnalysisError(f"n_instances must be >= 1, got {self.n_instances!r}")
        if self.noise is not None and self.steps is None:
            raise AnalysisError("noise ensembles need steps= (a fixed shared grid)")
        if self.steps is not None and self.steps < 1:
            raise AnalysisError(f"steps must be >= 1, got {self.steps!r}")

    @property
    def _vr_adaptive(self) -> bool:
        return (
            self.control_variate
            or self.target_ci is not None
            or self.target_rel_ci is not None
        )

    def _check_vr(self) -> None:
        if not self._vr_adaptive and not self.antithetic:
            return
        if self.noise is None:
            raise AnalysisError(
                "variance reduction applies to noise ensembles: add noise="
            )
        if self.variations is not None:
            raise AnalysisError(
                "variance reduction needs i.i.d. replicas: use n_instances=, "
                "not variations="
            )
        if self.antithetic:
            if self.size % 2:
                raise AnalysisError(
                    f"antithetic ensembles need an even instance count, "
                    f"got {self.size}"
                )
            if self.path_seeds is not None and len(self.path_seeds) != self.size // 2:
                raise AnalysisError(
                    f"antithetic path_seeds carries one stream per pair: "
                    f"expected {self.size // 2}, got {len(self.path_seeds)}"
                )
        if self._vr_adaptive:
            if self.node is None:
                raise AnalysisError(
                    "adaptive/control-variate ensembles need node= "
                    "(the measured quantity the stopping rule watches)"
                )
            if self.return_result:
                raise AnalysisError(
                    "return_result= is incompatible with variance reduction "
                    "(the raw path stack is consumed batch by batch)"
                )
            if self.path_seeds is not None:
                raise AnalysisError(
                    "the adaptive driver owns the path streams: drop path_seeds="
                )

    @property
    def size(self) -> int:
        """Number of instances this job marches."""
        if self.variations is not None:
            return len(self.variations)
        return int(self.n_instances)

    @staticmethod
    def _as_circuit(built):
        """Unwrap builders that return a CircuitSDE-like object.

        The noisy-RC builders return an SDE wrapping the circuit; the
        lockstep engine integrates the circuit itself (the noise term
        is re-injected via ``noise=``).
        """
        from repro.circuit.netlist import Circuit

        if not isinstance(built, Circuit) and hasattr(built, "circuit"):
            return built.circuit
        return built

    def build_circuits(self) -> list:
        """Materialize the K circuit instances."""
        if self.variations is not None:
            circuits = []
            for overrides in self.variations:
                params = {**self.params, **overrides}
                built = materialize_circuit(None, self.builder, self.netlist, params)
                circuits.append(self._as_circuit(built))
            return circuits
        built = materialize_circuit(
            self.circuit, self.builder, self.netlist, self.params
        )
        return [self._as_circuit(built)] * self.size

    def _noise_pairs(self):
        if self.noise is None:
            return None
        if isinstance(self.noise, Mapping):
            return list(self.noise.items())
        return [tuple(entry) for entry in self.noise]

    def run(self, seed: np.random.SeedSequence | None = None):
        """March the ensemble; see the class docstring for the
        return-value contract."""
        _enforce_validate(self)
        from repro.stochastic.montecarlo import ensemble_statistics
        from repro.swec.ensemble import SwecEnsembleTransient

        options = apply_backend(self.options, self.backend)
        if isinstance(options, Mapping):
            options = _swec_options(dict(options))
        noise = self._noise_pairs()
        if self._vr_adaptive:
            from repro.stochastic.vr import run_circuit_ensemble_vr

            circuit = self._as_circuit(
                materialize_circuit(self.circuit, self.builder, self.netlist, self.params)
            )
            return run_circuit_ensemble_vr(
                circuit,
                noise,
                self.t_stop,
                self.steps,
                node=self.node,
                seed=seed,
                options=options,
                confidence=self.confidence,
                control_variate=self.control_variate,
                antithetic=self.antithetic,
                target_ci=self.target_ci,
                target_rel_ci=self.target_rel_ci,
                max_trials=self.max_trials or self.size,
                batch_size=self.batch_size,
            )
        engine = SwecEnsembleTransient(self.build_circuits(), options, noise=noise)
        kwargs = {}
        if self.initial_states is not None:
            kwargs["initial_states"] = np.asarray(self.initial_states, float)
        if self.steps is None:
            result = engine.run(self.t_stop, **kwargs)
        elif self.antithetic:
            from repro.stochastic.vr import antithetic_normals

            times = np.linspace(0.0, float(self.t_stop), int(self.steps) + 1)
            pair_seeds = self.path_seeds
            if pair_seeds is None:
                source = seed if seed is not None else np.random.SeedSequence()
                pair_seeds = source.spawn(self.size // 2)
            normals = antithetic_normals(pair_seeds, int(self.steps), len(noise))
            result = engine.run_grid(times, normals=normals, **kwargs)
        else:
            times = np.linspace(0.0, float(self.t_stop), int(self.steps) + 1)
            seeds = self.path_seeds
            if seeds is None and noise is not None and seed is not None:
                seeds = seed.spawn(self.size)
            result = engine.run_grid(times, seeds=seeds, **kwargs)
        if self.return_result or self.node is None:
            return result
        return ensemble_statistics(
            result.times, result.voltage(self.node), self.confidence
        )


@dataclass
class PSSJob:
    """One periodic steady-state (shooting) analysis (:mod:`repro.pss`).

    The circuit is given exactly like :class:`TransientJob` (one of
    ``circuit=``, ``builder=`` or ``netlist=``, with ``params``
    resolved inside the worker).  ``period=`` forces driven mode,
    ``period_guess=`` autonomous mode; with neither, the drive period
    is auto-detected from the periodic source waveforms.  The
    remaining knobs mirror :class:`~repro.pss.PSSOptions`.
    """

    #: Spec-file ``type=`` tag; the cache layer records it
    #: with every stored result (:mod:`repro.service`).
    kind: ClassVar[str] = "pss"

    circuit: Any = None
    builder: str | Callable | None = None
    netlist: str | None = None
    params: dict = field(default_factory=dict)
    period: float | None = None
    period_guess: float | None = None
    steps_per_period: int = 400
    tolerance: float = 1e-9
    max_iterations: int = 10
    phase_node: str | None = None
    settle_periods: float = 5.0
    refine_periods: int = 2
    options: Any = None
    #: Solver backend for every shooting march (``dense``/``sparse``/
    #: ``stack``/``auto``); overrides any ``options`` setting.
    backend: str | None = None
    label: str = ""
    #: Pre-flight lint mode (``off``/``warn``/``strict``); see
    #: :class:`TransientJob`.
    validate: str = "off"

    def __post_init__(self) -> None:
        given = sum(
            source is not None
            for source in (self.circuit, self.builder, self.netlist)
        )
        if given != 1:
            raise AnalysisError(
                "PSSJob needs exactly one of circuit=, builder= or netlist="
            )
        _check_validate(self.validate)

    def build_circuit(self):
        """Materialize the circuit this job analyses."""
        return materialize_circuit(
            self.circuit, self.builder, self.netlist, self.params
        )

    def run(self, seed: np.random.SeedSequence | None = None):
        """Execute the shooting analysis; *seed* is unused (PSS is
        deterministic) but accepted for a uniform job interface.
        Returns a :class:`~repro.pss.PSSResult`."""
        _enforce_validate(self)
        from repro.pss import PSSOptions, ShootingPSS

        options = PSSOptions(
            period=self.period,
            period_guess=self.period_guess,
            steps_per_period=self.steps_per_period,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            phase_node=self.phase_node,
            settle_periods=self.settle_periods,
            refine_periods=self.refine_periods,
            swec=self.options,
            backend=self.backend,
        )
        return ShootingPSS(self.build_circuit(), options).run()


def job_from_mapping(
    spec: Mapping[str, Any],
) -> "TransientJob | EnsembleJob | ACJob | EnsembleTransientJob | PSSJob":
    """Build a job from one deserialized job-spec table (CLI path)."""
    spec = dict(spec)
    kind = spec.pop("type", "transient")
    if kind in ("transient", "ac", "ensemble_transient", "pss"):
        circuit = spec.pop("circuit", None)
        if isinstance(circuit, str):
            spec["builder"] = circuit
        elif circuit is not None:
            spec["circuit"] = circuit
        job_class = {
            "transient": TransientJob,
            "ac": ACJob,
            "ensemble_transient": EnsembleTransientJob,
            "pss": PSSJob,
        }[kind]
        return job_class(**spec)  # "netlist" passes through as text
    if kind == "ensemble":
        sde = spec.pop("sde", None)
        if isinstance(sde, str):
            spec["builder"] = sde
        elif sde is not None:
            spec["sde"] = sde
        return EnsembleJob(**spec)
    raise AnalysisError(
        f"unknown job type {kind!r} (expected 'transient', 'ensemble', "
        f"'ac', 'ensemble_transient' or 'pss')"
    )
