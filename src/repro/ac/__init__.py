"""Small-signal AC and noise analysis in the frequency domain.

The time-domain engines linearize step by step; this package
linearizes *once*, about the DC operating point, and solves the
complex MNA system ``(G0 + j omega C) X = b`` over a whole frequency
grid in one batched call:

* :func:`linearize` — bias solve (chord fixed point, NDR-safe) plus
  small-signal ``dI/dV`` / ``gm``-``gds`` stamping;
* :class:`ACAnalysis` / :class:`ACResult` — vectorized frequency
  sweeps with Bode accessors and derived measures (low-frequency
  gain, -3 dB bandwidth, unity-gain frequency, phase margin);
* :func:`johnson_noise` / :class:`NoiseResult` — equilibrium
  resistor-noise spectra ``sum_r 4kT/R_r |Z_r|^2``, the deterministic
  cross-check of the stochastic engine's Lorentzian fits.

Quick start::

    from repro import Circuit
    from repro.ac import ACAnalysis

    circuit = Circuit("lowpass")
    circuit.add_voltage_source("Vin", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    result = ACAnalysis(circuit).sweep(1e3, 1e9, n_points=201)
    print(result.bandwidth_3db("out"))   # ~1/(2 pi R C)

``python -m repro.ac`` drives the same machinery from the command
line; :class:`~repro.runtime.ACJob` and sweep specs with
``analysis = "ac"`` run it on the batch runtime.
"""

from repro.ac.analysis import (
    ACAnalysis,
    GRID_SCALES,
    frequency_grid,
    solve_many,
    solve_many_sparse,
)
from repro.ac.linearize import (
    SmallSignalSystem,
    linearize,
    stamp_tangent,
    tangent_conductances,
)
from repro.ac.noise import NoiseResult, johnson_noise, thermal_ou_amplitude
from repro.ac.result import ACResult

__all__ = [
    "ACAnalysis",
    "ACResult",
    "GRID_SCALES",
    "NoiseResult",
    "SmallSignalSystem",
    "frequency_grid",
    "johnson_noise",
    "linearize",
    "solve_many",
    "solve_many_sparse",
    "stamp_tangent",
    "tangent_conductances",
    "thermal_ou_amplitude",
]
