"""Command-line entry point: ``python -m repro.ac``.

Mirrors the sweep CLI: the circuit comes from a netlist file or a
registered :mod:`repro.circuits_lib` template, the frequency grid from
``--start/--stop/--points/--scale``, and the output is a down-sampled
Bode table plus the derived measures (and, with ``--noise``, the
Johnson noise spectrum)::

    python -m repro.ac --template fet_rtd_inverter --source Vin \\
        --bias Vin=2.0 --start 1e3 --stop 1e12 --points 200 --node out
    python -m repro.ac lowpass.cir --start 1e3 --stop 1e9 \\
        --noise --csv bode.csv

Exit status 0 on success, 2 on a configuration error.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.errors import AnalysisError, NanoSimError


def _key_value(text: str) -> tuple[str, float]:
    """Parse one ``name=value`` CLI item."""
    name, separator, value = text.partition("=")
    if not separator or not name:
        raise argparse.ArgumentTypeError(
            f"expected name=value, got {text!r}")
    try:
        return name, float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{name!r}: non-numeric value {value!r}") from None


def _downsample(count: int, max_rows: int) -> np.ndarray:
    return np.unique(np.linspace(0, count - 1, max_rows).astype(int))


def _print_bode(result, node: str, max_rows: int) -> None:
    print(f"\nBode plot of V({node})/{result.source_name} "
          f"({len(result)} points):")
    print(f"  {'freq Hz':>12} {'|H| dB':>10} {'phase deg':>10}")
    rows = result.bode_rows(node)
    for k in _downsample(len(rows), max_rows):
        frequency, magnitude_db, phase = rows[k]
        print(f"  {frequency:>12.4g} {magnitude_db:>10.2f} "
              f"{phase:>10.1f}")


def _print_measures(result, node: str) -> None:
    gain = result.low_frequency_gain(node)
    print(f"\nderived measures at {node!r}:")
    print(f"  low-frequency gain   {abs(gain):.6g} "
          f"({20.0 * np.log10(abs(gain)):.2f} dB)"
          if abs(gain) > 0.0 else "  low-frequency gain   0")
    for label, method in (("-3 dB bandwidth", result.bandwidth_3db),
                          ("unity-gain frequency",
                           result.unity_gain_frequency)):
        try:
            print(f"  {label:<20} {method(node):.6g} Hz")
        except AnalysisError as exc:
            print(f"  {label:<20} n/a ({exc})")
    try:
        print(f"  {'phase margin':<20} {result.phase_margin(node):.2f} deg")
    except AnalysisError as exc:
        print(f"  {'phase margin':<20} n/a ({exc})")


def _print_noise(noise, node: str, max_rows: int) -> None:
    psd = noise.psd(node)
    print(f"\nJohnson noise at {node!r} (T={noise.temperature:g} K):")
    print(f"  {'freq Hz':>12} {'S_v V^2/Hz':>12}")
    for k in _downsample(len(noise), max_rows):
        print(f"  {noise.frequencies[k]:>12.4g} {psd[k]:>12.4g}")
    print(f"  integrated RMS over the analysed band: "
          f"{noise.integrated_rms(node):.4g} V")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ac",
        description="Small-signal AC (and Johnson noise) analysis.",
    )
    parser.add_argument("netlist", nargs="?", default=None,
                        help="netlist file (or use --template)")
    parser.add_argument("--template", default=None,
                        help="registered circuits_lib template name")
    parser.add_argument("--param", action="append", type=_key_value,
                        default=[], metavar="NAME=VALUE",
                        help="template/netlist parameter override "
                             "(repeatable)")
    parser.add_argument("--source", default=None,
                        help="AC-driven source (default: first source)")
    parser.add_argument("--bias", action="append", type=_key_value,
                        default=[], metavar="SOURCE=VALUE",
                        help="DC bias override for a source (repeatable)")
    parser.add_argument("--start", type=float, default=1e3,
                        help="first frequency in Hz (default 1e3)")
    parser.add_argument("--stop", type=float, default=1e9,
                        help="last frequency in Hz (default 1e9)")
    parser.add_argument("--points", type=int, default=101,
                        help="grid points (per decade with --scale "
                             "decade; default 101)")
    parser.add_argument("--scale", choices=("linear", "log", "decade"),
                        default="log", help="grid spacing (default log)")
    parser.add_argument("--node", default=None,
                        help="observed node (default: last node)")
    from repro.core.backends import available_backends

    parser.add_argument("--backend", default=None,
                        choices=available_backends(),
                        help="solver backend for the frequency solves "
                             "(default: stack, the batched path)")
    parser.add_argument("--noise", action="store_true",
                        help="also compute the Johnson noise spectrum")
    parser.add_argument("--temperature", type=float, default=300.0,
                        help="noise temperature in kelvin (default 300)")
    parser.add_argument("--rows", type=int, default=15,
                        help="table rows to print (default 15)")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="write the Bode table as CSV")
    args = parser.parse_args(argv)

    if args.netlist is not None and args.template is not None:
        parser.error("give a netlist file or --template, not both")
    if args.netlist is None and args.template is None:
        parser.error("a netlist file (or --template) is required")

    from pathlib import Path

    from repro.ac import ACAnalysis, frequency_grid
    from repro.runtime.jobs import materialize_circuit

    try:
        source = args.source
        if source is None and args.template is not None:
            from repro.circuits_lib.templates import TEMPLATES

            template = TEMPLATES.get(args.template)
            if template is not None:
                source = template.ac_source
        circuit = materialize_circuit(
            None, args.template,
            (None if args.netlist is None
             else Path(args.netlist).read_text()),
            dict(args.param))
        # One ACAnalysis = one bias solve, shared by the Bode sweep
        # and the --noise spectra.
        analysis = ACAnalysis(circuit, source=source,
                              bias=dict(args.bias),
                              backend=args.backend)
        result = analysis.solve(frequency_grid(
            args.start, args.stop, args.points, args.scale))
        node = args.node or result.node_names[-1]
        _print_bode(result, node, args.rows)
        _print_measures(result, node)
        if args.noise:
            noise = analysis.noise(result.frequencies,
                                   temperature=args.temperature)
            _print_noise(noise, node, args.rows)
        if args.csv:
            result.to_csv(args.csv)
            print(f"\nwrote {args.csv}")
    except (NanoSimError, OSError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0
