"""AC analysis result container and derived (Bode) measures.

An :class:`ACResult` stores the complex MNA solution at every analysed
frequency for a unit-amplitude excitation, so each node column *is* the
transfer function ``H(j omega)`` from the driven source to that node.
Magnitude/phase accessors feed Bode tables; the derived measures
(low-frequency gain, -3 dB bandwidth, unity-gain frequency, phase
margin) interpolate on the log-frequency grid and raise
:class:`~repro.errors.AnalysisError` — never silent NaN — when the
curve does not exhibit the requested landmark.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from repro.circuit.netlist import is_ground
from repro.errors import AnalysisError


def _log_or_linear(f: np.ndarray) -> np.ndarray:
    """Interpolation abscissa: log-frequency when possible."""
    return np.log(f) if np.all(f > 0.0) else f


class ACResult:
    """Complex frequency response of one small-signal analysis.

    Parameters
    ----------
    frequencies:
        Analysed frequencies in Hz, strictly increasing.
    states:
        ``(n_frequencies, system_size)`` complex solution matrix; node
        voltage columns first, in ``node_names`` order.
    node_names:
        Non-ground node names, matching the leading state columns.
    source_name:
        The excited independent source.
    circuit_name:
        For reprs and report headers.
    """

    def __init__(self, frequencies, states, node_names,
                 source_name: str, circuit_name: str = "") -> None:
        self.frequencies = np.asarray(frequencies, dtype=float)
        self.states = np.asarray(states, dtype=complex)
        self.node_names = tuple(node_names)
        self.source_name = source_name
        self.circuit_name = circuit_name
        if self.frequencies.ndim != 1 or self.frequencies.size < 1:
            raise AnalysisError("need a 1-D, non-empty frequency grid")
        if self.states.shape[0] != self.frequencies.size:
            raise AnalysisError(
                f"state rows ({self.states.shape[0]}) do not match "
                f"frequency count ({self.frequencies.size})")
        if np.any(np.diff(self.frequencies) <= 0.0):
            raise AnalysisError("frequencies must be strictly increasing")

    def __len__(self) -> int:
        return self.frequencies.size

    # ------------------------------------------------------------------
    # Transfer-function accessors
    # ------------------------------------------------------------------

    def transfer(self, node: str) -> np.ndarray:
        """Complex transfer function ``H(j omega)`` at *node*."""
        if is_ground(node):
            return np.zeros(len(self), dtype=complex)
        try:
            column = self.node_names.index(node)
        except ValueError:
            raise AnalysisError(
                f"node {node!r} not in result "
                f"(have {self.node_names})") from None
        return self.states[:, column]

    def magnitude(self, node: str) -> np.ndarray:
        """``|H|`` at *node*."""
        return np.abs(self.transfer(node))

    def magnitude_db(self, node: str) -> np.ndarray:
        """``20 log10 |H|`` in dB (floored at -400 dB for exact zeros)."""
        magnitude = self.magnitude(node)
        with np.errstate(divide="ignore"):
            return np.maximum(20.0 * np.log10(magnitude), -400.0)

    def phase_deg(self, node: str) -> np.ndarray:
        """Unwrapped phase of ``H`` in degrees."""
        return np.degrees(np.unwrap(np.angle(self.transfer(node))))

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------

    def low_frequency_gain(self, node: str) -> complex:
        """``H`` at the lowest analysed frequency (signed/complex)."""
        return complex(self.transfer(node)[0])

    def gain_at(self, frequency: float, node: str) -> float:
        """``|H|`` at *frequency*, interpolated on the analysis grid."""
        return float(np.interp(
            *self._interp_abscissa(frequency), self.magnitude(node)))

    def phase_at(self, frequency: float, node: str) -> float:
        """Unwrapped phase in degrees at *frequency*, interpolated."""
        return float(np.interp(
            *self._interp_abscissa(frequency), self.phase_deg(node)))

    def _interp_abscissa(self, frequency: float):
        f = self.frequencies
        if frequency < f[0] or frequency > f[-1]:
            raise AnalysisError(
                f"frequency {frequency:.4g} Hz outside the analysed "
                f"band [{f[0]:.4g}, {f[-1]:.4g}]")
        abscissa = _log_or_linear(f)
        x = np.log(frequency) if np.all(f > 0.0) else frequency
        return x, abscissa

    def _falling_crossing(self, node: str, level: float,
                          what: str) -> float:
        """First frequency where ``|H|`` falls through *level*."""
        magnitude = self.magnitude(node)
        if len(self) < 2:
            raise AnalysisError(
                f"{what}: need at least two frequency points")
        if magnitude[0] < level:
            raise AnalysisError(
                f"{what}: |H| is already below the target at the lowest "
                f"analysed frequency {self.frequencies[0]:.4g} Hz")
        below = np.nonzero(magnitude < level)[0]
        if below.size == 0:
            raise AnalysisError(
                f"{what}: |H| never falls below the target inside the "
                f"analysed band (extend the frequency grid)")
        k = int(below[0])
        # Interpolate in (log f, dB) — straight lines there match the
        # asymptotic single-pole roll-off, so coarse grids stay accurate.
        x = _log_or_linear(self.frequencies)
        y = 20.0 * np.log10(np.maximum(magnitude, 1e-300))
        target = 20.0 * np.log10(level)
        x_cross = x[k - 1] + (x[k] - x[k - 1]) * (
            (target - y[k - 1]) / (y[k] - y[k - 1]))
        return float(np.exp(x_cross)) if np.all(self.frequencies > 0.0) \
            else float(x_cross)

    def bandwidth_3db(self, node: str) -> float:
        """-3 dB bandwidth: where ``|H|`` first falls to ``|H0|/sqrt 2``."""
        reference = abs(self.low_frequency_gain(node))
        if reference == 0.0:
            raise AnalysisError(
                f"bandwidth_3db: zero low-frequency gain at {node!r}")
        return self._falling_crossing(
            node, reference / np.sqrt(2.0), "bandwidth_3db")

    def unity_gain_frequency(self, node: str) -> float:
        """First frequency where ``|H|`` falls through 1 (0 dB)."""
        return self._falling_crossing(node, 1.0, "unity_gain_frequency")

    def phase_margin(self, node: str) -> float:
        """``180 deg + phase(H)`` at the unity-gain frequency."""
        f_unity = self.unity_gain_frequency(node)
        return 180.0 + self.phase_at(f_unity, node)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def bode_rows(self, node: str) -> list[tuple[float, float, float]]:
        """``(frequency, magnitude_db, phase_deg)`` rows for *node*."""
        return list(zip(self.frequencies.tolist(),
                        self.magnitude_db(node).tolist(),
                        self.phase_deg(node).tolist()))

    def to_csv(self, path: str | Path | None = None,
               nodes=None) -> str:
        """Write ``frequency, |H| dB and phase per node`` as CSV."""
        nodes = list(nodes) if nodes is not None else list(self.node_names)
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        header = ["frequency_hz"]
        for node in nodes:
            header += [f"{node}_mag_db", f"{node}_phase_deg"]
        writer.writerow(header)
        columns = [self.frequencies]
        for node in nodes:
            columns += [self.magnitude_db(node), self.phase_deg(node)]
        for row in zip(*columns):
            writer.writerow([f"{value:.12g}" for value in row])
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def __repr__(self) -> str:
        return (f"ACResult({self.circuit_name!r}, "
                f"source={self.source_name!r}, points={len(self)}, "
                f"band=[{self.frequencies[0]:.4g}, "
                f"{self.frequencies[-1]:.4g}] Hz)")
