"""Equilibrium (Johnson-Nyquist) noise spectra through the AC system.

Every resistor at temperature ``T`` carries a white thermal current
noise of one-sided PSD ``S_i = 4 k T / R`` (A^2/Hz).  Propagating each
such source through the small-signal system gives the node-voltage
noise spectrum

.. math::  S_v(\\omega) = \\sum_r \\frac{4 k T}{R_r}\\,
           \\lvert Z_r(j\\omega) \\rvert^2

where ``Z_r`` is the transimpedance from resistor *r*'s terminals to
the observed node — one extra column per resistor in the same batched
complex solves :mod:`repro.ac.analysis` uses.

This is the deterministic cross-check for the stochastic machinery:
for a linear RC node the spectrum equals the Ornstein-Uhlenbeck
Lorentzian of :func:`repro.stochastic.spectrum.ou_psd` with
``lambda = 1/(RC)`` and ``sigma`` given by
:func:`thermal_ou_amplitude`.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.ac.analysis import solve_many
from repro.ac.linearize import SmallSignalSystem, linearize
from repro.circuit.netlist import Circuit, is_ground
from repro.constants import BOLTZMANN, ROOM_TEMPERATURE
from repro.errors import AnalysisError
from repro.swec.dc import SwecDCOptions

# numpy 2.0 renamed trapz -> trapezoid.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


def thermal_ou_amplitude(resistance: float, capacitance: float,
                         temperature: float = ROOM_TEMPERATURE) -> float:
    """OU ``sigma`` equivalent to Johnson noise on an R-parallel-C node.

    The node voltage of a resistor-capacitor pair at temperature *T*
    is an Ornstein-Uhlenbeck process with ``lambda = 1/(RC)`` and
    ``sigma = sqrt(2 k T / R) / C``; feeding these into
    :func:`repro.stochastic.spectrum.ou_psd` reproduces the one-sided
    Johnson spectrum ``4 k T R / (1 + (omega R C)^2)`` exactly.
    """
    if resistance <= 0.0 or capacitance <= 0.0:
        raise AnalysisError("resistance and capacitance must be positive")
    if temperature <= 0.0:
        raise AnalysisError(f"temperature must be positive, "
                            f"got {temperature!r}")
    return math.sqrt(2.0 * BOLTZMANN * temperature / resistance) \
        / capacitance


class NoiseResult:
    """Node-voltage noise spectra of one equilibrium noise analysis.

    Attributes
    ----------
    frequencies:
        Analysed frequencies in Hz.
    node_names:
        Non-ground node names, matching the PSD columns.
    resistor_names:
        Contributing resistors, matching the contribution slabs.
    temperature:
        Device temperature in kelvin.
    """

    def __init__(self, frequencies, node_names, resistor_names,
                 contributions: np.ndarray, temperature: float,
                 circuit_name: str = "") -> None:
        self.frequencies = np.asarray(frequencies, dtype=float)
        self.node_names = tuple(node_names)
        self.resistor_names = tuple(resistor_names)
        #: ``(n_resistors, n_frequencies, n_nodes)`` PSD contributions.
        self.contributions = np.asarray(contributions, dtype=float)
        self.temperature = temperature
        self.circuit_name = circuit_name

    def __len__(self) -> int:
        return self.frequencies.size

    def _column(self, node: str) -> int:
        try:
            return self.node_names.index(node)
        except ValueError:
            raise AnalysisError(
                f"node {node!r} not in result "
                f"(have {self.node_names})") from None

    def psd(self, node: str) -> np.ndarray:
        """Total one-sided voltage noise PSD at *node* in V^2/Hz."""
        if is_ground(node):
            return np.zeros(len(self))
        return self.contributions[:, :, self._column(node)].sum(axis=0)

    def contribution(self, node: str, resistor: str) -> np.ndarray:
        """One resistor's share of the PSD at *node*."""
        try:
            index = self.resistor_names.index(resistor)
        except ValueError:
            raise AnalysisError(
                f"no resistor named {resistor!r} "
                f"(have {self.resistor_names})") from None
        return self.contributions[index, :, self._column(node)]

    def integrated_rms(self, node: str, f_low: float | None = None,
                       f_high: float | None = None) -> float:
        """RMS noise voltage over a frequency band (trapezoidal)."""
        f = self.frequencies
        psd = self.psd(node)
        mask = np.ones(f.shape, dtype=bool)
        if f_low is not None:
            mask &= f >= f_low
        if f_high is not None:
            mask &= f <= f_high
        if mask.sum() < 2:
            raise AnalysisError(
                "integration band contains fewer than two samples")
        return float(np.sqrt(_trapezoid(psd[mask], f[mask])))

    def __repr__(self) -> str:
        return (f"NoiseResult({self.circuit_name!r}, "
                f"resistors={len(self.resistor_names)}, "
                f"points={len(self)}, T={self.temperature:g} K)")


def johnson_noise(circuit: "Circuit | SmallSignalSystem", frequencies,
                  temperature: float = ROOM_TEMPERATURE,
                  bias: Mapping[str, float] | None = None,
                  dc_options: SwecDCOptions | None = None,
                  backend: str | None = None) -> NoiseResult:
    """Johnson-Nyquist node-voltage spectra of *circuit*.

    Linearizes about the DC operating point (with optional *bias*
    source overrides), injects a unit AC current across every
    resistor, and accumulates ``4kT/R |Z(j omega)|^2`` per node.  The
    injection columns for all resistors are solved together in the
    same chunked, batched complex solves as the AC transfer sweep
    (:func:`repro.ac.analysis.solve_many`); ``backend="sparse"``
    routes them through the per-frequency SuperLU path
    (:func:`repro.ac.analysis.solve_many_sparse`) instead, exactly as
    in :class:`~repro.ac.analysis.ACAnalysis`.

    An already-linearized :class:`~repro.ac.linearize.
    SmallSignalSystem` may be passed instead of a circuit to reuse an
    existing bias solve (see :meth:`ACAnalysis.noise
    <repro.ac.analysis.ACAnalysis.noise>`); *bias*/*dc_options* are
    then ignored.
    """
    if temperature <= 0.0:
        raise AnalysisError(f"temperature must be positive, "
                            f"got {temperature!r}")
    frequencies = np.asarray(frequencies, dtype=float)
    if isinstance(circuit, SmallSignalSystem):
        small = circuit
        circuit = small.circuit
    else:
        small = None
    if not circuit.resistors:
        raise AnalysisError(
            f"circuit {circuit.name!r} has no resistors; its Johnson "
            f"noise is identically zero")
    if small is None:
        small = linearize(circuit, bias, dc_options)
    system = small.system
    resistors = circuit.resistors
    injections = np.zeros((small.size, len(resistors)), dtype=complex)
    weights = np.empty(len(resistors))
    for r, resistor in enumerate(resistors):
        i = system.node_index(resistor.nodes[0])
        j = system.node_index(resistor.nodes[1])
        system.stamp_current(injections[:, r], i, j, 1.0)
        weights[r] = 4.0 * BOLTZMANN * temperature * resistor.conductance
    # solved[f, row, r] = Z from resistor r to MNA unknown `row`.
    from repro.ac.analysis import resolve_ac_backend, solve_many_sparse

    if resolve_ac_backend(backend, system) == "sparse":
        solved = solve_many_sparse(small, frequencies, injections)
    else:
        solved = solve_many(small, frequencies, injections)
    n_nodes = len(small.node_names)
    transimpedance = np.abs(solved[:, :n_nodes, :]) ** 2
    contributions = (weights[None, None, :]
                     * transimpedance).transpose(2, 0, 1)
    return NoiseResult(frequencies, small.node_names,
                       [r.name for r in resistors], contributions,
                       temperature, circuit_name=circuit.name)
