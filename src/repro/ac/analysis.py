"""Small-signal AC analysis: vectorized complex frequency sweeps.

:class:`ACAnalysis` linearizes a circuit about its DC operating point
(:mod:`repro.ac.linearize`) and solves

.. math::  (G_0 + j \\omega C)\\, X(\\omega) = b_{ac}

for a unit-amplitude excitation of one independent source.  The solve
strategy resolves against the :mod:`repro.core.backends` registry
through the ``backend=`` knob:

``stack`` (the default)
    All frequency matrices are assembled as one ``(F, n, n)`` complex
    stack and handed to batched LAPACK via
    :func:`repro.mna.batch.solve_stack`, chunked so memory stays
    bounded.
``sparse``
    One complex SuperLU factor/solve per frequency on CSR matrices —
    the grid-scale path where dense ``(F, n, n)`` chunks would thrash.
``dense``
    The per-frequency Python loop (:meth:`ACAnalysis.solve_loop`) —
    the reference implementation the batched paths are validated (and
    benchmarked) against.
``auto``
    Selects ``sparse`` for large, sparse systems and ``stack``
    otherwise (:func:`repro.core.backends.select_backend`).
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.ac.linearize import SmallSignalSystem, linearize
from repro.ac.result import ACResult
from repro.circuit.netlist import Circuit
from repro.core.backends import select_backend
from repro.errors import AnalysisError, SingularMatrixError
from repro.mna.batch import solve_stack
from repro.swec.dc import SwecDCOptions

#: Frequency-grid spacings (``decade`` = points *per decade*, SPICE
#: ``.AC DEC`` style).
GRID_SCALES = ("linear", "log", "decade")

#: Solve strategies the complex frequency sweeps implement.  The AC
#: layer shares the registry's *names* with the transient engines but
#: needs a complex-dtype solve per name, so custom-registered
#: transient backends are rejected here rather than silently mapped.
AC_BACKENDS = ("stack", "sparse", "dense", "auto")


def resolve_ac_backend(name: str | None, system) -> str:
    """Resolve an AC ``backend=`` name to a concrete solve strategy.

    ``None`` means the default ``stack``; ``auto`` picks ``sparse``
    for large low-fill systems (:func:`repro.core.backends.
    select_backend` on *system*) and ``stack`` otherwise.  Names
    outside :data:`AC_BACKENDS` raise — the frequency domain needs an
    explicit complex solve path per name.
    """
    if name is None:
        return "stack"
    if name not in AC_BACKENDS:
        raise AnalysisError(
            f"AC analysis implements backends "
            f"{', '.join(AC_BACKENDS)}; got {name!r}")
    if name == "auto":
        return "sparse" if select_backend([system]) == "sparse" \
            else "stack"
    return name


def frequency_grid(f_start: float, f_stop: float, n_points: int = 101,
                   scale: str = "log") -> np.ndarray:
    """Build an analysis frequency grid in Hz.

    ``scale="linear"`` spaces *n_points* evenly on ``[f_start,
    f_stop]``; ``"log"`` geometrically; ``"decade"`` reads *n_points*
    as points **per decade** (the SPICE ``.AC DEC`` convention) and
    derives the total count from the band width.
    """
    if scale not in GRID_SCALES:
        raise AnalysisError(
            f"scale must be one of {GRID_SCALES}, got {scale!r}")
    # ``decade`` reads n_points per decade, so 1 is legal there
    # (SPICE's ``.AC DEC 1``); the total is clamped to >= 2 below.
    if n_points < (1 if scale == "decade" else 2):
        raise AnalysisError(f"need at least 2 points, got {n_points}")
    if not f_start < f_stop:
        raise AnalysisError(
            f"need f_start < f_stop, got [{f_start!r}, {f_stop!r}]")
    if scale == "linear":
        if f_start < 0.0:
            raise AnalysisError(
                f"frequencies must be non-negative, got {f_start!r}")
        return np.linspace(f_start, f_stop, n_points)
    if f_start <= 0.0:
        raise AnalysisError(
            f"{scale} scale needs a positive f_start, got {f_start!r}")
    if scale == "decade":
        decades = math.log10(f_stop / f_start)
        n_points = max(2, int(round(n_points * decades)) + 1)
    return np.geomspace(f_start, f_stop, n_points)


def solve_many(small: SmallSignalSystem, frequencies,
               rhs_columns) -> np.ndarray:
    """Chunked batched solves of ``(G0 + j w C) X = rhs`` per column.

    A thin wrapper over :func:`repro.mna.batch.solve_stack` (shared
    with the ensemble transient engine): *rhs_columns* is an ``(n, k)``
    matrix of right-hand sides (an excitation vector, noise
    injections, ...), solved for every frequency at once; returns the
    ``(F, n, k)`` complex solution stack.  The AC layer only supplies
    the lazy per-chunk assembly — chunk sizing and memory bounding are
    ``solve_stack``'s (:data:`repro.mna.batch.CHUNK_ENTRIES`, ~64 MB
    of complex entries at a time).
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.ndim != 1 or frequencies.size == 0:
        raise AnalysisError("need a 1-D, non-empty frequency grid")
    rhs = np.asarray(rhs_columns, dtype=complex)
    n = small.size
    if rhs.shape[:1] != (n,) or rhs.ndim != 2:
        raise AnalysisError(
            f"rhs columns must have shape ({n}, k), got {rhs.shape}")
    omega = 2.0 * np.pi * frequencies

    def matrices(lo: int, hi: int) -> np.ndarray:
        w = omega[lo:hi]
        return (small.g0[None, :, :]
                + 1j * w[:, None, None] * small.c[None, :, :])

    def describe(lo: int, hi: int) -> str:
        return (f"the small-signal sweep [{frequencies[lo]:.4g}, "
                f"{frequencies[hi - 1]:.4g}] Hz")

    try:
        return solve_stack(
            matrices,
            np.broadcast_to(rhs[None, :, :], (omega.size, *rhs.shape)),
            describe=describe, dtype=complex)
    except SingularMatrixError as exc:
        raise AnalysisError(str(exc)) from exc


def solve_many_sparse(small: SmallSignalSystem, frequencies,
                      rhs_columns) -> np.ndarray:
    """Sparse counterpart of :func:`solve_many`: SuperLU per frequency.

    Assembles ``G0`` and ``C`` as CSR once and pays one complex
    O(nnz) factorization per frequency point
    (:class:`~repro.mna.sparse.SparseSolver`) — the path ``auto``
    selects for grid-scale circuits, where a dense ``(F, n, n)``
    chunk no longer fits the cache (or memory).
    """
    from scipy import sparse as scipy_sparse

    from repro.mna.sparse import SparseSolver

    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.ndim != 1 or frequencies.size == 0:
        raise AnalysisError("need a 1-D, non-empty frequency grid")
    rhs = np.asarray(rhs_columns, dtype=complex)
    n = small.size
    if rhs.shape[:1] != (n,) or rhs.ndim != 2:
        raise AnalysisError(
            f"rhs columns must have shape ({n}, k), got {rhs.shape}")
    g0 = scipy_sparse.csc_matrix(small.g0.astype(complex))
    c = scipy_sparse.csc_matrix(small.c.astype(complex))
    solver = SparseSolver()
    out = np.empty((frequencies.size, n, rhs.shape[1]), dtype=complex)
    try:
        for index, frequency in enumerate(frequencies):
            solver.factor(g0 + 2j * np.pi * float(frequency) * c)
            # SuperLU back-substitutes all rhs columns in one call.
            out[index] = solver.solve(rhs)
    except SingularMatrixError as exc:
        raise AnalysisError(
            f"singular small-signal system at "
            f"{frequencies[index]:.4g} Hz: {exc}") from exc
    return out


class ACAnalysis:
    """Frequency-domain analysis of one circuit about one bias point.

    Parameters
    ----------
    circuit:
        The circuit to analyse (any :class:`~repro.circuit.Circuit`).
    source:
        Independent source carrying the unit AC excitation; defaults
        to the circuit's first voltage source (then current source).
    bias:
        Source-name -> DC value overrides for the operating point —
        e.g. ``{"Vin": 2.0}`` to bias an inverter inside its
        transition region regardless of its transient stimulus.
    dc_options:
        :class:`~repro.swec.dc.SwecDCOptions` for the bias solve.
    backend:
        Solver backend name from the :mod:`repro.core.backends`
        registry — ``"stack"`` (default, chunked batched LAPACK),
        ``"sparse"`` (SuperLU per frequency), ``"dense"`` (the
        per-frequency reference loop) or ``"auto"`` (by system size
        and fill ratio).
    """

    def __init__(self, circuit: Circuit, source: str | None = None,
                 bias: Mapping[str, float] | None = None,
                 dc_options: SwecDCOptions | None = None,
                 backend: str | None = None) -> None:
        self.circuit = circuit
        if backend is not None and backend not in AC_BACKENDS:
            raise AnalysisError(
                f"AC analysis implements backends "
                f"{', '.join(AC_BACKENDS)}; got {backend!r}")
        self.small: SmallSignalSystem = linearize(circuit, bias, dc_options)
        self.source = source or self.small.default_source()
        self._rhs = self.small.excitation(self.source)
        self.backend_name = resolve_ac_backend(backend, self.small.system)

    @property
    def bias_voltages(self) -> dict[str, float]:
        """Node name -> operating-point voltage."""
        return self.small.bias_voltages()

    # ------------------------------------------------------------------

    def _result(self, frequencies: np.ndarray,
                states: np.ndarray) -> ACResult:
        return ACResult(frequencies, states, self.small.node_names,
                        source_name=self.source,
                        circuit_name=self.circuit.name)

    def solve(self, frequencies) -> ACResult:
        """Sweep *frequencies* through the resolved solver backend.

        ``stack`` is one :func:`solve_many` call — within each chunk,
        assembly is a single broadcast expression and the solve one
        batched LAPACK call; ``sparse`` routes through
        :func:`solve_many_sparse`; ``dense`` through the
        :meth:`solve_loop` reference.
        """
        frequencies = np.asarray(frequencies, dtype=float)
        if self.backend_name == "dense":
            return self.solve_loop(frequencies)
        solver = solve_many_sparse if self.backend_name == "sparse" \
            else solve_many
        states = solver(self.small, frequencies,
                        self._rhs[:, None])[:, :, 0]
        return self._result(frequencies, states)

    def noise(self, frequencies, temperature: float | None = None):
        """Johnson noise spectra about this analysis' operating point.

        Reuses the existing linearization — no second bias solve — and
        this analysis' resolved solver backend.  See
        :func:`repro.ac.noise.johnson_noise`.
        """
        from repro.ac.noise import johnson_noise

        kwargs = {} if temperature is None else \
            {"temperature": temperature}
        return johnson_noise(self.small, frequencies,
                             backend=self.backend_name, **kwargs)

    def solve_loop(self, frequencies) -> ACResult:
        """Reference sweep: one Python-level solve per frequency.

        Numerically equivalent to :meth:`solve` (same LAPACK routines,
        one matrix at a time); kept for validation and as the baseline
        ``benchmarks/bench_ac.py`` measures the vectorized path
        against.
        """
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.ndim != 1 or frequencies.size == 0:
            raise AnalysisError("need a 1-D, non-empty frequency grid")
        states = np.empty((frequencies.size, self.small.size),
                          dtype=complex)
        for k, frequency in enumerate(frequencies):
            matrix = (self.small.g0
                      + 2j * np.pi * frequency * self.small.c)
            try:
                states[k] = np.linalg.solve(matrix, self._rhs)
            except np.linalg.LinAlgError as exc:
                raise AnalysisError(
                    f"singular small-signal system at "
                    f"{frequency:.4g} Hz: {exc}") from exc
        return self._result(frequencies, states)

    def sweep(self, f_start: float, f_stop: float, n_points: int = 101,
              scale: str = "log") -> ACResult:
        """Convenience: :func:`frequency_grid` + :meth:`solve`."""
        return self.solve(frequency_grid(f_start, f_stop, n_points, scale))
