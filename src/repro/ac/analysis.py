"""Small-signal AC analysis: vectorized complex frequency sweeps.

:class:`ACAnalysis` linearizes a circuit about its DC operating point
(:mod:`repro.ac.linearize`) and solves

.. math::  (G_0 + j \\omega C)\\, X(\\omega) = b_{ac}

for a unit-amplitude excitation of one independent source.  The sweep
is *vectorized*: all frequency matrices are assembled as one
``(F, n, n)`` complex stack and handed to batched LAPACK via
``numpy.linalg.solve``, chunked so memory stays bounded.  The naive
per-frequency Python loop is kept as :meth:`ACAnalysis.solve_loop` —
it is the reference implementation the vectorized path is validated
(and benchmarked) against.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.ac.linearize import SmallSignalSystem, linearize
from repro.ac.result import ACResult
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, SingularMatrixError
from repro.mna.batch import solve_stack
from repro.swec.dc import SwecDCOptions

#: Frequency-grid spacings (``decade`` = points *per decade*, SPICE
#: ``.AC DEC`` style).
GRID_SCALES = ("linear", "log", "decade")

#: Complex matrix entries per assembly chunk (~64 MB at 16 bytes each).
_CHUNK_ENTRIES = 4_000_000


def frequency_grid(f_start: float, f_stop: float, n_points: int = 101,
                   scale: str = "log") -> np.ndarray:
    """Build an analysis frequency grid in Hz.

    ``scale="linear"`` spaces *n_points* evenly on ``[f_start,
    f_stop]``; ``"log"`` geometrically; ``"decade"`` reads *n_points*
    as points **per decade** (the SPICE ``.AC DEC`` convention) and
    derives the total count from the band width.
    """
    if scale not in GRID_SCALES:
        raise AnalysisError(
            f"scale must be one of {GRID_SCALES}, got {scale!r}")
    # ``decade`` reads n_points per decade, so 1 is legal there
    # (SPICE's ``.AC DEC 1``); the total is clamped to >= 2 below.
    if n_points < (1 if scale == "decade" else 2):
        raise AnalysisError(f"need at least 2 points, got {n_points}")
    if not f_start < f_stop:
        raise AnalysisError(
            f"need f_start < f_stop, got [{f_start!r}, {f_stop!r}]")
    if scale == "linear":
        if f_start < 0.0:
            raise AnalysisError(
                f"frequencies must be non-negative, got {f_start!r}")
        return np.linspace(f_start, f_stop, n_points)
    if f_start <= 0.0:
        raise AnalysisError(
            f"{scale} scale needs a positive f_start, got {f_start!r}")
    if scale == "decade":
        decades = math.log10(f_stop / f_start)
        n_points = max(2, int(round(n_points * decades)) + 1)
    return np.geomspace(f_start, f_stop, n_points)


def solve_many(small: SmallSignalSystem, frequencies,
               rhs_columns) -> np.ndarray:
    """Chunked batched solves of ``(G0 + j w C) X = rhs`` per column.

    The one place the complex stack is assembled: *rhs_columns* is an
    ``(n, k)`` matrix of right-hand sides (an excitation vector, noise
    injections, ...), solved for every frequency at once; returns the
    ``(F, n, k)`` complex solution stack.  The batched LAPACK call is
    :func:`repro.mna.batch.solve_stack` (shared with the ensemble
    transient engine), whose chunking keeps the lazily assembled
    ``(F, n, n)`` stack under ~64 MB at a time.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.ndim != 1 or frequencies.size == 0:
        raise AnalysisError("need a 1-D, non-empty frequency grid")
    rhs = np.asarray(rhs_columns, dtype=complex)
    n = small.size
    if rhs.shape[:1] != (n,) or rhs.ndim != 2:
        raise AnalysisError(
            f"rhs columns must have shape ({n}, k), got {rhs.shape}")
    omega = 2.0 * np.pi * frequencies

    def matrices(lo: int, hi: int) -> np.ndarray:
        w = omega[lo:hi]
        return (small.g0[None, :, :]
                + 1j * w[:, None, None] * small.c[None, :, :])

    def describe(lo: int, hi: int) -> str:
        return (f"the small-signal sweep [{frequencies[lo]:.4g}, "
                f"{frequencies[hi - 1]:.4g}] Hz")

    try:
        return solve_stack(
            matrices,
            np.broadcast_to(rhs[None, :, :], (omega.size, *rhs.shape)),
            chunk_entries=_CHUNK_ENTRIES, describe=describe, dtype=complex)
    except SingularMatrixError as exc:
        raise AnalysisError(str(exc)) from exc


class ACAnalysis:
    """Frequency-domain analysis of one circuit about one bias point.

    Parameters
    ----------
    circuit:
        The circuit to analyse (any :class:`~repro.circuit.Circuit`).
    source:
        Independent source carrying the unit AC excitation; defaults
        to the circuit's first voltage source (then current source).
    bias:
        Source-name -> DC value overrides for the operating point —
        e.g. ``{"Vin": 2.0}`` to bias an inverter inside its
        transition region regardless of its transient stimulus.
    dc_options:
        :class:`~repro.swec.dc.SwecDCOptions` for the bias solve.
    """

    def __init__(self, circuit: Circuit, source: str | None = None,
                 bias: Mapping[str, float] | None = None,
                 dc_options: SwecDCOptions | None = None) -> None:
        self.circuit = circuit
        self.small: SmallSignalSystem = linearize(circuit, bias, dc_options)
        self.source = source or self.small.default_source()
        self._rhs = self.small.excitation(self.source)

    @property
    def bias_voltages(self) -> dict[str, float]:
        """Node name -> operating-point voltage."""
        return self.small.bias_voltages()

    # ------------------------------------------------------------------

    def _result(self, frequencies: np.ndarray,
                states: np.ndarray) -> ACResult:
        return ACResult(frequencies, states, self.small.node_names,
                        source_name=self.source,
                        circuit_name=self.circuit.name)

    def solve(self, frequencies) -> ACResult:
        """Vectorized sweep: batched complex solves over *frequencies*.

        One :func:`solve_many` call — within each chunk, assembly is a
        single broadcast expression and the solve one batched LAPACK
        call.
        """
        frequencies = np.asarray(frequencies, dtype=float)
        states = solve_many(self.small, frequencies,
                            self._rhs[:, None])[:, :, 0]
        return self._result(frequencies, states)

    def noise(self, frequencies, temperature: float | None = None):
        """Johnson noise spectra about this analysis' operating point.

        Reuses the existing linearization — no second bias solve.  See
        :func:`repro.ac.noise.johnson_noise`.
        """
        from repro.ac.noise import johnson_noise

        kwargs = {} if temperature is None else \
            {"temperature": temperature}
        return johnson_noise(self.small, frequencies, **kwargs)

    def solve_loop(self, frequencies) -> ACResult:
        """Reference sweep: one Python-level solve per frequency.

        Numerically equivalent to :meth:`solve` (same LAPACK routines,
        one matrix at a time); kept for validation and as the baseline
        ``benchmarks/bench_ac.py`` measures the vectorized path
        against.
        """
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.ndim != 1 or frequencies.size == 0:
            raise AnalysisError("need a 1-D, non-empty frequency grid")
        states = np.empty((frequencies.size, self.small.size),
                          dtype=complex)
        for k, frequency in enumerate(frequencies):
            matrix = (self.small.g0
                      + 2j * np.pi * frequency * self.small.c)
            try:
                states[k] = np.linalg.solve(matrix, self._rhs)
            except np.linalg.LinAlgError as exc:
                raise AnalysisError(
                    f"singular small-signal system at "
                    f"{frequency:.4g} Hz: {exc}") from exc
        return self._result(frequencies, states)

    def sweep(self, f_start: float, f_stop: float, n_points: int = 101,
              scale: str = "log") -> ACResult:
        """Convenience: :func:`frequency_grid` + :meth:`solve`."""
        return self.solve(frequency_grid(f_start, f_stop, n_points, scale))
