"""``python -m repro.ac`` dispatch."""

from repro.ac.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
