"""Small-signal linearization about a DC operating point.

The SWEC substrate already holds everything frequency-domain analysis
needs: the MNA split ``G(t) V + C dV/dt = b u(t)`` and, per device, the
differential conductance ``dI/dV``.  :func:`linearize` solves the bias
point with the chord fixed point (:meth:`repro.swec.dc.SwecDC.
operating_point`) and then replaces every nonlinear element by its
tangent at that bias:

* a two-terminal device becomes the conductance ``m * dI/dV(V_op)`` —
  *negative* inside an NDR region, which is perfectly fine here: the
  complex solves of :mod:`repro.ac.analysis` are direct, not iterative,
  so the divergence that breaks Newton never enters;
* a MOSFET becomes ``gds`` between drain and source plus a ``gm``
  voltage-controlled current source (the classic hybrid-pi skeleton).

The result is the constant real pair ``(G0, C)`` from which every AC
quantity derives as ``(G0 + j omega C) x = b_ac``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.mna.assembler import MnaSystem
from repro.swec.dc import SwecDC, SwecDCOptions


@dataclass
class SmallSignalSystem:
    """A circuit linearized about its DC operating point.

    Attributes
    ----------
    circuit / system:
        The source circuit and its assembled MNA view.
    state:
        The bias solution (full MNA state vector, node voltages first).
    g0:
        Small-signal conductance matrix: resistor/source/inductor
        stamps plus every device's ``dI/dV`` and MOSFET ``gds``/``gm``.
    c:
        The (bias-independent) capacitance matrix.
    """

    circuit: Circuit
    system: MnaSystem
    state: np.ndarray
    g0: np.ndarray
    c: np.ndarray

    @property
    def size(self) -> int:
        """Dimension of the MNA system."""
        return self.system.size

    @property
    def node_names(self) -> tuple[str, ...]:
        """Non-ground node names, in MNA row order."""
        return self.circuit.nodes

    def bias_voltages(self) -> dict[str, float]:
        """Node name -> operating-point voltage."""
        return self.system.voltages(self.state)

    # ------------------------------------------------------------------

    def default_source(self) -> str:
        """The source an AC excitation drives when none is named.

        The first voltage source wins, then the first current source —
        matching the "one stimulus plus supplies" shape of the library
        circuits, where the stimulus is added first.
        """
        for source in self.circuit.voltage_sources:
            return source.name
        for source in self.circuit.current_sources:
            return source.name
        raise AnalysisError(
            f"circuit {self.circuit.name!r} has no independent source "
            f"to excite")

    def excitation(self, source: str | None = None) -> np.ndarray:
        """Unit-amplitude AC right-hand side for *source*.

        Every other independent source is left at zero (a small-signal
        short/open), so the solved vector *is* the transfer function
        from that source to every MNA unknown.
        """
        name = source or self.default_source()
        b = np.zeros(self.size)
        for source_ in self.circuit.voltage_sources:
            if source_.name == name:
                b[self.system.vsource_index(name)] = 1.0
                return b
        for source_ in self.circuit.current_sources:
            if source_.name == name:
                p = self.system.node_index(source_.nodes[0])
                n = self.system.node_index(source_.nodes[1])
                self.system.stamp_current(b, p, n, 1.0)
                return b
        raise AnalysisError(f"no independent source named {name!r}")


def tangent_conductances(
        circuit: Circuit, system: MnaSystem, state: np.ndarray,
) -> tuple[np.ndarray, list[tuple[float, float]]]:
    """Per-element small-signal derivatives evaluated at *state*.

    Returns ``(device_g, mosfet_partials)``: the tangent ``dI/dV`` of
    every two-terminal device (element multiplicity folded in) and the
    ``(gm, gds)`` pair of every MOSFET.  :func:`linearize` evaluates
    them once at the DC operating point; the shooting monodromy of
    :mod:`repro.pss` re-evaluates them along an orbit, point by point,
    to turn the marched chord map into its exact Jacobian.
    """
    device_g = np.zeros(len(circuit.devices))
    for k, (anode, cathode) in enumerate(system.device_terminals()):
        va = state[anode] if anode >= 0 else 0.0
        vc = state[cathode] if cathode >= 0 else 0.0
        device_g[k] = circuit.devices[k].differential_conductance(va - vc)
    mosfet_partials = []
    for k, (drain, gate, source) in enumerate(system.mosfet_terminals()):
        vd = state[drain] if drain >= 0 else 0.0
        vg = state[gate] if gate >= 0 else 0.0
        vs = state[source] if source >= 0 else 0.0
        mosfet_partials.append(circuit.mosfets[k].partials(vg - vs, vd - vs))
    return device_g, mosfet_partials


def stamp_tangent(system: MnaSystem, matrix: np.ndarray,
                  device_g: np.ndarray,
                  mosfet_partials: list[tuple[float, float]]) -> None:
    """Stamp :func:`tangent_conductances` output into *matrix* in place.

    Two-terminal tangents stamp like conductances (negative inside an
    NDR region is fine — the consumers solve directly, not
    iteratively); each MOSFET stamps ``gds`` across drain-source plus
    a ``gm`` voltage-controlled current source (the hybrid-pi
    skeleton).
    """
    for k, (anode, cathode) in enumerate(system.device_terminals()):
        system.stamp_two_terminal(matrix, anode, cathode, device_g[k])
    for k, (drain, gate, source) in enumerate(system.mosfet_terminals()):
        gm, gds = mosfet_partials[k]
        system.stamp_two_terminal(matrix, drain, source, gds)
        system.stamp_transconductance(matrix, drain, source, gate, source, gm)


def linearize(circuit: Circuit,
              bias: Mapping[str, float] | None = None,
              dc_options: SwecDCOptions | None = None) -> SmallSignalSystem:
    """Bias *circuit* and stamp its small-signal ``(G0, C)`` matrices.

    *bias* maps independent-source names to DC override values (e.g.
    pin an inverter's input inside its transition region); sources not
    named keep their ``t=0`` value.  The bias solve reuses
    :class:`~repro.swec.dc.SwecDC`, so it inherits the chord fixed
    point's NDR robustness.
    """
    dc = SwecDC(circuit, dc_options)
    state = dc.operating_point(bias)
    system = dc.system
    g0 = system.conductance_base()
    device_g, mosfet_partials = tangent_conductances(circuit, system, state)
    stamp_tangent(system, g0, device_g, mosfet_partials)
    return SmallSignalSystem(circuit=circuit, system=system, state=state,
                             g0=g0, c=system.capacitance_matrix())
