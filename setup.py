"""Setup shim.

``pip install -e .`` needs the ``wheel`` package to build a PEP 660
editable install; on offline machines without it, run::

    python setup.py develop

which installs the same editable egg-link without building a wheel.
"""

from setuptools import setup

setup()
