"""AC-subsystem bench: vectorized frequency sweep vs the Python loop.

The same 1000-point log sweep is solved twice on two circuits (the
single-pole RC and a 10-stage RTD chain with its NDR devices
linearized at bias):

* the vectorized batched-LAPACK path must beat the naive
  per-frequency Python loop by >= 5x on the RC circuit (the
  acceptance bar; the chain is reported for scale);
* both paths must agree to machine precision everywhere (asserted).
"""

import time

import numpy as np
from conftest import print_rows
from repro import Circuit
from repro.ac import ACAnalysis, frequency_grid
from repro.circuits_lib import rtd_chain

N_POINTS = 1000
SPEEDUP_FLOOR = 5.0
REPEATS = 3


def _lowpass() -> Circuit:
    circuit = Circuit("lowpass")
    circuit.add_voltage_source("Vin", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    return circuit


def _best_of(repeats, fn):
    best, value = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _bench_circuit(name, circuit, node):
    analysis = ACAnalysis(circuit)
    f = frequency_grid(1e3, 1e9, N_POINTS, "log")
    loop_seconds, loop = _best_of(REPEATS, lambda: analysis.solve_loop(f))
    vec_seconds, vectorized = _best_of(REPEATS, lambda: analysis.solve(f))
    assert np.allclose(vectorized.states, loop.states,
                       rtol=1e-12, atol=0.0)
    return {
        "name": name,
        "size": analysis.small.size,
        "loop_ms": loop_seconds * 1e3,
        "vec_ms": vec_seconds * 1e3,
        "speedup": loop_seconds / vec_seconds,
        "gain": abs(vectorized.low_frequency_gain(node)),
        "result": vectorized,
    }


def test_vectorized_sweep_beats_python_loop():
    rc = _bench_circuit("rc_lowpass", _lowpass(), "out")
    chain = _bench_circuit("rtd_chain_10", rtd_chain(10)[0], "n10")

    print_rows(
        f"AC sweep: {N_POINTS} log-spaced points, vectorized vs "
        f"per-frequency Python loop (best of {REPEATS})",
        ["circuit", "n", "loop ms", "vec ms", "speedup", "|H(0)|"],
        [[row["name"], row["size"], round(row["loop_ms"], 2),
          round(row["vec_ms"], 2), round(row["speedup"], 1),
          round(row["gain"], 4)]
         for row in (rc, chain)])

    bandwidth = rc["result"].bandwidth_3db("out")
    assert np.isfinite(bandwidth) and bandwidth > 0.0
    assert rc["speedup"] >= SPEEDUP_FLOOR, (
        f"vectorized path only {rc['speedup']:.1f}x faster than the "
        f"Python loop at {N_POINTS} points (need >= {SPEEDUP_FLOOR}x)")
