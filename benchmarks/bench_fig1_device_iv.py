"""Fig. 1 regenerator: anticipated nanodevice characteristics.

(a) RTT collector I-V: multiple resonance peaks with a staircase contour.
(b) CNT/nanowire: staircase conductance (quantum wire behaviour).
"""

import numpy as np

from conftest import print_series
from repro.devices import MultiPeakRTT, QuantizedNanowire


def _rtt_curve():
    rtt = MultiPeakRTT(peak_voltages=(0.5, 1.2, 1.9))
    voltages = np.linspace(0.0, 2.4, 481)
    currents = np.array([rtt.current(float(v)) for v in voltages])
    return voltages, currents


def _nanowire_curves():
    wire = QuantizedNanowire()
    voltages = np.linspace(0.0, 1.5, 301)
    conductances = np.array(
        [wire.conductance_staircase(float(v)) for v in voltages])
    currents = np.array([wire.current(float(v)) for v in voltages])
    return voltages, conductances, currents


def test_fig1a_rtt_multi_peak_iv(benchmark):
    voltages, currents = benchmark(_rtt_curve)
    print_series("Fig 1(a): RTT collector I-V",
                 {"V_CE": voltages, "I_C": currents})
    # shape: three local maxima separated by NDR dips
    maxima = [k for k in range(1, len(currents) - 1)
              if currents[k] > currents[k - 1]
              and currents[k] >= currents[k + 1]]
    assert len(maxima) == 3
    # staircase contour: each successive peak is at least as high
    peak_values = [currents[k] for k in maxima]
    assert peak_values[1] > 0.5 * peak_values[0]


def test_fig1b_cnt_staircase_conductance(benchmark):
    voltages, conductances, currents = benchmark(_nanowire_curves)
    print_series("Fig 1(b): CNT conductance staircase",
                 {"V": voltages, "G": conductances, "I": currents})
    from repro.constants import CONDUCTANCE_QUANTUM
    # plateaus at multiples of G0 above the contact term
    plateau_levels = [conductances[np.argmin(np.abs(voltages - v))]
                      for v in (0.1, 0.35, 0.65, 0.95, 1.3)]
    steps = np.diff(plateau_levels)
    assert np.allclose(steps, CONDUCTANCE_QUANTUM, rtol=0.1)
    # current monotone (quantum wire conducts, never NDR)
    assert np.all(np.diff(currents) > 0.0)
