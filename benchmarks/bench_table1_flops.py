"""Table I regenerator: DC simulation cost, SWEC versus MLA.

The paper's Table I compares floating-point operation counts of DC
simulations between SWEC and the authors' re-implementation of MLA, with
the overall claim of a 20-30x speedup over SPICE-like simulation.  We run
the same style of workloads — divider sweeps over RTDs and nanowires plus
RTD chains of growing size — and print the comparison rows.

Shape expectation: SWEC wins by a large factor on every row, growing on
the NDR-crossing and larger-matrix workloads (MLA pays Newton iterations
x factorizations; SWEC pays one factorization per point).
"""

import numpy as np

from conftest import print_rows
from repro.baselines import MlaDC
from repro.circuits_lib import nanowire_divider, rtd_chain, rtd_divider
from repro.perf.comparison import compare_dc_sweep
from repro.swec import SwecDC
from repro.swec.dc import SwecDCOptions


def _workloads():
    """(name, circuit builder, sweep values) triples — Table I rows."""
    return [
        ("rtd-divider easy (R=10)",
         lambda: rtd_divider(resistance=10.0),
         np.linspace(0.0, 2.6, 131)),
        ("rtd-divider NDR (R=300)",
         lambda: rtd_divider(resistance=300.0),
         np.linspace(0.0, 4.0, 131)),
        ("nanowire divider",
         lambda: nanowire_divider(resistance=1e4),
         np.linspace(0.0, 3.0, 131)),
        ("rtd-chain x4",
         lambda: rtd_chain(stages=4),
         np.linspace(0.0, 2.0, 81)),
        ("rtd-chain x8",
         lambda: rtd_chain(stages=8),
         np.linspace(0.0, 2.0, 81)),
    ]


def _run_all():
    rows = []
    for name, builder, values in _workloads():
        circuit_swec, info = builder()
        circuit_mla, _ = builder()
        swec = SwecDC(circuit_swec, SwecDCOptions(mode="stepwise"))
        mla = MlaDC(circuit_mla)
        rows.append(compare_dc_sweep(name, swec, mla, info.source, values))
    return rows


def test_table1_dc_flop_comparison(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print_rows(
        "Table I: DC simulation cost, SWEC vs MLA",
        ["workload", "SWEC flops", "MLA flops", "flop speedup",
         "SWEC solves", "MLA iters", "wall speedup"],
        [[r.workload, r.swec_flops, r.baseline_flops,
          round(r.flop_speedup, 1), r.swec_solves, r.baseline_iterations,
          round(r.wall_speedup, 1)] for r in rows])
    # SWEC wins every row
    for row in rows:
        assert row.flop_speedup > 2.0, row.as_table_line()
    by_name = {r.workload: r for r in rows}
    # the NDR-crossing workload widens the gap vs the easy one
    assert (by_name["rtd-divider NDR (R=300)"].flop_speedup
            > by_name["rtd-divider easy (R=10)"].flop_speedup)
    # the hardest row lands in the paper's order of magnitude (>= ~10x)
    assert max(r.flop_speedup for r in rows) > 8.0


def test_table1_speedup_grows_with_matrix_size():
    """MLA factors the Jacobian once per Newton iteration; SWEC once per
    sweep point.  As the chain grows, factorization dominates and the
    flop ratio approaches the iteration count."""
    ratios = {}
    for stages in (2, 8):
        circuit_swec, info = rtd_chain(stages=stages)
        circuit_mla, _ = rtd_chain(stages=stages)
        values = np.linspace(0.0, 2.0, 41)
        swec = SwecDC(circuit_swec, SwecDCOptions(mode="stepwise"))
        mla = MlaDC(circuit_mla)
        row = compare_dc_sweep(f"chain-{stages}", swec, mla, info.source,
                               values)
        ratios[stages] = row.flop_speedup
    print(f"\n=== Table I ablation: flop speedup by chain size: "
          f"{ {k: round(v, 1) for k, v in ratios.items()} } ===")
    # the order-of-magnitude advantage survives at every matrix size
    assert min(ratios.values()) > 8.0
