"""Fig. 2 regenerator: Newton-Raphson's dependence on the initial guess.

The paper's Fig. 2 sketch: from ``x0`` the iteration oscillates between
two points; from ``x0'`` it converges.  We reproduce it on (a) the
textbook cubic and (b) an actual RTD load-line equation.
"""

import numpy as np

from conftest import print_series
from repro.baselines.newton import scalar_newton
from repro.devices import SCHULMAN_INGAAS, SchulmanRTD


def _cubic_runs():
    def f(x):
        return x**3 - 2.0 * x + 2.0

    def df(x):
        return 3.0 * x * x - 2.0

    bad = scalar_newton(f, df, 0.0)
    good = scalar_newton(f, df, -2.0)
    return bad, good


def test_fig2_oscillation_vs_convergence(benchmark):
    (bad_iterates, bad_converged, bad_oscillating), \
        (good_iterates, good_converged, good_oscillating) = benchmark(
            _cubic_runs)
    n = min(len(bad_iterates), 12)
    print_series(
        "Fig 2: NR iterates (bad guess x0=0 vs good guess x0'=-2)",
        {"iteration": np.arange(n),
         "bad_guess": np.array(bad_iterates[:n]),
         "good_guess": np.array(
             good_iterates[:n] + [good_iterates[-1]] * (n - len(good_iterates))
             if len(good_iterates) < n else good_iterates[:n])})
    assert bad_oscillating and not bad_converged
    assert good_converged and not good_oscillating


def test_fig2_rtd_load_line_guess_sensitivity():
    """NR on I_rtd(v) = (Vs - v)/R: behaviour depends on the guess.

    With a bistable 300-ohm load line at Vs = 1.1 V there are three
    intersections; NR finds *different* solutions from different guesses
    — the false-convergence hazard — while some guesses fail entirely.
    """
    rtd = SchulmanRTD(SCHULMAN_INGAAS)
    vs, r = 1.1, 300.0
    def f(v):
        return rtd.current(v) - (vs - v) / r

    def df(v):
        return rtd.differential_conductance(v) + 1.0 / r

    solutions = {}
    outcomes = {}
    for guess in (0.0, 0.6, 1.05):
        iterates, converged, oscillating = scalar_newton(f, df, guess)
        outcomes[guess] = (converged, oscillating)
        if converged:
            solutions[guess] = round(iterates[-1], 4)
    print(f"\n=== Fig 2 (RTD load line): solutions by guess: "
          f"{solutions}, outcomes: {outcomes} ===")
    assert len(solutions) >= 1
    distinct = set(solutions.values())
    failed = sum(1 for c, _ in outcomes.values() if not c)
    # guess-dependence manifests: either different roots or failures
    assert len(distinct) > 1 or failed > 0
