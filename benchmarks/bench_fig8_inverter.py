"""Fig. 8 regenerator: FET-RTD inverter transient.

(a) the circuit — built by ``repro.circuits_lib.fet_rtd_inverter``;
(b) SWEC output: clean inversion between the design levels;
(c) the SPICE3-style NR engine: on the bistable MOBILE configuration the
    same algorithm falsely converges; on this (monostable) inverter it
    needs Newton iterations at every point — we show the iteration bill
    and reproduce the false-convergence failure on the latch bench;
(d) the ACES-style PWL engine: correct waveform, at segment-search cost.
"""

import numpy as np
import pytest

from conftest import print_series
from repro.baselines import AcesTransient, SpiceTransient
from repro.baselines.aces import AcesOptions
from repro.baselines.spice import SpiceOptions
from repro.circuit import Pulse
from repro.circuits_lib import fet_rtd_inverter
from repro.swec import SwecOptions, SwecTransient
from repro.swec.timestep import StepControlOptions

T_STOP = 10e-9


def _input():
    return Pulse(0.0, 5.0, delay=1e-9, rise=0.3e-9, fall=0.3e-9,
                 width=4e-9, period=10e-9)


def _swec_run():
    circuit, info = fet_rtd_inverter(vin=_input())
    engine = SwecTransient(circuit, SwecOptions(
        step=StepControlOptions(epsilon=0.05, h_min=1e-13, h_max=0.2e-9,
                                h_initial=1e-12),
        dv_limit=0.5))
    return engine.run(T_STOP), info


def test_fig8b_swec_output(benchmark):
    result, info = benchmark.pedantic(_swec_run, rounds=1, iterations=1)
    grid = np.linspace(0.0, T_STOP, 24)
    print_series("Fig 8(b): SWEC inverter waveforms",
                 {"t": grid,
                  "v_in": result.resample(grid, info.input_node),
                  "v_out": result.resample(grid, info.output_node)})
    assert not result.aborted
    assert result.convergence_failures == 0
    # inversion at the design levels
    assert result.at(4.5e-9, info.output_node) == pytest.approx(
        info.v_out_low, abs=0.1)      # input high
    assert result.at(9.5e-9, info.output_node) == pytest.approx(
        info.v_out_high, abs=0.1)     # input low
    print(f"SWEC: {len(result)} points, flops={result.flops.total:,}, "
          f"0 Newton iterations by construction")


def test_fig8c_spice_newton_cost_and_fragility():
    """The NR engine pays iterations at every accepted point, and with
    cold starts (the Fig. 2 scenario) it pays dramatically more —
    demonstrating the initial-guess fragility SWEC removes."""
    circuit, info = fet_rtd_inverter(vin=_input())
    warm = SpiceTransient(circuit, SpiceOptions(h_initial=0.1e-9)).run(T_STOP)
    circuit_cold, _ = fet_rtd_inverter(vin=_input())
    cold = SpiceTransient(circuit_cold, SpiceOptions(
        h_initial=0.1e-9, warm_start=False)).run(T_STOP)
    warm_iters = sum(warm.iteration_counts)
    cold_iters = sum(cold.iteration_counts)
    print(f"\n=== Fig 8(c): NR iteration bill, warm={warm_iters}, "
          f"cold={cold_iters}, cold failures={cold.convergence_failures}"
          f" ===")
    assert warm_iters > warm.accepted_steps  # >1 iteration per point
    assert cold_iters > 1.5 * warm_iters or cold.convergence_failures > 0


def test_fig8d_aces_output():
    circuit, info = fet_rtd_inverter(vin=_input())
    engine = AcesTransient(circuit, AcesOptions(
        v_min=-0.5, v_max=5.5, max_segments=96, h_initial=0.05e-9))
    result = engine.run(T_STOP)
    grid = np.linspace(0.0, min(result.t_final, T_STOP), 24)
    print_series("Fig 8(d): ACES (PWL) inverter output",
                 {"t": grid,
                  "v_out": result.resample(grid, info.output_node)})
    assert not result.aborted
    # correct levels, like SWEC
    assert result.at(4.5e-9, info.output_node) == pytest.approx(
        info.v_out_low, abs=0.15)
    assert result.at(9.5e-9, info.output_node) == pytest.approx(
        info.v_out_high, abs=0.15)
    # but extra segment-search solves were needed
    assert engine.segment_iterations > result.accepted_steps
