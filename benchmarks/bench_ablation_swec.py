"""Ablation benches for the SWEC design choices DESIGN.md calls out.

* eq. (5) Taylor predictor on/off — accuracy effect;
* stepwise-solve count in DC mode — accuracy/cost trade;
* adaptive versus fixed step — cost at equal accuracy.
"""

import numpy as np

from conftest import print_rows
from repro.circuit import Pulse
from repro.circuits_lib import rtd_divider
from repro.swec import SwecDC, SwecOptions, SwecTransient
from repro.swec.dc import SwecDCOptions
from repro.swec.timestep import StepControlOptions


def _ramp_circuit():
    circuit, info = rtd_divider(resistance=10.0)
    circuit.voltage_sources[0].waveform = Pulse(
        0.0, 2.0, delay=0.0, rise=3e-9, fall=1e-9, width=0.5e-9,
        period=50e-9)
    circuit.add_capacitor("Cp", info.device_node, "0", 1e-12)
    return circuit, info


def _reference_curve(info, grid):
    """Quasi-static truth along the ramp from the DC fixed point."""
    circuit, _ = rtd_divider(resistance=10.0)
    dc = SwecDC(circuit)
    ramp_values = np.clip(grid / 3e-9, 0.0, 1.0) * 2.0
    result = dc.sweep(info.source, ramp_values)
    return result.voltage(info.device_node)


class TestPredictorAblation:
    def test_taylor_predictor_improves_ramp_tracking(self):
        grid = np.linspace(0.5e-9, 2.8e-9, 60)
        errors = {}
        for use_predictor in (True, False):
            circuit, info = _ramp_circuit()
            engine = SwecTransient(circuit, SwecOptions(
                step=StepControlOptions(epsilon=0.1, h_min=1e-12,
                                        h_max=0.1e-9, h_initial=1e-12),
                use_predictor=use_predictor))
            result = engine.run(3e-9)
            reference = _reference_curve(info, grid)
            numeric = result.resample(grid, info.device_node)
            errors[use_predictor] = float(np.mean(
                np.abs(numeric - reference)))
        print_rows("Ablation: eq. (5) Taylor predictor",
                   ["predictor", "mean |error| (V)"],
                   [["on", errors[True]], ["off", errors[False]]])
        # the predictor must not hurt, and typically helps on ramps
        assert errors[True] <= errors[False] * 1.1


class TestStepwiseSolveCount:
    def test_more_solves_more_accuracy_more_cost(self):
        values = np.linspace(0.0, 2.5, 201)
        reference_circuit, info = rtd_divider(resistance=10.0)
        reference = SwecDC(reference_circuit).sweep(info.source, values)
        v_ref = reference.voltage(info.device_node)
        rows = []
        errors = {}
        flops = {}
        for solves in (1, 2, 4):
            circuit, _ = rtd_divider(resistance=10.0)
            result = SwecDC(circuit, SwecDCOptions(
                mode="stepwise", stepwise_solves=solves)).sweep(
                    info.source, values)
            error = float(np.max(np.abs(
                result.voltage(info.device_node) - v_ref)))
            errors[solves] = error
            flops[solves] = result.flops.total
            rows.append([solves, error, result.flops.total])
        print_rows("Ablation: stepwise solves per DC point",
                   ["solves", "max |error| vs fixed point", "flops"],
                   rows)
        assert errors[4] <= errors[1]
        assert flops[4] > flops[1]


class TestStepControlAblation:
    def test_adaptive_beats_fixed_step_at_equal_accuracy(self):
        """Fixed steps sized for the fast edge waste work on plateaus;
        the eq. 10-12 controller spends points where the action is.

        Uses the Fig. 6 RC circuit so the edge slope-bound and the
        plateau RC-bound differ by an order of magnitude.
        """
        import math
        from repro.circuit import Circuit

        def build():
            circuit = Circuit("ablation-rc")
            circuit.add_voltage_source(
                "Vin", "in", "0",
                Pulse(0.0, 1.0, delay=0.5e-9, rise=0.1e-9, fall=0.1e-9,
                      width=3e-9, period=10e-9))
            circuit.add_resistor("R1", "in", "out", 1e3)
            circuit.add_capacitor("C1", "out", "0", 1e-12)
            return circuit

        tau = 1e-9

        def exact(t):
            if t <= 0.6e-9:
                return 0.0  # (ignoring the tiny ramp transient)
            return 1.0 - math.exp(-(t - 0.6e-9) / tau)

        grid = np.linspace(0.8e-9, 3e-9, 50)
        reference = np.array([exact(float(t)) for t in grid])

        adaptive = SwecTransient(build(), SwecOptions(
            step=StepControlOptions(epsilon=0.02, h_min=1e-14,
                                    h_max=1e-9, h_initial=1e-13)))
        adaptive_result = adaptive.run(3e-9)
        adaptive_error = float(np.mean(np.abs(
            adaptive_result.resample(grid, "out") - reference)))

        # fixed step = the smallest step the adaptive run used
        h_fixed = float(adaptive_result.step_sizes().min())
        fixed = SwecTransient(build(), SwecOptions(
            step=StepControlOptions(epsilon=1e9, h_min=h_fixed,
                                    h_max=h_fixed, h_initial=h_fixed)))
        fixed_result = fixed.run(3e-9)
        fixed_error = float(np.mean(np.abs(
            fixed_result.resample(grid, "out") - reference)))

        print_rows("Ablation: adaptive vs fixed step",
                   ["scheme", "points", "mean error (V)"],
                   [["adaptive", len(adaptive_result), adaptive_error],
                    ["fixed@min", len(fixed_result), fixed_error]])
        # adaptive uses far fewer points at comparable accuracy
        assert len(adaptive_result) < 0.5 * len(fixed_result)
        assert adaptive_error < 5.0 * max(fixed_error, 2e-3)
