"""Ablation: RTD landmark sensitivities to the Schulman parameters.

The paper's "potentialities" argument — nanodevices have uncertain
properties — raises the design question of *which* parameter
uncertainties matter.  This bench tabulates the logarithmic
sensitivities of the peak/valley landmarks and checks the physics:
``A`` scales currents, ``C/n1`` sets the peak position, ``H``/``n2``
control the valley.
"""

import numpy as np
import pytest

from conftest import print_rows
from repro.analysis.sensitivity import (
    TUNABLE,
    landmarks,
    parameter_sweep,
    sensitivity_table,
)
from repro.devices.rtd import SCHULMAN_INGAAS


def test_sensitivity_table(benchmark):
    table = benchmark.pedantic(
        lambda: sensitivity_table(SCHULMAN_INGAAS,
                                  quantities=("v_peak", "i_peak", "pvr")),
        rounds=1, iterations=1)
    rows = [[name,
             round(table[name]["v_peak"], 3),
             round(table[name]["i_peak"], 3),
             round(table[name]["pvr"], 3)] for name in TUNABLE]
    print_rows("RTD landmark sensitivities d ln(Q) / d ln(p)",
               ["param", "S(v_peak)", "S(i_peak)", "S(pvr)"], rows)

    # physics checks
    assert table["a"]["i_peak"] == pytest.approx(1.0, abs=0.05)
    assert abs(table["a"]["v_peak"]) < 0.1
    assert table["c"]["v_peak"] > 0.3
    assert table["n1"]["v_peak"] < -0.3
    # the valley current is fed by the thermionic term: raising H
    # lowers the PVR
    assert table["h"]["pvr"] < 0.0


def test_uncertainty_band_on_iv_curve():
    """10% uncertainty on A and C: the peak moves as the sensitivities
    predict (linearity check of the one-at-a-time analysis)."""
    base = landmarks(SCHULMAN_INGAAS)
    factors = np.linspace(0.9, 1.1, 5)
    v_peaks = parameter_sweep(SCHULMAN_INGAAS, "c", factors, "v_peak")
    # compare the end-to-end swing with the linearized prediction
    table = sensitivity_table(SCHULMAN_INGAAS, quantities=("v_peak",))
    predicted_swing = (base.v_peak * table["c"]["v_peak"]
                       * (np.log(1.1) - np.log(0.9)))
    measured_swing = v_peaks[-1] - v_peaks[0]
    print(f"\n=== v_peak swing for +/-10% C: measured "
          f"{measured_swing * 1e3:.1f} mV, linearized "
          f"{predicted_swing * 1e3:.1f} mV ===")
    assert measured_swing == pytest.approx(predicted_swing, rel=0.15)
