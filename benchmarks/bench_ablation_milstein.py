"""Ablation: Milstein versus Euler-Maruyama under multiplicative noise,
and the Black-Scholes closed-form peak prediction.

The paper's Section 4.2 invokes the Black-Scholes analogy for windowed
peak prediction.  Geometric Brownian motion is the process where every
piece of that analogy is exact, so it doubles as the convergence
reference: EM strong order drops to 1/2 under multiplicative noise,
Milstein restores order 1.
"""

import numpy as np
import pytest

from conftest import print_rows
from repro.stochastic.nonlinear import (
    GeometricBrownianMotion,
    euler_maruyama_scalar,
    milstein,
)

SEED = 20050307


def _strong_errors(scheme, gbm, steps_list, n_paths=2000):
    errors = {}
    rng = np.random.default_rng(SEED)
    for steps in steps_list:
        dw = rng.normal(0.0, np.sqrt(1.0 / steps), size=(n_paths, steps))
        _, exact = gbm.exact_paths(1.0, steps, n_paths=n_paths, dw=dw)
        _, numeric = scheme(gbm.as_sde(), gbm.x0, 1.0, steps, n_paths,
                            dw=dw)
        errors[steps] = float(np.mean(np.abs(numeric[:, -1]
                                             - exact[:, -1])))
    return errors


def test_milstein_vs_em_strong_convergence(benchmark):
    gbm = GeometricBrownianMotion(mu=0.06, sigma=0.5, x0=1.0)
    steps_list = (8, 32, 128)

    def study():
        return (_strong_errors(euler_maruyama_scalar, gbm, steps_list),
                _strong_errors(milstein, gbm, steps_list))

    em_errors, mil_errors = benchmark.pedantic(study, rounds=1,
                                               iterations=1)
    print_rows("Ablation: strong error on GBM (multiplicative noise)",
               ["steps", "EM", "Milstein"],
               [[s, em_errors[s], mil_errors[s]] for s in steps_list])
    # Milstein beats EM at every resolution
    for steps in steps_list:
        assert mil_errors[steps] < em_errors[steps]
    # and converges faster: EM error ratio over 16x refinement ~ 4
    # (order 1/2), Milstein ~ 16 (order 1)
    em_ratio = em_errors[8] / em_errors[128]
    mil_ratio = mil_errors[8] / mil_errors[128]
    assert mil_ratio > 2.0 * em_ratio


def test_black_scholes_peak_prediction():
    """Closed-form barrier-breach probability versus the Monte-Carlo
    estimate the circuit predictor would compute."""
    gbm = GeometricBrownianMotion(mu=0.05, sigma=0.3, x0=1.0)
    _, paths = gbm.exact_paths(1.0, 2000, n_paths=5000, rng=SEED)
    peaks = paths.max(axis=1)
    rows = []
    for level in (1.1, 1.25, 1.5, 2.0):
        analytic = gbm.peak_exceedance(level, 1.0)
        empirical = float(np.mean(peaks > level))
        rows.append([level, analytic, empirical])
    print_rows("Black-Scholes peak prediction: closed form vs MC",
               ["level", "analytic P[peak>]", "MC P[peak>]"], rows)
    for level, analytic, empirical in rows:
        assert empirical == pytest.approx(analytic, abs=0.03)
    # exceedance decreases with the level
    assert rows[0][1] > rows[-1][1]
