"""Ensemble transient bench: K lockstep instances vs the serial loop.

K = 256 parameter-jittered FET-RTD inverters (Fig. 8 topology) march
the same fixed grid twice:

* serial — one :class:`~repro.swec.SwecTransient` run per instance,
  the per-instance Python march the sweep and Monte-Carlo workloads
  paid before this engine existed;
* lockstep — one :class:`~repro.swec.SwecEnsembleTransient` marching
  all K instances with one batched LAPACK call per time point.

Acceptance: >= 10x at K = 256 (the ISSUE-4 bar), and the two paths
must agree to ~machine precision on every instance.  CI runs the same
bench at small K (``BENCH_ENSEMBLE_K``), where the bar is only "the
vectorized path must not be slower" — the perf-regression smoke.
"""

import os
import time

import numpy as np
from conftest import print_rows
from repro.circuits_lib import fet_rtd_inverter
from repro.swec import SwecEnsembleTransient, SwecOptions, SwecTransient
from repro.swec.timestep import StepControlOptions

K = int(os.environ.get("BENCH_ENSEMBLE_K", "256"))
N_POINTS = 401
T_STOP = 2.0e-8
#: The ISSUE-4 acceptance bar at full K; at CI's small K the batched
#: call has less work to amortize its setup over, so the smoke bar is
#: "not slower than the loop".
SPEEDUP_FLOOR = 10.0 if K >= 256 else 1.0
ENSEMBLE_REPEATS = 3


def _options() -> SwecOptions:
    return SwecOptions(step=StepControlOptions(
        epsilon=0.05, h_min=1e-12, h_max=0.2e-9, h_initial=1e-12))


def _instances(k: int):
    """K inverters with jittered FET threshold and load capacitance."""
    rng = np.random.default_rng(20050307)
    return [
        fet_rtd_inverter(
            fet_vth=float(1.0 + 0.15 * rng.uniform(-1.0, 1.0)),
            load_capacitance=float(
                1e-12 * (1.0 + 0.5 * rng.uniform(-1.0, 1.0))),
        )[0]
        for _ in range(k)
    ]


def test_lockstep_ensemble_beats_serial_loop():
    circuits = _instances(K)
    times = np.linspace(0.0, T_STOP, N_POINTS)

    start = time.perf_counter()
    serial = [SwecTransient(c, _options()).run_grid(times)
              for c in circuits]
    serial_seconds = time.perf_counter() - start

    engine = SwecEnsembleTransient(circuits, _options())
    ensemble_seconds, result = np.inf, None
    for _ in range(ENSEMBLE_REPEATS):
        start = time.perf_counter()
        result = engine.run_grid(times)
        ensemble_seconds = min(ensemble_seconds,
                               time.perf_counter() - start)

    error = max(
        float(np.max(np.abs(serial[k].states - result.states[k])))
        for k in range(K))
    speedup = serial_seconds / ensemble_seconds

    print_rows(
        f"Ensemble transient: K={K} RTD inverters, {N_POINTS - 1} "
        f"fixed-grid steps (ensemble best of {ENSEMBLE_REPEATS})",
        ["path", "seconds", "per instance ms", "speedup"],
        [["serial loop", round(serial_seconds, 3),
          round(1e3 * serial_seconds / K, 3), 1.0],
         ["lockstep", round(ensemble_seconds, 3),
          round(1e3 * ensemble_seconds / K, 3), round(speedup, 1)]])
    print(f"max |lockstep - serial| over all instances: {error:.3g}")

    assert error < 1e-9, (
        f"lockstep march diverged from the serial reference: {error:.3g}")
    assert speedup >= SPEEDUP_FLOOR, (
        f"lockstep path only {speedup:.1f}x faster than the serial loop "
        f"at K={K} (need >= {SPEEDUP_FLOOR}x)")


def test_adaptive_ensemble_shares_worst_case_grid():
    """Adaptive mode: the shared grid is every instance's safe grid
    (worst case over the ensemble), and K=1 reproduces the scalar
    engine's march."""
    circuits = _instances(4)
    engine = SwecEnsembleTransient(circuits, _options())
    result = engine.run(4e-9)
    assert result.states.shape[0] == 4 and len(result) > 10

    single = SwecEnsembleTransient([circuits[0]], _options()).run(4e-9)
    reference = SwecTransient(circuits[0], _options()).run(4e-9)
    grid = np.linspace(0.0, 4e-9, 200)
    ours = np.interp(grid, single.times, single.voltage("out")[0])
    theirs = np.interp(grid, reference.times, reference.voltage("out"))
    assert np.max(np.abs(ours - theirs)) < 1e-9
